"""Experiment F12 — Figure 12: the structured-program simplification.
Single traversal, same slices as Fig. 7 on structured inputs — measured
here on the continue program and on Fig. 16's forward-goto program."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.structured import structured_slice

from benchmarks.conftest import corpus_analysis


@pytest.mark.parametrize("name", ["fig5a", "fig14a", "fig16a"])
def test_bench_fig12_structured_slice(benchmark, name):
    entry = PAPER_PROGRAMS[name]
    analysis = corpus_analysis(name)
    criterion = SlicingCriterion(*entry.criterion)
    result = benchmark(structured_slice, analysis, criterion)
    general = agrawal_slice(analysis, criterion)
    assert result.same_statements_as(general)
    assert result.traversals == 1


def test_bench_fig12_vs_fig7_speed(benchmark):
    """The simplification's payoff: one traversal, no dependence-closure
    chasing.  Timed against Fig. 7 on the same program elsewhere in this
    suite; here we pin Fig. 12's own cost."""
    analysis = corpus_analysis("fig5a")
    criterion = SlicingCriterion(14, "positives")

    def run_both():
        return (
            structured_slice(analysis, criterion),
            agrawal_slice(analysis, criterion),
        )

    simplified, general = benchmark(run_both)
    assert simplified.same_statements_as(general)
