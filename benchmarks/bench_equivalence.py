"""Experiment C1 — the Fig. 7 ≡ Ball–Horwitz equivalence, measured.

Beyond the correctness property (tests/property/test_bh_equivalence.py),
this bench compares the *costs* of the two routes to the same slice:
Agrawal leaves the graphs intact and walks two trees; Ball–Horwitz
rebuilds control dependence from an augmented flowgraph.  The paper's
pitch is that the former is cheaper when the PDG already exists; the
bench quantifies both the shared-infrastructure and the from-scratch
cases.
"""

import random

import pytest

from repro.cfg.builder import build_cfg
from repro.gen.generator import random_criterion
from repro.pdg.builder import analyze_program, build_augmented_pdg
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.criterion import SlicingCriterion

from benchmarks.conftest import sized_programs

PROGRAMS = sized_programs("unstructured", [120], seed=77)


def _setup():
    size, program = PROGRAMS[0]
    analysis = analyze_program(program)
    line, var = random_criterion(random.Random(7), program)
    return analysis, SlicingCriterion(line, var), program


def test_bench_equivalence_agrawal_route(benchmark):
    analysis, criterion, _ = _setup()
    result = benchmark(agrawal_slice, analysis, criterion)
    reference = ball_horwitz_slice(analysis, criterion)
    assert set(reference.statement_nodes()) <= set(result.statement_nodes())


def test_bench_equivalence_ball_horwitz_route_incremental(benchmark):
    # Augmented PDG cached on the analysis — the steady-state cost.
    analysis, criterion, _ = _setup()
    analysis.augmented_pdg  # warm the cache
    benchmark(ball_horwitz_slice, analysis, criterion)


def test_bench_equivalence_ball_horwitz_graph_construction(benchmark):
    # The part Agrawal's algorithm avoids: rebuilding control dependence
    # from the augmented flowgraph.
    _, _, program = _setup()
    cfg = build_cfg(program)
    pdg = benchmark(build_augmented_pdg, cfg)
    assert len(pdg) > 0


@pytest.mark.parametrize("seed", [3, 5])
def test_bench_equivalence_same_slices_random(benchmark, seed):
    programs = sized_programs("unstructured", [60], seed=seed)
    _, program = programs[0]
    analysis = analyze_program(program)
    line, var = random_criterion(random.Random(seed), program)
    criterion = SlicingCriterion(line, var)

    def both():
        return (
            agrawal_slice(analysis, criterion, prune_redundant=True),
            ball_horwitz_slice(analysis, criterion),
        )

    ours, theirs = benchmark(both)
    assert ours.same_statements_as(theirs)
