"""Experiment R1 — resilience overhead and degraded-path latency (our
addition; motivates the robustness milestone).

Three shape claims:

* the cooperative budget hooks are cheap: slicing the corpus under an
  (ample) budget costs within a few percent of slicing unbudgeted;
* the degraded path is *faster* than the exact path it stands in for —
  Fig. 13 does zero traversal rounds, so a forced-exhaustion request
  (Fig. 7 start + Fig. 13 rerun + SL20x audit) stays in the same
  latency class as a healthy exact slice;
* under synthetic overload (in-flight limit 1, every request stalled by
  an injected latency) the gate sheds excess load immediately — shed
  responses return orders of magnitude faster than admitted ones.

Besides the pytest-benchmark timings this module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_resilience.py

writes ``BENCH_resilience.json`` (budget overhead ratio, exact vs
degraded latency, shed rate and latency under overload) so the
trajectory accumulates across PRs.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.corpus import PAPER_PROGRAMS
from repro.service.engine import SlicingEngine
from repro.service.faults import FaultPlan
from repro.service.resilience import EngineLimits

ROUNDS = 30

EXHAUST_PLAN = {
    "rules": [{"kind": "exhaust-budget", "op": "slice", "every": 1}]
}


def _requests():
    out = []
    for _name, entry in sorted(PAPER_PROGRAMS.items()):
        line, var = entry.criterion
        out.append(
            {
                "op": "slice",
                "source": entry.source,
                "line": line,
                "var": var,
                "algorithm": "agrawal",
            }
        )
    return out


def _run_corpus(engine, requests, rounds=ROUNDS):
    for _ in range(rounds):
        for request in requests:
            response = engine.handle_payload(request)
            assert response["ok"] or response["error"]["code"], response
    return rounds * len(requests)


def measure_budget_overhead():
    """Corpus slicing with no budget vs an ample (never-binding) one."""
    requests = _requests()
    with SlicingEngine(workers=1) as engine:
        engine.handle_payload(requests[0])  # warm the cache
        start = time.perf_counter()
        count = _run_corpus(engine, requests)
        bare = time.perf_counter() - start
    limits = EngineLimits(deadline_seconds=60.0, max_traversals=10_000)
    with SlicingEngine(workers=1, limits=limits) as engine:
        engine.handle_payload(requests[0])
        start = time.perf_counter()
        _run_corpus(engine, requests)
        budgeted = time.perf_counter() - start
    return {
        "requests": count,
        "bare_seconds": round(bare, 4),
        "budgeted_seconds": round(budgeted, 4),
        "overhead_ratio": round(budgeted / bare, 3) if bare else None,
    }


def measure_degraded_latency():
    """Per-request latency: healthy exact slice vs forced degradation
    (Fig. 7 trip + Fig. 13 rerun + slice-verifier audit)."""
    requests = [
        request
        for request, (_name, entry) in zip(
            _requests(), sorted(PAPER_PROGRAMS.items())
        )
        if entry.structured
    ]
    with SlicingEngine(workers=1) as engine:
        engine.handle_payload(requests[0])
        start = time.perf_counter()
        count = _run_corpus(engine, requests)
        exact = time.perf_counter() - start
    plan = FaultPlan.from_dict(EXHAUST_PLAN)
    with SlicingEngine(workers=1, faults=plan) as engine:
        response = engine.handle_payload(requests[0])
        assert response["result"]["degraded"] is True
        start = time.perf_counter()
        _run_corpus(engine, requests)
        degraded = time.perf_counter() - start
        degraded_count = engine.stats.event_count("degraded")
    assert degraded_count >= count
    return {
        "requests": count,
        "exact_seconds": round(exact, 4),
        "degraded_seconds": round(degraded, 4),
        "exact_ms_per_request": round(1000 * exact / count, 3),
        "degraded_ms_per_request": round(1000 * degraded / count, 3),
        "slowdown_ratio": round(degraded / exact, 3) if exact else None,
    }


def measure_overload_shedding():
    """Shed latency and rate with in-flight limit 1 and stalled workers."""
    request = _requests()[0]
    stall = 0.05
    plan = FaultPlan.from_dict(
        {"rules": [{"kind": "latency", "seconds": stall, "every": 1}]}
    )
    limits = EngineLimits(max_inflight=1, deadline_seconds=10.0)
    attempts = 80
    shed_latencies = []
    with SlicingEngine(workers=4, limits=limits, faults=plan) as engine:
        lock = threading.Lock()

        def one(_index):
            start = time.perf_counter()
            response = engine.handle_payload(request)
            elapsed = time.perf_counter() - start
            if (
                not response["ok"]
                and response["error"]["code"] == "overloaded"
            ):
                with lock:
                    shed_latencies.append(elapsed)
            return response

        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(one, range(attempts)))
        shed = engine.stats.event_count("shed")
    admitted = attempts - shed
    assert all(
        response["ok"] or response["error"]["code"] == "overloaded"
        for response in responses
    )
    return {
        "attempts": attempts,
        "stall_seconds": stall,
        "shed": shed,
        "admitted": admitted,
        "shed_rate": round(shed / attempts, 3),
        "mean_shed_latency_ms": round(
            1000 * sum(shed_latencies) / len(shed_latencies), 3
        )
        if shed_latencies
        else None,
    }


# -- pytest-benchmark entry points ------------------------------------


def test_bench_exact_slice(benchmark):
    requests = _requests()
    with SlicingEngine(workers=1) as engine:
        engine.handle_payload(requests[0])
        benchmark.group = "resilience: exact vs degraded corpus pass"
        benchmark(_run_corpus, engine, requests, 3)


def test_bench_degraded_slice(benchmark):
    requests = [
        request
        for request, (_name, entry) in zip(
            _requests(), sorted(PAPER_PROGRAMS.items())
        )
        if entry.structured
    ]
    plan = FaultPlan.from_dict(EXHAUST_PLAN)
    with SlicingEngine(workers=1, faults=plan) as engine:
        engine.handle_payload(requests[0])
        benchmark.group = "resilience: exact vs degraded corpus pass"
        benchmark(_run_corpus, engine, requests, 3)


def test_degraded_path_latency_class():
    """The shape claim: forced degradation stays within ~10× of the
    healthy exact path (it reruns analysis-free Fig. 13 plus an audit,
    not a second full analysis)."""
    report = measure_degraded_latency()
    assert report["slowdown_ratio"] < 10.0, report


def test_shedding_is_fast():
    report = measure_overload_shedding()
    assert report["shed"] > 0, report
    # A shed response never waits behind the stalled worker.
    assert report["mean_shed_latency_ms"] < 1000 * 0.05, report


def main() -> None:
    report = {
        "bench": "resilience",
        "budget_overhead": measure_budget_overhead(),
        "degraded_path": measure_degraded_latency(),
        "overload_shedding": measure_overload_shedding(),
    }
    with open("BENCH_resilience.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
