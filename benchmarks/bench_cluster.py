"""Experiment C1 — cluster serving: multi-worker RPS scaling and the
warm-restart win of the durable store (our addition; motivates the
supervised worker pool of DESIGN.md §13).

Two questions, answered with real forked workers over real sockets:

* **Scaling** — requests/second through the supervisor at 1 worker vs
  4.  Slicing is CPU-bound, so the honest expectation is ~linear in
  *available cores*: on a single-core box the ratio is ~1x and the
  report says so (the ``cpus`` field records the machine; the claim
  "≥2.5x at 4 workers" is a ≥4-core claim).
* **Warm restart** — a restarted cluster over the same store root
  answers its warm set from disk without re-running any analysis; the
  batch should complete several times faster than the cold lifetime
  that populated the store.  This one does *not* need cores: skipping
  the front-end pipeline is a single-thread win.

Standalone reporter::

    PYTHONPATH=src python benchmarks/bench_cluster.py          # full, writes BENCH_cluster.json
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke  # small, CI gate, no file

The pytest hook runs the smoke scale and asserts correctness (every
response ok, the warm run served from the store) rather than wall-clock
ratios — timing assertions belong to the standalone report, where the
machine context is recorded next to the numbers.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from typing import Any, Dict, List, Tuple

from repro.gen.generator import (
    GeneratorConfig,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.lang.pretty import pretty
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterConfig, ClusterSupervisor
from repro.service.resilience import RetryPolicy

ALGORITHM = "agrawal"
SEED = 2026


def _programs(count: int, size: int) -> List[Tuple[str, int, str]]:
    """Deterministic generated programs big enough that analysis (not
    HTTP framing) dominates a cold request."""
    out = []
    for index in range(count):
        rng = random.Random(SEED + index)
        program = realize(
            generate_unstructured(
                rng, GeneratorConfig(flat_length=size, num_vars=6)
            )
        )
        line, var = random_criterion(random.Random(SEED + index), program)
        out.append((pretty(program), line, var))
    return out


def _payloads(
    programs: List[Tuple[str, int, str]], repeat: int
) -> List[Dict[str, Any]]:
    return [
        {
            "op": "slice",
            "source": source,
            "line": line,
            "var": var,
            "algorithm": ALGORITHM,
        }
        for _ in range(repeat)
        for source, line, var in programs
    ]


def run_batch_through_cluster(
    workers: int,
    store_root: str,
    payloads: List[Dict[str, Any]],
    concurrency: int = 8,
) -> Tuple[float, Dict[str, Any]]:
    """Boot a cluster, time one client batch through the front door
    (boot and drain excluded from the timer), return (seconds, stats).
    """
    config = ClusterConfig(
        workers=workers,
        port=0,
        store_root=store_root,
        heartbeat_interval=0.25,
        verbose=False,
        seed=SEED,
    )
    supervisor = ClusterSupervisor(config)
    supervisor.start()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{supervisor.port}",
            retry=RetryPolicy(
                max_retries=4, backoff_seconds=0.1, seed=SEED
            ),
        )
        start = time.perf_counter()
        responses = client.run_batch(payloads, concurrency=concurrency)
        elapsed = time.perf_counter() - start
        failed = [r for r in responses if not r.get("ok")]
        assert not failed, failed[:1]
        stats = supervisor.stats_payload()
    finally:
        supervisor.stop(drain=True)
    return elapsed, stats


def measure_scaling(
    root: str, programs, repeat: int, worker_counts=(1, 4), trials=3
) -> Dict[str, Any]:
    """RPS through the supervisor per worker count.  Every trial gets a
    fresh store root so each is equally cold, and each point reports
    its best trial — on a contended (or single-core) box the scheduler
    noise between forked CPU-bound workers dwarfs the effect under
    measurement, and min-of-N is the standard estimator for it."""
    payloads = _payloads(programs, repeat)
    points = {}
    for workers in worker_counts:
        runs = []
        for trial in range(trials):
            seconds, _ = run_batch_through_cluster(
                workers,
                os.path.join(root, f"scale-{workers}-{trial}"),
                payloads,
            )
            runs.append(seconds)
        best = min(runs)
        points[str(workers)] = {
            "seconds": round(best, 4),
            "rps": round(len(payloads) / best, 1),
            "trials": [round(s, 4) for s in runs],
        }
    first, last = str(worker_counts[0]), str(worker_counts[-1])
    return {
        "batch_size": len(payloads),
        "workers": points,
        "speedup": round(
            points[last]["rps"] / points[first]["rps"], 2
        ),
    }


def measure_warm_restart(
    root: str, programs, repeat: int, workers: int = 2
) -> Dict[str, Any]:
    """Cold lifetime populates the store; a restarted cluster over the
    same root answers the same batch from disk."""
    payloads = _payloads(programs, repeat)
    store_root = os.path.join(root, "warm-restart")
    cold_seconds, cold_stats = run_batch_through_cluster(
        workers, store_root, payloads
    )
    warm_seconds, warm_stats = run_batch_through_cluster(
        workers, store_root, payloads
    )
    assert warm_stats["store"]["hits"] >= len(programs), warm_stats[
        "store"
    ]
    assert warm_stats["store"]["quarantined"] == 0
    return {
        "batch_size": len(payloads),
        "workers": workers,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "cold_store": cold_stats["store"],
        "warm_store": warm_stats["store"],
    }


def _scratch_root(tag: str) -> str:
    import tempfile

    return tempfile.mkdtemp(prefix=f"slang-bench-{tag}-")


def test_bench_cluster_smoke(tmp_path):
    """Correctness gate at smoke scale: the batch completes through the
    forked pool and the restarted cluster answers from the store."""
    programs = _programs(count=2, size=120)
    report = measure_warm_restart(
        str(tmp_path), programs, repeat=2, workers=2
    )
    assert report["warm_store"]["hits"] >= len(programs)


def main(argv=None) -> int:
    smoke = "--smoke" in (argv if argv is not None else sys.argv[1:])
    if smoke:
        programs = _programs(count=2, size=120)
        repeat, worker_counts, trials = 2, (1, 2), 1
    else:
        programs = _programs(count=6, size=300)
        repeat, worker_counts, trials = 3, (1, 4), 3
    root = _scratch_root("cluster")
    scaling = measure_scaling(
        root, programs, repeat, worker_counts, trials
    )
    warm = measure_warm_restart(root, programs, repeat)
    report = {
        "bench": "cluster-serving",
        "mode": "smoke" if smoke else "full",
        "algorithm": ALGORITHM,
        "cpus": os.cpu_count(),
        "program_count": len(programs),
        "program_size": 120 if smoke else 300,
        "scaling": scaling,
        "warm_restart": warm,
        "note": (
            "slicing is CPU-bound: worker-count RPS scaling is bounded "
            "by available cores (see cpus); the warm-restart speedup "
            "is core-independent"
        ),
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if not smoke:
        with open("BENCH_cluster.json", "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
