"""Experiment B1 — wall-time of each slicing algorithm as program size
grows (our addition; the paper reports no timings).

The shape claims this bench encodes:

* the conservative Fig. 13 costs about the same as conventional slicing
  (it piggybacks on the closure and a per-jump check);
* the general Fig. 7 pays a small multiple over conventional (tree
  traversals, usually one productive round);
* Ball–Horwitz's steady-state slice query is comparable to conventional,
  but its one-off augmented-graph construction is the part Agrawal's
  design avoids;
* Lyle's reachability-product blows up fastest.
"""

import random

import pytest

from repro.gen.generator import random_criterion
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import get_algorithm

from benchmarks.conftest import sized_programs

SIZES = [50, 150, 300, 600]
UNSTRUCTURED = {
    size: analyze_program(program)
    for size, program in sized_programs("unstructured", SIZES)
}
CRITERIA = {
    size: SlicingCriterion(
        *random_criterion(random.Random(size), analysis.program)
    )
    for size, analysis in UNSTRUCTURED.items()
}

ALGOS = ["conventional", "agrawal", "ball-horwitz", "lyle"]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", ALGOS)
def test_bench_scaling_unstructured(benchmark, algorithm, size):
    analysis = UNSTRUCTURED[size]
    criterion = CRITERIA[size]
    slicer = get_algorithm(algorithm)
    benchmark.group = f"slice unstructured n={size}"
    result = benchmark(slicer, analysis, criterion)
    assert result.nodes


STRUCTURED_SIZES = [100, 300]
STRUCTURED = {
    size: analyze_program(program)
    for size, program in sized_programs("structured", STRUCTURED_SIZES)
}


@pytest.mark.parametrize("size", STRUCTURED_SIZES)
@pytest.mark.parametrize(
    "algorithm", ["conventional", "agrawal", "conservative"]
)
def test_bench_scaling_structured(benchmark, algorithm, size):
    analysis = STRUCTURED[size]
    line, var = random_criterion(random.Random(size), analysis.program)
    criterion = SlicingCriterion(line, var)
    slicer = get_algorithm(algorithm)
    benchmark.group = f"slice structured n~{size}"
    try:
        result = benchmark(slicer, analysis, criterion)
    except Exception:
        pytest.skip("structured preconditions not met for this seed")
    assert result.nodes


@pytest.mark.parametrize("size", SIZES)
def test_bench_scaling_analysis_pipeline(benchmark, size):
    """Front-end + analyses cost (parse happens once outside)."""
    program = UNSTRUCTURED[size].program
    benchmark.group = f"analyze n={size}"
    analysis = benchmark(analyze_program, program)
    assert len(analysis.cfg) > size
