"""Experiment L1 — lint throughput: ``slang check`` over the corpus and
a generated fleet, plus the slice verifier's audit cost (our addition;
sizes the static-analysis subsystem for batch use).

Two questions:

* how many programs per second can the rule engine lint end-to-end
  (parse → validate → CFG → dataflow → eight rules)?
* what does a full slice audit cost on top of a slice — i.e. can the
  verifier run as an always-on post-condition in the service, or only
  as a test-time oracle?

Besides the pytest-benchmark timings this module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_lint.py

writes ``BENCH_lint.json`` (lint/verify throughput and per-program
latency) so a benchmark trajectory can accumulate across PRs.
"""

from __future__ import annotations

import json
import random
import time

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import generate_structured, realize
from repro.lint.rules import run_lint
from repro.lint.slice_check import SliceChecker, verify_result
from repro.metrics import output_criteria
from repro.pdg.builder import analyze_program
from repro.slicing.registry import get_algorithm

FLEET_SEEDS = range(2000, 2060)


def fleet():
    sources = [entry.source for entry in PAPER_PROGRAMS.values()]
    sources += [
        realize(generate_structured(random.Random(seed), None))
        for seed in FLEET_SEEDS
    ]
    return sources


def run_lint_fleet(sources) -> int:
    return sum(len(run_lint(source).diagnostics) for source in sources)


def run_verify_fleet(sources) -> int:
    slicer = get_algorithm("agrawal")
    violations = 0
    for source in sources:
        analysis = analyze_program(source)
        checker = SliceChecker(analysis)
        for criterion in output_criteria(analysis)[:1]:
            result = slicer(analysis, criterion)
            violations += len(verify_result(result, checker=checker))
    return violations


def test_bench_lint_fleet(benchmark):
    sources = fleet()
    benchmark.group = f"lint fleet n={len(sources)}"
    benchmark(run_lint_fleet, sources)


def test_bench_verify_fleet(benchmark):
    sources = fleet()
    benchmark.group = f"verify fleet n={len(sources)}"
    benchmark(run_verify_fleet, sources)


def test_verifier_finds_nothing_on_correct_slices():
    assert run_verify_fleet(fleet()) == 0


def measure():
    sources = fleet()

    start = time.perf_counter()
    diagnostics = run_lint_fleet(sources)
    lint_seconds = time.perf_counter() - start

    start = time.perf_counter()
    violations = run_verify_fleet(sources)
    verify_seconds = time.perf_counter() - start
    return sources, diagnostics, lint_seconds, violations, verify_seconds


def main() -> None:
    sources, diagnostics, lint_seconds, violations, verify_seconds = measure()
    count = len(sources)
    report = {
        "bench": "lint-throughput",
        "programs": count,
        "diagnostics": diagnostics,
        "lint_seconds": round(lint_seconds, 4),
        "lint_programs_per_second": round(count / lint_seconds, 1),
        "lint_ms_per_program": round(1000 * lint_seconds / count, 3),
        "verify_violations": violations,
        "verify_seconds": round(verify_seconds, 4),
        "verify_programs_per_second": round(count / verify_seconds, 1),
        "verify_ms_per_program": round(1000 * verify_seconds / count, 3),
    }
    with open("BENCH_lint.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
