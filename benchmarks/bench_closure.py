"""Experiment C1 — amortized multi-criterion slicing via the bitset
kernels and the condensed-PDG closure index (our addition; the paper
reports no timings).

The workload is the service's bulk shape: every ``(line, var)``
criterion a program admits, sliced with the conventional algorithm —
each query bottoms out in ``backward_closure``, so a per-query BFS
re-walks the same dependence edges once per criterion while the closure
index pays one SCC condensation and answers each query with a mask OR.
The shape claim (and the acceptance gate): on goto-ridden programs of
~300 nodes and up, the fast configuration (``engine="bitset"`` plus the
index) beats the set-based reference configuration by ≥ 5×, and the
gap *widens* with program size (BFS is O(V+E) per query; the index
query is O(answer)).

Besides the pytest-benchmark timings this module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_closure.py          # full run
    PYTHONPATH=src python benchmarks/bench_closure.py --smoke  # CI gate

The full run writes ``BENCH_closure.json`` (per-size reference/fast
seconds, speedups, index build cost and component counts).  Smoke mode
replays the whole criterion family of fig3a through both configurations
and fails (exit 1) if the indexed path is slower than the reference —
the cheap CI regression tripwire; the ≥ 5× claim is asserted on the
sized workloads by :func:`test_closure_speedup_at_300` and the full
reporter.
"""

from __future__ import annotations

import json
import sys
import time

import pytest

from repro.analysis.dataflow import dataflow_engine
from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.pdg.closure import closure_index
from repro.service.engine import enumerate_criteria
from repro.slicing.registry import get_algorithm

try:
    from benchmarks.conftest import sized_programs
except ImportError:  # standalone: `python benchmarks/bench_closure.py`
    from conftest import sized_programs

ALGORITHM = "conventional"
SIZES = [300, 600, 1200]
#: Smoke mode re-times the tiny fig3a workload; the indexed path must
#: not be slower (2% tolerance so timer noise cannot flake the gate).
SMOKE_TOLERANCE = 1.02


def _workload(program):
    """(reference analysis, fast analysis, criterion family).

    Fresh analyses per configuration: dataflow results and the closure
    index memoize on the analysis object, so sharing one would let the
    reference run reuse fast-path state (or vice versa).
    """
    with dataflow_engine("sets"), closure_index(False):
        reference = analyze_program(program)
        criteria = enumerate_criteria(reference, mode="all")
    with dataflow_engine("bitset"), closure_index(True):
        fast = analyze_program(program)
    return reference, fast, criteria


def _run_batch(analysis, criteria):
    slicer = get_algorithm(ALGORITHM)
    for criterion in criteria:
        slicer(analysis, criterion)


def _best_of(fn, repeat: int = 3) -> float:
    """Best-of-N wall time — the standard noise-resistant estimator."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure(size: int, repeat: int = 3):
    """One sized workload through both configurations."""
    (_, program), = sized_programs("unstructured", [size])
    reference, fast, criteria = _workload(program)

    with dataflow_engine("sets"), closure_index(False):
        reference_seconds = _best_of(
            lambda: _run_batch(reference, criteria), repeat
        )

    with dataflow_engine("bitset"), closure_index(True):
        build_start = time.perf_counter()
        index = fast.pdg.ensure_closure_index()
        build_seconds = time.perf_counter() - build_start
        fast_seconds = _best_of(
            lambda: _run_batch(fast, criteria), repeat
        )

    return {
        "size": size,
        "cfg_nodes": len(reference.cfg),
        "criteria": len(criteria),
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(reference_seconds / fast_seconds, 2),
        "index_build_seconds": round(build_seconds, 4),
        "index_components": index.component_count,
    }


# ----------------------------------------------------------------------
# pytest-benchmark timings (comparison groups per size)
# ----------------------------------------------------------------------

WORKLOADS = {
    size: _workload(sized_programs("unstructured", [size])[0][1])
    for size in SIZES[:2]  # keep the timed matrix small; 1200 is
    # covered by the standalone reporter
}


@pytest.mark.parametrize("size", sorted(WORKLOADS))
def test_bench_multi_criterion_reference(benchmark, size):
    reference, _, criteria = WORKLOADS[size]
    benchmark.group = f"multi-criterion n={size} ({ALGORITHM})"
    with dataflow_engine("sets"), closure_index(False):
        benchmark(_run_batch, reference, criteria)


@pytest.mark.parametrize("size", sorted(WORKLOADS))
def test_bench_multi_criterion_indexed(benchmark, size):
    _, fast, criteria = WORKLOADS[size]
    benchmark.group = f"multi-criterion n={size} ({ALGORITHM})"
    with dataflow_engine("bitset"), closure_index(True):
        fast.pdg.ensure_closure_index()
        benchmark(_run_batch, fast, criteria)


def test_closure_speedup_at_300():
    """The acceptance-criterion check: ≥ 5× on a ≥ 300-node
    multi-criterion workload."""
    entry = measure(300)
    assert entry["speedup"] >= 5.0, (
        f"indexed path only {entry['speedup']:.1f}x faster on "
        f"{entry['cfg_nodes']} nodes / {entry['criteria']} criteria "
        f"(reference {entry['reference_seconds']}s, fast "
        f"{entry['fast_seconds']}s); expected >= 5x"
    )


# ----------------------------------------------------------------------
# standalone reporter / CI smoke
# ----------------------------------------------------------------------

def smoke() -> int:
    """fig3a through both configurations; fail if the index loses."""
    source = PAPER_PROGRAMS["fig3a"].source
    reference, fast, criteria = _workload(source)

    def timed(analysis, engine, indexed, loops=30, repeat=5):
        with dataflow_engine(engine), closure_index(indexed):
            if indexed:
                analysis.pdg.ensure_closure_index()
            return _best_of(
                lambda: [_run_batch(analysis, criteria) for _ in range(loops)],
                repeat,
            ) / loops

    reference_seconds = timed(reference, "sets", False)
    fast_seconds = timed(fast, "bitset", True)
    report = {
        "bench": "closure-index-smoke",
        "program": "fig3a",
        "criteria": len(criteria),
        "reference_seconds": round(reference_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "ratio": round(reference_seconds / fast_seconds, 3),
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if fast_seconds > reference_seconds * SMOKE_TOLERANCE:
        print(
            "FAIL: closure-index path slower than the reference on "
            "fig3a",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(smoke())
    report = {
        "bench": "closure-index-multi-criterion",
        "algorithm": ALGORITHM,
        "workload": "all (line, var) criteria, unstructured programs",
        "sizes": [measure(size) for size in SIZES],
    }
    report["speedup_at_300"] = report["sizes"][0]["speedup"]
    assert report["speedup_at_300"] >= 5.0, report
    with open("BENCH_closure.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
