"""Experiment F10 — Figures 10/11: the unstructured program that needs
two pre-order traversals (node 4 joins only in the second pass)."""

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.criterion import SlicingCriterion

from benchmarks.conftest import corpus_analysis

ENTRY = PAPER_PROGRAMS["fig10a"]
CRITERION = SlicingCriterion(9, "y")


def test_bench_fig10_two_traversals(benchmark):
    analysis = corpus_analysis("fig10a")
    result = benchmark(agrawal_slice, analysis, CRITERION)
    assert result.traversals == 2
    assert frozenset(result.statement_nodes()) == ENTRY.expectations["agrawal"]
    assert result.label_map == {"L6": 7, "L8": 9}


def test_bench_fig10_ball_horwitz_reference(benchmark):
    analysis = corpus_analysis("fig10a")
    result = benchmark(ball_horwitz_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations[
        "ball-horwitz"
    ]
