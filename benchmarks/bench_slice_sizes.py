"""Experiment C3 (and the paper's comparative story as one table):
slice sizes per algorithm over the corpus and random programs.

Shape claims asserted:

* conventional ⊆ agrawal (the new algorithm only adds);
* agrawal ⊆ lyle on the paper's example programs (Lyle is "extremely
  conservative");
* conservative ⊇ structured on structured programs.
"""

import random

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import random_criterion
from repro.lang.errors import SlangError
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import algorithm_names, get_algorithm

from benchmarks.conftest import corpus_analysis, sized_programs


def corpus_rows():
    rows = []
    for name in sorted(PAPER_PROGRAMS):
        entry = PAPER_PROGRAMS[name]
        analysis = corpus_analysis(name)
        criterion = SlicingCriterion(*entry.criterion)
        row = {"program": name}
        for algorithm in algorithm_names():
            try:
                result = get_algorithm(algorithm)(analysis, criterion)
                row[algorithm] = len(result.statement_nodes())
            except SlangError:
                row[algorithm] = None
        rows.append(row)
    return rows


def test_bench_slice_size_table(benchmark):
    rows = benchmark.pedantic(corpus_rows, rounds=3, iterations=1)
    by_name = {row["program"]: row for row in rows}
    for name, row in by_name.items():
        assert row["conventional"] <= row["agrawal"], name
    # Lyle dominates on the paper's examples (degenerate Fig. 10 aside).
    for name in ("fig1a", "fig3a", "fig5a", "fig8a", "fig14a", "fig16a"):
        assert by_name[name]["agrawal"] <= by_name[name]["lyle"], name
    # Fig. 14: the conservative/simplified gap is exactly 2 (the breaks).
    assert by_name["fig14a"]["conservative"] - by_name["fig14a"][
        "structured"
    ] == 2


@pytest.mark.parametrize("size", [80])
def test_bench_slice_size_random_sweep(benchmark, size):
    analyses = [
        analyze_program(program)
        for _, program in sized_programs("unstructured", [size] * 6, seed=31)
    ]

    def sweep():
        ratios = []
        for index, analysis in enumerate(analyses):
            line, var = random_criterion(
                random.Random(index), analysis.program
            )
            criterion = SlicingCriterion(line, var)
            conventional = get_algorithm("conventional")(analysis, criterion)
            agrawal = get_algorithm("agrawal")(analysis, criterion)
            assert set(conventional.statement_nodes()) <= set(
                agrawal.statement_nodes()
            )
            ratios.append(
                (
                    len(conventional.statement_nodes()),
                    len(agrawal.statement_nodes()),
                )
            )
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert len(ratios) == 6
