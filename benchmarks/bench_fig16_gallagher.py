"""Experiment F16 — Figure 16: Gallagher's rule drops the goto on line 4
(no statement of block L6 is in the slice) and produces the incorrect
Fig. 16-b; the paper's algorithm produces Fig. 16-c."""

from repro.corpus import PAPER_PROGRAMS
from repro.interp.oracle import TrajectoryMismatch, check_slice_correctness
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.gallagher import gallagher_slice

from benchmarks.conftest import corpus_analysis

ENTRY = PAPER_PROGRAMS["fig16a"]
CRITERION = SlicingCriterion(10, "y")


def test_bench_fig16_gallagher_slice(benchmark):
    analysis = corpus_analysis("fig16a")
    result = benchmark(gallagher_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations[
        "gallagher"
    ]
    assert 4 not in result.nodes  # the unsound omission


def test_bench_fig16_agrawal_slice(benchmark):
    analysis = corpus_analysis("fig16a")
    result = benchmark(agrawal_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations["agrawal"]
    assert result.label_map == {"L6": 10}


def test_bench_fig16_oracle_distinguishes_them(benchmark):
    analysis = corpus_analysis("fig16a")

    def check():
        correct = agrawal_slice(analysis, CRITERION)
        wrong = gallagher_slice(analysis, CRITERION)
        check_slice_correctness(correct, ENTRY.input_sets)
        try:
            check_slice_correctness(wrong, ENTRY.input_sets)
        except TrajectoryMismatch:
            return True
        return False

    assert benchmark(check)
