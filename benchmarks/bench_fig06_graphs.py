"""Experiment F6 — Figure 6: the four graphs of the continue program;
the crux is continue 7's postdominator (3) differing from its lexical
successor (8)."""

from repro.analysis.lexical import build_lst
from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg
from repro.corpus import PAPER_PROGRAMS
from repro.lang.parser import parse_program
from repro.viz.dot import render_all

from benchmarks.conftest import corpus_analysis

SOURCE = PAPER_PROGRAMS["fig5a"].source


def test_bench_fig06_trees(benchmark):
    cfg = build_cfg(parse_program(SOURCE))

    def build_both():
        return build_postdominator_tree(cfg), build_lst(cfg)

    pdt, lst = benchmark(build_both)
    assert pdt.parent_of(7) == 3
    assert lst.parent_of(7) == 8


def test_bench_fig06_render_all_graphs(benchmark):
    analysis = corpus_analysis("fig5a")
    graphs = benchmark(render_all, analysis)
    assert set(graphs) >= {
        "flowgraph",
        "postdominator-tree",
        "control-dependence",
        "lexical-successor-tree",
    }
