"""Experiment S1 — service throughput: cold per-request analysis vs the
warm content-addressed cache (our addition; motivates the service
subsystem).

The analysis artefacts (CFG, postdominator tree, LST, control/data
dependence, PDG) are criterion-independent, so a 100-criterion batch
against one program should pay for them once, not 100 times.  The shape
claim: a warm cache makes the batch at least ~5× faster than cold
per-request analysis, because a single slice query is cheap next to the
full front-end pipeline.

Besides the pytest-benchmark timings this module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_service.py

writes ``BENCH_service.json`` (cold/warm seconds, speedup, cache
counters) so a benchmark trajectory can accumulate across PRs.
"""

from __future__ import annotations

import itertools
import json
import time

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.service.cache import AnalysisCache
from repro.service.engine import SlicingEngine, enumerate_criteria
from repro.slicing.registry import get_algorithm

PROGRAM = "fig3a"
BATCH = 100
ALGORITHM = "agrawal"


def _criteria(analysis, count: int = BATCH):
    """A *count*-criterion batch: every (line, var) pair, cycled."""
    family = enumerate_criteria(analysis, mode="all")
    return list(itertools.islice(itertools.cycle(family), count))


def run_cold(source: str, criteria) -> None:
    """Cold path: each request re-analyses the program from source."""
    slicer = get_algorithm(ALGORITHM)
    for criterion in criteria:
        slicer(analyze_program(source), criterion)


def run_warm(engine: SlicingEngine, source: str, criteria) -> None:
    """Warm path: every request does its own cache lookup (one hit per
    request), so the reported hit rate reflects the batch size instead
    of the number of distinct programs — a 100-request warm batch
    reports ~0.99, not 0.5.  ``run_batch`` fans over the same pool as
    ``bulk_slice``; the per-request protocol overhead is what a real
    warm client pays."""
    payloads = [
        {
            "op": "slice",
            "source": source,
            "line": criterion.line,
            "var": criterion.var,
            "algorithm": ALGORITHM,
        }
        for criterion in criteria
    ]
    responses = engine.run_batch(payloads)
    failed = [r for r in responses if not r.get("ok")]
    assert not failed, failed[:1]


def test_bench_service_cold(benchmark):
    source = PAPER_PROGRAMS[PROGRAM].source
    criteria = _criteria(analyze_program(source))
    benchmark.group = f"service batch n={BATCH} ({PROGRAM})"
    benchmark(run_cold, source, criteria)


def test_bench_service_warm(benchmark):
    source = PAPER_PROGRAMS[PROGRAM].source
    criteria = _criteria(analyze_program(source))
    engine = SlicingEngine(cache=AnalysisCache(capacity=8))
    engine.analysis_for(source)  # warm the cache outside the timer
    benchmark.group = f"service batch n={BATCH} ({PROGRAM})"
    benchmark(run_warm, engine, source, criteria)
    engine.close()


def test_warm_cache_speedup():
    """The acceptance-criterion check: warm ≥ 5× faster than cold."""
    cold, warm, speedup, _, _ = measure()
    assert speedup >= 5.0, (
        f"warm batch only {speedup:.1f}x faster (cold {cold:.3f}s, "
        f"warm {warm:.3f}s); expected >= 5x"
    )


def measure():
    source = PAPER_PROGRAMS[PROGRAM].source
    criteria = _criteria(analyze_program(source))

    start = time.perf_counter()
    run_cold(source, criteria)
    cold = time.perf_counter() - start

    engine = SlicingEngine(cache=AnalysisCache(capacity=8))
    engine.analysis_for(source)
    start = time.perf_counter()
    run_warm(engine, source, criteria)
    warm = time.perf_counter() - start
    cache_stats = engine.cache.stats()
    slice_cache_stats = engine.slice_cache_stats.stats()
    engine.close()
    return (
        cold,
        warm,
        cold / warm if warm else float("inf"),
        cache_stats,
        slice_cache_stats,
    )


def main() -> None:
    cold, warm, speedup, cache_stats, slice_cache_stats = measure()
    report = {
        "bench": "service-batch-throughput",
        "program": PROGRAM,
        "batch_size": BATCH,
        "algorithm": ALGORITHM,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "speedup": round(speedup, 2),
        "cold_rps": round(BATCH / cold, 1),
        "warm_rps": round(BATCH / warm, 1),
        "cache": cache_stats,
        "slice_cache": slice_cache_stats,
    }
    with open("BENCH_service.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
