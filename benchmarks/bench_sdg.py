"""Experiment SDG-1 — cost profile of interprocedural slicing (our
addition; Agrawal's paper is intraprocedural and reports no timings).

The Horwitz–Reps–Binkley construction has two distinct cost centres:

* the **summary-edge fixed point**, paid once per program — worklist
  over (actual-in, actual-out) pairs across the call graph;
* the **two-pass slice**, paid once per criterion — unit-local
  closures (served by the condensed-PDG closure index) plus the
  ascent/descent crossings and per-unit Fig. 7 jump rounds.

This bench separates the two with the tracing layer the subsystem is
instrumented with (``sdg-build`` / ``sdg-summary`` spans), then times a
criterion family over the finished SDG, at three generated program
sizes.  The shape claim: summary construction is a one-off cost
amortised across criteria — per-criterion slice time must stay well
under the build cost on every size.

Besides the pytest-benchmark timings this module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_sdg.py          # full run
    PYTHONPATH=src python benchmarks/bench_sdg.py --smoke  # CI gate

The full run writes ``BENCH_sdg.json``.  Smoke mode runs the smallest
size once, checks the slice verifies clean (per-unit SL20x plus SL205
call-site consistency), and exits 1 on any diagnostic — the CI
tripwire for interprocedural soundness regressions.
"""

from __future__ import annotations

import json
import random
import sys
import time

import pytest

from repro.gen.generator import (
    GeneratorConfig,
    generate_interprocedural,
    random_criterion,
    realize,
)
from repro.lang.errors import UnreachableCriterionError
from repro.lint.slice_check import verify_interprocedural
from repro.obs.tracer import Tracer, use_tracer
from repro.pdg.builder import analyze_program
from repro.sdg.builder import sdg_for_analysis
from repro.sdg.slicer import sdg_slice
from repro.slicing.criterion import SlicingCriterion

#: label -> (num_procs, max_stmts); statement volume scales with both.
SIZES = {
    "small": (3, 5),
    "medium": (6, 8),
    "large": (10, 10),
}
SEED = 2026


def _program(num_procs: int, max_stmts: int):
    rng = random.Random(SEED + num_procs)
    config = GeneratorConfig(
        num_procs=num_procs,
        max_stmts=max_stmts,
        num_vars=6,
        call_probability=0.35,
    )
    return realize(generate_interprocedural(rng, config)), rng


def _criteria(program, rng, count: int = 8):
    """A family of distinct criteria: main-unit writes plus one
    proc-qualified criterion per procedure (the generator guarantees
    every proc body ends with an assignment to a formal)."""
    seen = set()
    for _ in range(count * 4):
        line, var = random_criterion(rng, program)
        seen.add((line, var))
        if len(seen) >= count:
            break
    family = [SlicingCriterion(line=line, var=var) for line, var in seen]
    for proc in program.procs:
        last = proc.body[-1]
        family.append(
            SlicingCriterion(line=last.line, var=last.target, proc=proc.name)
        )
    return family


def _timed_build(program):
    """Fresh analysis + SDG build under a tracer; returns the SDG plus
    (total build seconds, summary-fixed-point seconds)."""
    analysis = analyze_program(program)
    tracer = Tracer()
    with use_tracer(tracer):
        start = time.perf_counter()
        sdg = sdg_for_analysis(analysis)
        total = time.perf_counter() - start
    summary_seconds = sum(
        span.seconds for span in tracer.walk() if span.name == "sdg-summary"
    )
    return sdg, total, summary_seconds


def measure(label: str, repeat: int = 3):
    num_procs, max_stmts = SIZES[label]
    program, rng = _program(num_procs, max_stmts)

    builds = [_timed_build(program) for _ in range(repeat)]
    sdg = builds[0][0]
    build_seconds = min(entry[1] for entry in builds)
    summary_seconds = min(entry[2] for entry in builds)

    criteria = _criteria(program, rng)
    slice_times = []
    sliced = 0
    for criterion in criteria:
        try:
            start = time.perf_counter()
            result = sdg_slice(sdg, criterion)
            slice_times.append(time.perf_counter() - start)
        except UnreachableCriterionError:
            continue
        sliced += 1
        diagnostics = verify_interprocedural(result)
        assert not diagnostics, (
            f"{label} {criterion}: {[str(d) for d in diagnostics]}"
        )

    vertices = sum(info.size for info in sdg.procs.values())
    return {
        "size": label,
        "units": len(sdg.procs),
        "vertices": vertices,
        "summary_edges": sdg.summary_edges,
        "summary_iterations": sdg.summary_iterations,
        "build_seconds": round(build_seconds, 5),
        "summary_seconds": round(summary_seconds, 5),
        "criteria": sliced,
        "slice_seconds_mean": round(
            sum(slice_times) / max(1, len(slice_times)), 5
        ),
        "slice_seconds_max": round(max(slice_times, default=0.0), 5),
    }


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------


@pytest.mark.parametrize("label", ["small", "medium"])
def test_bench_sdg_build(benchmark, label):
    num_procs, max_stmts = SIZES[label]
    program, _ = _program(num_procs, max_stmts)
    benchmark.group = f"sdg {label}"
    sdg = benchmark(lambda: _timed_build(program)[0])
    assert sdg.summary_edges > 0


@pytest.mark.parametrize("label", ["small", "medium"])
def test_bench_sdg_slice(benchmark, label):
    num_procs, max_stmts = SIZES[label]
    program, rng = _program(num_procs, max_stmts)
    sdg = sdg_for_analysis(analyze_program(program))
    criteria = _criteria(program, rng)
    benchmark.group = f"sdg {label}"

    def run():
        count = 0
        for criterion in criteria:
            try:
                sdg_slice(sdg, criterion)
                count += 1
            except UnreachableCriterionError:
                continue
        return count

    assert benchmark(run) >= 1


# ----------------------------------------------------------------------
# standalone reporter / CI smoke
# ----------------------------------------------------------------------


def smoke() -> int:
    """Smallest size once; any verifier diagnostic fails the gate."""
    entry = measure("small", repeat=1)
    print(json.dumps({"bench": "sdg-smoke", **entry}, indent=2, sort_keys=True))
    if entry["criteria"] < 1:
        print("FAIL: no criterion produced a slice", file=sys.stderr)
        return 1
    return 0


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(smoke())
    report = [measure(label) for label in SIZES]
    path = "BENCH_sdg.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
