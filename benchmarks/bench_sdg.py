"""Experiment SDG-1 — amortized multi-criterion interprocedural slicing
via the whole-SDG closure index (our addition; Agrawal's paper is
intraprocedural and reports no timings).

The workload is the service's bulk shape lifted to the SDG: **every**
``(line, var)`` criterion the program admits, across every unit
(proc-qualified outside main), sliced by the HRB two-pass slicer with
Agrawal's per-unit jump correction.  Two configurations:

* **reference** — the PR 6 status quo: per-unit PDG closure indexes on,
  whole-SDG index off; every criterion re-runs the crossing worklist
  and full-preorder jump rounds.
* **fast** — the whole-SDG ascend/descend index (``repro.sdg.closure``)
  on: one condensation per program, then each criterion's fixpoint is
  mask lookups and each jump round scans the precomputed jump schedule.

Every fast-path result is verified **in-run** against the reference —
node-for-node per unit, identical traversal counts and label maps, and
byte-identical protocol payloads — so a reported speedup can never come
from computing something else.

Also kept from the original experiment: the build-cost profile
(``sdg-build`` / ``sdg-summary`` spans) showing summary construction is
a one-off cost amortized across the criterion family.

Besides the pytest-benchmark timings this module doubles as a
standalone reporter::

    PYTHONPATH=src python benchmarks/bench_sdg.py          # full run
    PYTHONPATH=src python benchmarks/bench_sdg.py --smoke  # CI gate

The full run writes ``BENCH_sdg.json`` (schema matching the other BENCH
files: per-size ``reference_seconds`` / ``fast_seconds`` / ``speedup``).
Smoke mode replays the degenerate single-proc fig3a criterion family
through both configurations and fails (exit 1) if the indexed path is
slower than the two-pass reference; the ≥ 3× claim at the medium size
is asserted by :func:`test_sdg_batch_speedup_at_medium` and the full
reporter.
"""

from __future__ import annotations

import json
import random
import sys
import time

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import GeneratorConfig, generate_interprocedural, realize
from repro.lang.ast_nodes import MAIN_UNIT
from repro.lang.errors import SliceError
from repro.obs.tracer import Tracer, use_tracer
from repro.pdg.builder import analyze_program
from repro.sdg.builder import build_sdg
from repro.sdg.closure import ensure_sdg_index, sdg_closure_index
from repro.sdg.slicer import sdg_slice
from repro.service.protocol import slice_result_payload
from repro.slicing.criterion import SlicingCriterion

#: label -> (num_procs, max_stmts); statement volume scales with both.
SIZES = {
    "small": (6, 8),
    "medium": (12, 10),
    "large": (20, 12),
}
SEED = 2026
#: The medium-size acceptance gate: the indexed batch must be at least
#: this many times faster than the per-criterion two-pass reference.
SPEEDUP_GATE = 3.0
#: Smoke mode re-times the tiny degenerate fig3a workload; the indexed
#: path must not be slower (2% tolerance so timer noise cannot flake).
SMOKE_TOLERANCE = 1.02


def _program(label: str):
    num_procs, max_stmts = SIZES[label]
    rng = random.Random(SEED)
    config = GeneratorConfig(
        num_procs=num_procs,
        max_stmts=max_stmts,
        num_vars=6,
        call_probability=0.4,
    )
    return realize(generate_interprocedural(rng, config))


def _all_criteria(sdg):
    """Every distinct ``(line, var[, proc])`` the program admits: all
    variables each statement touches, per unit, proc-qualified outside
    main so shared line numbers cannot be ambiguous."""
    criteria = []
    seen = set()
    for unit, info in sdg.procs.items():
        proc = None if unit == MAIN_UNIT else unit
        for node in info.analysis.cfg.statement_nodes():
            for var in sorted(node.defs | node.uses):
                key = (node.line, var, proc)
                if key not in seen:
                    seen.add(key)
                    criteria.append(
                        SlicingCriterion(line=node.line, var=var, proc=proc)
                    )
    return criteria


def _workload(source_or_program):
    """(reference SDG, fast SDG, slicable criterion family).

    Fresh SDGs per configuration: the whole-SDG index memoizes on the
    SDG object, so sharing one would let the reference run reuse
    fast-path state.  Criteria that no configuration can slice (dead
    procedures, unreachable statements) are filtered up front under the
    reference configuration.
    """
    with sdg_closure_index(False):
        reference = build_sdg(source_or_program)
    with sdg_closure_index(True):
        fast = build_sdg(source_or_program)
    criteria = []
    with sdg_closure_index(False):
        for criterion in _all_criteria(reference):
            try:
                sdg_slice(reference, criterion)
            except SliceError:
                continue
            criteria.append(criterion)
    return reference, fast, criteria


def _run_batch(sdg, criteria):
    for criterion in criteria:
        sdg_slice(sdg, criterion)


def _best_of(fn, repeat: int = 3) -> float:
    """Best-of-N wall time — the standard noise-resistant estimator."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _verify_identical(reference, fast, criteria) -> None:
    """The in-run soundness check: both configurations must produce the
    same slice, down to the protocol payload bytes."""
    for criterion in criteria:
        with sdg_closure_index(False):
            ref = sdg_slice(reference, criterion)
        with sdg_closure_index(True):
            new = sdg_slice(fast, criterion)
        assert new.index_used and not ref.index_used
        assert ref.per_proc == new.per_proc, criterion
        assert ref.traversals == new.traversals, criterion
        assert ref.label_maps == new.label_maps, criterion
        ref_payload = json.dumps(
            slice_result_payload(ref.as_slice_result()), sort_keys=True
        )
        new_payload = json.dumps(
            slice_result_payload(new.as_slice_result()), sort_keys=True
        )
        assert ref_payload == new_payload, criterion


def _build_profile(program, repeat: int = 3):
    """Fresh analysis + SDG build under a tracer; returns best-of build
    and summary-fixed-point seconds (the amortized one-off costs)."""

    def one():
        analysis = analyze_program(program)
        tracer = Tracer()
        with use_tracer(tracer):
            start = time.perf_counter()
            build_sdg(program, main_analysis=analysis)
            total = time.perf_counter() - start
        summary = sum(
            span.seconds
            for span in tracer.walk()
            if span.name == "sdg-summary"
        )
        return total, summary

    profiles = [one() for _ in range(repeat)]
    return min(p[0] for p in profiles), min(p[1] for p in profiles)


def measure(label: str, repeat: int = 3):
    """One sized all-criteria batch through both configurations."""
    program = _program(label)
    reference, fast, criteria = _workload(program)
    # Time the one-off index build before verification memoizes it.
    with sdg_closure_index(True):
        build_start = time.perf_counter()
        index, _ = ensure_sdg_index(fast)
        index_build_seconds = time.perf_counter() - build_start
    _verify_identical(reference, fast, criteria)

    with sdg_closure_index(False):
        reference_seconds = _best_of(
            lambda: _run_batch(reference, criteria), repeat
        )
    with sdg_closure_index(True):
        fast_seconds = _best_of(lambda: _run_batch(fast, criteria), repeat)

    build_seconds, summary_seconds = _build_profile(program, repeat)
    vertices = sum(info.size for info in fast.procs.values())
    return {
        "size": label,
        "units": len(fast.procs),
        "vertices": vertices,
        "summary_edges": fast.summary_edges,
        "criteria": len(criteria),
        "build_seconds": round(build_seconds, 5),
        "summary_seconds": round(summary_seconds, 5),
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(reference_seconds / fast_seconds, 2),
        "index_build_seconds": round(index_build_seconds, 5),
        "index_ascend_components": index.ascend.component_count,
        "index_descend_components": index.descend.component_count,
        "payloads_identical": True,
    }


# ----------------------------------------------------------------------
# pytest-benchmark timings (comparison groups per size)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("label", ["small", "medium"])
def test_bench_sdg_batch_reference(benchmark, label):
    reference, _, criteria = _workload(_program(label))
    benchmark.group = f"sdg all-criteria {label}"
    with sdg_closure_index(False):
        benchmark(_run_batch, reference, criteria)


@pytest.mark.parametrize("label", ["small", "medium"])
def test_bench_sdg_batch_indexed(benchmark, label):
    _, fast, criteria = _workload(_program(label))
    benchmark.group = f"sdg all-criteria {label}"
    with sdg_closure_index(True):
        ensure_sdg_index(fast)
        benchmark(_run_batch, fast, criteria)


def test_sdg_batch_speedup_at_medium():
    """The acceptance-criterion check: ≥ 3× on the medium all-criteria
    batch, with payloads verified identical in-run."""
    entry = measure("medium")
    assert entry["speedup"] >= SPEEDUP_GATE, (
        f"indexed path only {entry['speedup']:.1f}x faster on "
        f"{entry['vertices']} vertices / {entry['criteria']} criteria "
        f"(reference {entry['reference_seconds']}s, fast "
        f"{entry['fast_seconds']}s); expected >= {SPEEDUP_GATE}x"
    )


# ----------------------------------------------------------------------
# standalone reporter / CI smoke
# ----------------------------------------------------------------------


def smoke() -> int:
    """The degenerate guarantee as a perf gate: on single-proc fig3a the
    SDG is exactly the main PDG, and the indexed path must not be slower
    than the two-pass reference there (both also node-for-node checked
    against each other by ``_verify_identical``)."""
    source = PAPER_PROGRAMS["fig3a"].source
    reference, fast, criteria = _workload(source)
    assert reference.is_degenerate
    _verify_identical(reference, fast, criteria)

    def timed(sdg, indexed, loops=30, repeat=5):
        with sdg_closure_index(indexed):
            if indexed:
                ensure_sdg_index(sdg)
            return _best_of(
                lambda: [_run_batch(sdg, criteria) for _ in range(loops)],
                repeat,
            ) / loops

    reference_seconds = timed(reference, False)
    fast_seconds = timed(fast, True)
    report = {
        "bench": "sdg-index-smoke",
        "program": "fig3a",
        "criteria": len(criteria),
        "reference_seconds": round(reference_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "ratio": round(reference_seconds / fast_seconds, 3),
        "payloads_identical": True,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if fast_seconds > reference_seconds * SMOKE_TOLERANCE:
        print(
            "FAIL: SDG-index path slower than the two-pass reference "
            "on degenerate fig3a",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(smoke())
    report = {
        "bench": "sdg-index-multi-criterion",
        "algorithm": "interprocedural",
        "workload": "all (line, var, proc) criteria, generated "
        "interprocedural programs",
        "sizes": [measure(label) for label in SIZES],
    }
    medium = next(
        entry for entry in report["sizes"] if entry["size"] == "medium"
    )
    report["speedup_at_medium"] = medium["speedup"]
    assert report["speedup_at_medium"] >= SPEEDUP_GATE, report
    with open("BENCH_sdg.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print("wrote BENCH_sdg.json")


if __name__ == "__main__":
    main()
