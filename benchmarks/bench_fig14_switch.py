"""Experiment F14 — Figures 14/15: the switch program on which Fig. 12
and Fig. 13 differ — conservative keeps the breaks on lines 5 and 7."""

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.conservative import conservative_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_source
from repro.slicing.structured import structured_slice

from benchmarks.conftest import corpus_analysis

ENTRY = PAPER_PROGRAMS["fig14a"]
CRITERION = SlicingCriterion(9, "y")


def test_bench_fig14_simplified_slice(benchmark):
    analysis = corpus_analysis("fig14a")
    result = benchmark(structured_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations[
        "structured"
    ]


def test_bench_fig14_conservative_slice(benchmark):
    analysis = corpus_analysis("fig14a")
    result = benchmark(conservative_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations[
        "conservative"
    ]


def test_bench_fig14_difference_is_the_two_breaks(benchmark):
    analysis = corpus_analysis("fig14a")

    def both():
        return (
            structured_slice(analysis, CRITERION),
            conservative_slice(analysis, CRITERION),
        )

    simplified, conservative = benchmark(both)
    assert set(conservative.statement_nodes()) - set(
        simplified.statement_nodes()
    ) == {5, 7}


def test_bench_fig14_extractions(benchmark):
    analysis = corpus_analysis("fig14a")
    simplified = structured_slice(analysis, CRITERION)
    text = benchmark(extract_source, simplified)
    assert "case 3:" not in text  # the arm disappears entirely
