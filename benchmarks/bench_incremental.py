"""Experiment B3 — incremental re-slicing under edit churn (our
addition; the paper's algorithms are single-shot).

The workload is an editor-loop shape: one ~1700-node, 51-procedure
program; N small random edits (each wraps one assignment's right-hand
side in ``+ k``, preserving the line layout); after every edit, *all*
slice-able ``(line, var)`` criteria are re-sliced interprocedurally.
The full configuration rebuilds everything from source each step; the
incremental configuration serves the trace from one persistent
:class:`~repro.service.cache.AnalysisCache` whose unit cache salvages
untouched procedures across all four tiers (source spans, unit
analyses, stitched SDG graphs, recorded slice results).

The acceptance gate: ≥ 10× over full recompute on this edit trace,
with every incremental payload verified byte-identical to the cold
recompute — the speedup claim is only admissible because the
equivalence assertion sits in the same run.

Besides the pytest gate this module doubles as a standalone reporter::

    PYTHONPATH=src python benchmarks/bench_incremental.py          # full run
    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke  # CI gate

The full run writes ``BENCH_incremental.json`` (trace seconds for both
configurations, speedup, salvage counters).  Smoke mode gates two
cheaper claims for CI: incremental must never lose to full recompute
on a fig3a comment-edit trace (2% timer tolerance), and a shortened
two-edit slice of the big trace must still clear 5×.

Timing note: best-of-N repetition is deliberately *not* used for the
trace timings — the incremental path is stateful (a second replay of
the same trace would be served entirely from warm caches), so each
configuration is timed over exactly one pass of the same edit
sequence, after the incremental side has been warmed on the *base*
program only (the edits themselves are always cold).
"""

from __future__ import annotations

import json
import random
import sys
import time

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import GeneratorConfig, generate_interprocedural
from repro.lang.ast_nodes import Assign, Binary, Num, walk_statements
from repro.lang.errors import SliceError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.pdg.builder import analyze_program
from repro.sdg.builder import sdg_for_analysis
from repro.service.cache import AnalysisCache
from repro.service.engine import enumerate_criteria
from repro.service.incremental import UnitCache, incremental
from repro.service.protocol import slice_result_payload
from repro.slicing.registry import get_algorithm

ALGORITHM = "interprocedural"
#: The ~1700-node workload: sparse coupling (few procedures per call
#: chain) is the regime incremental slicing targets — a small edit
#: leaves most slices' procedure sets untouched.
CONFIG = GeneratorConfig(
    num_procs=50,
    max_depth=5,
    max_stmts=17,
    params_per_proc=4,
    num_vars=6,
    call_probability=0.05,
)
PROGRAM_SEED = 42
EDIT_SEED = 9
EDITS = 6
SPEEDUP_GATE = 10.0
#: Smoke mode replays a fig3a comment-edit trace; incremental must not
#: be slower (2% tolerance so timer noise cannot flake the gate).
SMOKE_TOLERANCE = 1.02
SMOKE_EDITS = 2
SMOKE_GATE = 5.0


def edit_trace(source: str, edits: int, seed: int):
    """``edits`` successive sources, each one random RHS wrap deeper.

    Each step re-parses the previous source, wraps one random
    assignment's right-hand side in ``(... + k)``, and re-renders.  The
    mutation keeps every statement on its line, so only the edited
    procedure's fingerprint changes — the realistic small-edit shape.

    Edits target procedure bodies: procedures are the program's edit
    units, and ``main`` (the driver holding roughly half the program's
    statements here) is in *every* slice's procedure set, so an edit
    there correctly invalidates everything — measuring that step would
    time full recompute under another name, not incrementality.
    """
    rng = random.Random(seed)
    trace = []
    for _ in range(edits):
        program = parse_program(source)
        assigns = [
            stmt
            for proc in program.procs
            for top in proc.body
            for stmt in walk_statements(top)
            if isinstance(stmt, Assign)
        ]
        target = rng.choice(assigns)
        target.value = Binary(
            op="+", left=target.value, right=Num(rng.randint(1, 9))
        )
        source = pretty(program)
        trace.append(source)
    return trace


def valid_criteria(analysis):
    """The slice-able subset of the ``all`` criterion family.

    At sparse coupling many generated procedures are unreachable from
    ``main`` and their criteria are rejected by the resolver; timing
    error throws would measure exception plumbing, not slicing, so the
    workload keeps only criteria both configurations can answer.  (The
    RHS-wrap edits change no lines and no reachability, so validity is
    stable across the whole trace.)
    """
    slicer = get_algorithm(ALGORITHM)
    keep = []
    for criterion in enumerate_criteria(analysis, mode="all"):
        try:
            slicer(analysis, criterion)
        except SliceError:
            continue
        keep.append(criterion)
    return keep


def _slice_all(analysis, criteria):
    slicer = get_algorithm(ALGORITHM)
    return [
        slice_result_payload(slicer(analysis, criterion))
        for criterion in criteria
    ]


def measure(edits: int = EDITS):
    """One edit trace through both configurations, with verification."""
    base = pretty(generate_interprocedural(random.Random(PROGRAM_SEED), CONFIG))
    trace = edit_trace(base, edits, EDIT_SEED)

    with incremental(False):
        analysis = analyze_program(base)
        criteria = valid_criteria(analysis)
        nodes = sum(
            len(unit.analysis.cfg)
            for unit in sdg_for_analysis(analysis).procs.values()
        )

    # Incremental: one persistent cache, warmed on the base program
    # only — every edited source is cold when its step starts.
    cache = AnalysisCache(capacity=8, unit_cache=UnitCache())
    warm = cache.get_or_build(base)
    _slice_all(warm, criteria)

    start = time.perf_counter()
    incremental_payloads = [
        _slice_all(cache.get_or_build(source), criteria) for source in trace
    ]
    incremental_seconds = time.perf_counter() - start
    stats = cache.unit_cache.stats.snapshot()

    # Full: cold monolithic rebuild per step, incremental machinery off.
    with incremental(False):
        start = time.perf_counter()
        full_payloads = [
            _slice_all(analyze_program(source), criteria) for source in trace
        ]
        full_seconds = time.perf_counter() - start

    assert incremental_payloads == full_payloads, (
        "incremental payloads diverged from full recompute"
    )
    queries = edits * len(criteria)
    return {
        "edits": edits,
        "units": len(list(parse_program(base).units())),
        "cfg_nodes": nodes,
        "criteria": len(criteria),
        "queries": queries,
        "full_seconds": round(full_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "speedup": round(full_seconds / incremental_seconds, 2),
        "verified_identical": True,
        "salvage": {
            key: stats[key]
            for key in (
                "spans_reused",
                "spans_parsed",
                "units_reused",
                "units_built",
                "stitched_reused",
                "stitched_built",
                "slices_salvaged",
            )
        },
        "slice_salvage_rate": round(stats["slices_salvaged"] / queries, 4),
    }


def test_incremental_speedup_on_edit_trace():
    """The acceptance-criterion check: ≥ 10× over full recompute on
    the edit-trace workload, results verified identical."""
    entry = measure()
    assert entry["verified_identical"]
    assert entry["speedup"] >= SPEEDUP_GATE, (
        f"incremental only {entry['speedup']:.1f}x faster over "
        f"{entry['edits']} edits x {entry['criteria']} criteria "
        f"(full {entry['full_seconds']}s, incremental "
        f"{entry['incremental_seconds']}s); expected >= {SPEEDUP_GATE}x"
    )


# ----------------------------------------------------------------------
# standalone reporter / CI smoke
# ----------------------------------------------------------------------

def _smoke_fig3a():
    """fig3a comment-edit trace: incremental must never lose.

    Single-unit programs get no stitching benefit, so this is the
    worst case for the incremental path — the gate is "not slower",
    proving the machinery's overhead is negligible even where it
    cannot help.
    """
    base = PAPER_PROGRAMS["fig3a"].source
    trace = []
    for step in range(1, 6):
        lines = base.splitlines()
        lines[0] += "  //" + " edit" * step
        trace.append("\n".join(lines) + "\n")
    with incremental(False):
        analysis = analyze_program(base)
        criteria = enumerate_criteria(analysis, mode="all")

    def run_trace(loops=10):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(loops):
                cache = AnalysisCache(capacity=8, unit_cache=UnitCache())
                warm = cache.get_or_build(base)
                for criterion in criteria:
                    get_algorithm("agrawal")(warm, criterion)
                for source in trace:
                    edited = cache.get_or_build(source)
                    for criterion in criteria:
                        get_algorithm("agrawal")(edited, criterion)
            best = min(best, time.perf_counter() - start)
        return best / loops

    incremental_seconds = run_trace()
    with incremental(False):
        full_seconds = run_trace()
    return {
        "program": "fig3a",
        "criteria": len(criteria),
        "edits": 5,
        "full_seconds": round(full_seconds, 6),
        "incremental_seconds": round(incremental_seconds, 6),
        "ratio": round(full_seconds / incremental_seconds, 3),
    }


def smoke() -> int:
    fig3a = _smoke_fig3a()
    big = measure(edits=SMOKE_EDITS)
    report = {
        "bench": "incremental-smoke",
        "fig3a_trace": fig3a,
        "edit_trace": big,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    failed = 0
    if fig3a["incremental_seconds"] > fig3a["full_seconds"] * SMOKE_TOLERANCE:
        print(
            "FAIL: incremental path slower than full recompute on the "
            "fig3a comment-edit trace",
            file=sys.stderr,
        )
        failed = 1
    if big["speedup"] < SMOKE_GATE:
        print(
            f"FAIL: incremental only {big['speedup']:.1f}x on the "
            f"shortened edit trace; expected >= {SMOKE_GATE}x",
            file=sys.stderr,
        )
        failed = 1
    return failed


def main() -> None:
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(smoke())
    report = {
        "bench": "incremental-edit-trace",
        "algorithm": ALGORITHM,
        "workload": (
            f"{EDITS} random RHS-wrap edits, all slice-able (line, var) "
            "criteria re-sliced after each edit"
        ),
        "trace": measure(),
    }
    assert report["trace"]["speedup"] >= SPEEDUP_GATE, report
    with open("BENCH_incremental.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
