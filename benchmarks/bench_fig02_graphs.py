"""Experiment F2 — Figure 2: the flowgraph, data-, control- and program
dependence graphs of the jump-free running example."""

from repro.analysis.control_dependence import compute_control_dependence
from repro.analysis.defuse import compute_data_dependence
from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg
from repro.corpus import PAPER_PROGRAMS
from repro.lang.parser import parse_program
from repro.pdg.builder import build_pdg

SOURCE = PAPER_PROGRAMS["fig1a"].source


def test_bench_fig02_flowgraph(benchmark):
    program = parse_program(SOURCE)
    cfg = benchmark(build_cfg, program)
    assert len(cfg.statement_nodes()) == 12  # paper statements 1..12


def test_bench_fig02_data_dependence(benchmark):
    cfg = build_cfg(parse_program(SOURCE))
    ddg = benchmark(compute_data_dependence, cfg)
    assert ddg.defs_reaching(12) == [2, 7]  # paper §2's example edge


def test_bench_fig02_control_dependence(benchmark):
    cfg = build_cfg(parse_program(SOURCE))
    pdt = build_postdominator_tree(cfg)
    cdg = benchmark(compute_control_dependence, cfg, pdt)
    assert 5 in cdg.parents_of(7)  # "node 7 is control dependent on 5"


def test_bench_fig02_program_dependence_graph(benchmark):
    cfg = build_cfg(parse_program(SOURCE))
    pdg = benchmark(build_pdg, cfg)
    # The PDG drives the slice of Fig. 1-b.
    assert pdg.backward_closure([12]) >= {2, 3, 4, 5, 7, 12}
