"""Ablation: the two dominator algorithms (paper refs [20], [25]).

The paper's slicer consumes a postdominator tree however it was built;
this bench compares the iterative (Cooper–Harvey–Kennedy style) and
Lengauer–Tarjan constructions at several CFG sizes.  On the shallow,
mostly-reducible graphs SL produces, the iterative algorithm's simplicity
wins at small sizes while Lengauer–Tarjan's better asymptotics show as
programs grow — and both always produce the identical tree (asserted).
"""

import pytest

from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg

from benchmarks.conftest import sized_programs

SIZES = [60, 240, 960]
CFGS = {
    size: build_cfg(program)
    for size, program in sized_programs("unstructured", SIZES, seed=808)
}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", ["iterative", "lengauer-tarjan"])
def test_bench_postdominators(benchmark, algorithm, size):
    cfg = CFGS[size]
    benchmark.group = f"postdominators n={size}"
    tree = benchmark(build_postdominator_tree, cfg, algorithm)
    reference = build_postdominator_tree(
        cfg, "lengauer-tarjan" if algorithm == "iterative" else "iterative"
    )
    assert tree.as_parent_map() == reference.as_parent_map()
