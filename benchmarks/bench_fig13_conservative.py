"""Experiment F13 — Figure 13: the conservative on-the-fly algorithm.
No traversals at all; may over-include (Fig. 14-c) but never
under-includes relative to Fig. 12."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.conservative import conservative_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.structured import structured_slice

from benchmarks.conftest import corpus_analysis


@pytest.mark.parametrize("name", ["fig1a", "fig5a", "fig14a", "fig16a"])
def test_bench_fig13_conservative_slice(benchmark, name):
    entry = PAPER_PROGRAMS[name]
    analysis = corpus_analysis(name)
    criterion = SlicingCriterion(*entry.criterion)
    result = benchmark(conservative_slice, analysis, criterion)
    simplified = structured_slice(analysis, criterion)
    assert set(simplified.statement_nodes()) <= set(result.statement_nodes())
    if "conservative" in entry.expectations:
        assert frozenset(result.statement_nodes()) == entry.expectations[
            "conservative"
        ]
