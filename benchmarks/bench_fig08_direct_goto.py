"""Experiment F8 — Figure 8 (and its graphs, Figure 9): direct jumps to
the loop head; including goto 7 forces 11 and 13 in, and with them the
predicate on line 9.  Also reproduces the Jiang–Zhou–Robson failure the
paper reports (§5, experiment C4)."""

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.jiang import jiang_slice

from benchmarks.conftest import corpus_analysis

ENTRY = PAPER_PROGRAMS["fig8a"]
CRITERION = SlicingCriterion(15, "positives")


def test_bench_fig08_agrawal_slice(benchmark):
    analysis = corpus_analysis("fig8a")
    result = benchmark(agrawal_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations["agrawal"]
    assert result.traversals == 1
    assert result.label_map == {"L14": 15, "L12": 13}


def test_bench_fig08_jiang_reconstruction(benchmark):
    analysis = corpus_analysis("fig8a")
    result = benchmark(jiang_slice, analysis, CRITERION)
    members = set(result.statement_nodes())
    assert 7 in members
    assert 11 not in members and 13 not in members  # the reported miss
