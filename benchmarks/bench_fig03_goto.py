"""Experiment F3 — Figure 3: the goto version of the running example.

Regenerates both rows of the figure: the (wrong) conventional slice of
Fig. 3-b and the Fig. 7 algorithm's slice of Fig. 3-c, including the
label re-association L14 → 15.
"""

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_source

from benchmarks.conftest import corpus_analysis

ENTRY = PAPER_PROGRAMS["fig3a"]
CRITERION = SlicingCriterion(15, "positives")


def test_bench_fig03_conventional_slice(benchmark):
    analysis = corpus_analysis("fig3a")
    result = benchmark(conventional_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations[
        "conventional"
    ]


def test_bench_fig03_agrawal_slice(benchmark):
    analysis = corpus_analysis("fig3a")
    result = benchmark(agrawal_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations["agrawal"]
    assert result.traversals == 1
    assert result.label_map == {"L14": 15}


def test_bench_fig03_extraction(benchmark):
    analysis = corpus_analysis("fig3a")
    result = agrawal_slice(analysis, CRITERION)
    text = benchmark(extract_source, result)
    assert "L13: goto L3;" in text
    assert "L14: ;" in text
