"""Benchmarks for the extensions: forward slicing, chopping, dynamic
slicing, and the two interpreters (experiment ids X1–X3 in DESIGN.md).

Shape claims:

* a forward slice costs the same as a backward slice (one closure);
* the dynamic slicer's cost is dominated by tracing, linear in trace
  length;
* the CFG interpreter and the tree-walking interpreter agree — and the
  CFG interpreter is not dramatically slower despite paying node-by-node
  dispatch.
"""

import random

from repro.corpus import PAPER_PROGRAMS
from repro.dynamic.slicer import dynamic_slice
from repro.dynamic.trace import record_trace
from repro.gen.generator import random_criterion
from repro.interp.ast_interpreter import run_ast
from repro.interp.interpreter import run_program
from repro.lang.parser import parse_program
from repro.pdg.builder import analyze_program
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.forward import chop, forward_slice

from benchmarks.conftest import corpus_analysis, sized_programs

CRITERION = SlicingCriterion(15, "positives")


def test_bench_forward_slice(benchmark):
    analysis = corpus_analysis("fig3a")
    analysis.augmented_pdg  # warm, like the backward benches warm theirs
    result = benchmark(forward_slice, analysis, SlicingCriterion(4, "x"))
    assert len(result.statement_nodes()) >= 10


def test_bench_chop(benchmark):
    analysis = corpus_analysis("fig3a")
    analysis.augmented_pdg
    result = benchmark(
        chop, analysis, SlicingCriterion(4, "x"), CRITERION
    )
    assert 8 in result.nodes


def test_bench_trace_recording(benchmark):
    analysis = corpus_analysis("fig3a")
    inputs = list(range(-10, 40))
    trace = benchmark(record_trace, analysis.cfg, inputs)
    assert len(trace) > 100


def test_bench_dynamic_slice(benchmark):
    analysis = corpus_analysis("fig3a")
    inputs = list(range(-10, 40))
    result = benchmark(
        dynamic_slice, analysis, CRITERION, inputs
    )
    static = conventional_slice(analysis, CRITERION)
    assert set(result.statement_nodes()) <= set(static.statement_nodes())


def test_bench_dynamic_scales_with_trace(benchmark):
    analysis = corpus_analysis("fig3a")
    inputs = list(range(-200, 200))

    def run():
        return dynamic_slice(analysis, CRITERION, inputs)

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(result.trace) > 2000


def test_bench_interpreter_cfg(benchmark):
    program = parse_program(PAPER_PROGRAMS["fig5a"].source)
    inputs = list(range(-25, 25))
    benchmark.group = "interpreters"
    result = benchmark(run_program, program, inputs)
    assert len(result.outputs) == 2


def test_bench_interpreter_ast(benchmark):
    program = parse_program(PAPER_PROGRAMS["fig5a"].source)
    inputs = list(range(-25, 25))
    benchmark.group = "interpreters"
    result = benchmark(run_ast, program, inputs)
    assert len(result.outputs) == 2


def test_bench_dynamic_vs_static_size(benchmark):
    """Dynamic slices are smaller: measured ratio over random runs."""
    analyses = [
        analyze_program(program)
        for _, program in sized_programs("structured", [120] * 4, seed=9)
    ]

    def sweep():
        shrunk = total = 0
        for index, analysis in enumerate(analyses):
            rng = random.Random(index)
            line, var = random_criterion(rng, analysis.program)
            criterion = SlicingCriterion(line, var)
            inputs = [rng.randint(-9, 9) for _ in range(8)]
            try:
                dynamic = dynamic_slice(
                    analysis, criterion, inputs, step_limit=100_000
                )
            except Exception:
                continue
            static = conventional_slice(analysis, criterion)
            total += 1
            if len(dynamic.statement_nodes()) <= len(
                static.statement_nodes()
            ):
                shrunk += 1
        return shrunk, total

    shrunk, total = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert shrunk == total  # never larger
