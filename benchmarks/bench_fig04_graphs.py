"""Experiment F4 — Figure 4: the postdominator tree and lexical successor
tree of the goto program (the two structures the new algorithm walks)."""

from repro.analysis.lexical import build_lst, build_lst_syntactic
from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg
from repro.corpus import PAPER_PROGRAMS
from repro.lang.parser import parse_program

SOURCE = PAPER_PROGRAMS["fig3a"].source


def test_bench_fig04_postdominator_tree_iterative(benchmark):
    cfg = build_cfg(parse_program(SOURCE))
    tree = benchmark(build_postdominator_tree, cfg)
    assert tree.parent_of(13) == 3  # Fig. 4-b

def test_bench_fig04_postdominator_tree_lengauer_tarjan(benchmark):
    cfg = build_cfg(parse_program(SOURCE))
    tree = benchmark(
        build_postdominator_tree, cfg, "lengauer-tarjan"
    )
    assert tree.parent_of(13) == 3


def test_bench_fig04_lexical_successor_tree(benchmark):
    cfg = build_cfg(parse_program(SOURCE))
    lst = benchmark(build_lst, cfg)
    assert lst.parent_of(13) == 14  # Fig. 4-d: the straight line chain


def test_bench_fig04_lst_syntactic_rebuild(benchmark):
    program = parse_program(SOURCE)
    cfg = build_cfg(program)
    lst = benchmark(build_lst_syntactic, program, cfg)
    assert lst.as_parent_map() == build_lst(cfg).as_parent_map()
