"""Experiment O1 — cost of the tracing layer (our addition).

Three questions, answered on the full front-end pipeline
(``analyze_program`` + Fig. 7 slice, the instrumented hot path):

* **Tracing off** (no tracer installed): every ``trace_span`` call is
  one ``ContextVar.get`` plus a ``None`` check returning a shared null
  context manager.  Measured as (disabled-call cost × calls per
  request) / request time — the acceptance budget is **< 5 %**, the
  measured figure is typically well under 1 %.
* **Tracing on**: a :class:`Tracer` allocates one :class:`Span` per
  phase; overhead is reported as an A/B ratio against the untraced
  run.
* **Where the time goes**: per-phase totals for ``fig3a`` and a
  generated ~200-node unstructured program.

Standalone reporter::

    PYTHONPATH=src python benchmarks/bench_observability.py

writes ``BENCH_observability.json`` so the benchmark trajectory can
accumulate across PRs.
"""

from __future__ import annotations

import json
import random
import time

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import random_criterion
from repro.lang.pretty import pretty
from repro.obs.tracer import Tracer, phase_totals, trace_span, use_tracer
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import get_algorithm

try:
    from benchmarks.conftest import sized_programs
except ImportError:  # standalone: python benchmarks/bench_observability.py
    import os
    import sys

    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from benchmarks.conftest import sized_programs

PROGRAM = "fig3a"
ALGORITHM = "agrawal"
ITERATIONS = 30
REPEATS = 3
GENERATED_SIZE = 200


def _workloads():
    """(name, source, criterion) for fig3a and the generated program."""
    entry = PAPER_PROGRAMS[PROGRAM]
    line, var = entry.criterion
    out = [(PROGRAM, entry.source, SlicingCriterion(line, var))]
    ((size, program),) = sized_programs("unstructured", [GENERATED_SIZE])
    analysis = analyze_program(program)
    gen_line, gen_var = random_criterion(random.Random(size), program)
    out.append(
        (
            f"generated-{len(analysis.cfg.nodes)}-nodes",
            pretty(program),
            SlicingCriterion(gen_line, gen_var),
        )
    )
    return out


def _run_once(source: str, criterion: SlicingCriterion) -> None:
    get_algorithm(ALGORITHM)(analyze_program(source), criterion)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _untraced_seconds(source, criterion) -> float:
    return (
        _best_of(
            REPEATS,
            lambda: [_run_once(source, criterion) for _ in range(ITERATIONS)],
        )
        / ITERATIONS
    )


def _traced_seconds(source, criterion) -> float:
    def run():
        for _ in range(ITERATIONS):
            tracer = Tracer()
            with use_tracer(tracer):
                with tracer.span("slice", algorithm=ALGORITHM):
                    _run_once(source, criterion)

    return _best_of(REPEATS, run) / ITERATIONS


def _spans_per_request(source, criterion) -> int:
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("slice", algorithm=ALGORITHM):
            _run_once(source, criterion)
    return sum(1 for _ in tracer.walk())


def disabled_call_seconds(samples: int = 200_000) -> float:
    """Cost of one ``trace_span`` call with no tracer installed."""

    def run():
        for _ in range(samples):
            with trace_span("noop"):
                pass

    return _best_of(REPEATS, run) / samples


def _phase_breakdown(source, criterion):
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("slice", algorithm=ALGORITHM):
            _run_once(source, criterion)
    wall = sum(root.seconds for root in tracer.roots) or 1e-12
    return {
        name: {
            "count": count,
            "total_ms": round(seconds * 1000.0, 4),
            "share_pct": round(100.0 * seconds / wall, 2),
        }
        for name, (count, seconds) in sorted(phase_totals(tracer).items())
    }


def measure():
    report = {"bench": "observability-overhead", "algorithm": ALGORITHM}
    workloads = {}
    for name, source, criterion in _workloads():
        off = _untraced_seconds(source, criterion)
        on = _traced_seconds(source, criterion)
        spans = _spans_per_request(source, criterion)
        disabled = disabled_call_seconds()
        disabled_pct = 100.0 * spans * disabled / off
        workloads[name] = {
            "untraced_ms": round(off * 1000.0, 4),
            "traced_ms": round(on * 1000.0, 4),
            "tracing_on_overhead_pct": round(100.0 * (on / off - 1.0), 2),
            "spans_per_request": spans,
            "disabled_call_ns": round(disabled * 1e9, 1),
            "tracing_off_overhead_pct": round(disabled_pct, 4),
            "phases": _phase_breakdown(source, criterion),
        }
    report["workloads"] = workloads
    return report


def test_bench_traced_pipeline(benchmark):
    entry = PAPER_PROGRAMS[PROGRAM]
    line, var = entry.criterion
    criterion = SlicingCriterion(line, var)

    def traced():
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("slice", algorithm=ALGORITHM):
                _run_once(entry.source, criterion)

    benchmark.group = f"observability ({PROGRAM})"
    benchmark(traced)


def test_bench_untraced_pipeline(benchmark):
    entry = PAPER_PROGRAMS[PROGRAM]
    line, var = entry.criterion
    criterion = SlicingCriterion(line, var)
    benchmark.group = f"observability ({PROGRAM})"
    benchmark(_run_once, entry.source, criterion)


def test_tracing_disabled_overhead_under_budget():
    """The acceptance-criterion check: with no tracer installed, the
    instrumentation costs < 5 % of a request."""
    entry = PAPER_PROGRAMS[PROGRAM]
    line, var = entry.criterion
    criterion = SlicingCriterion(line, var)
    off = _untraced_seconds(entry.source, criterion)
    spans = _spans_per_request(entry.source, criterion)
    disabled = disabled_call_seconds(samples=50_000)
    overhead_pct = 100.0 * spans * disabled / off
    assert overhead_pct < 5.0, (
        f"disabled tracing costs {overhead_pct:.2f}% of a request "
        f"({spans} spans x {disabled * 1e9:.0f}ns over {off * 1e3:.2f}ms)"
    )


def main() -> None:
    report = measure()
    with open("BENCH_observability.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
