"""Shared helpers for the benchmark suite.

Every benchmark asserts the paper-expected artefact besides timing it,
so ``pytest benchmarks/ --benchmark-only`` is simultaneously a
reproduction run: a wrong slice fails the bench.
"""

from __future__ import annotations

import random

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import (
    GeneratorConfig,
    generate_structured,
    generate_unstructured,
    realize,
)
from repro.pdg.builder import ProgramAnalysis
from repro.service.cache import AnalysisCache

#: Bounded, content-addressed replacement for the old module-level dict
#: (the corpus has ~10 programs, so nothing evicts in practice, but the
#: benches now exercise the same cache the service runs on).
ANALYSIS_CACHE = AnalysisCache(capacity=32)


def corpus_analysis(name: str) -> ProgramAnalysis:
    return ANALYSIS_CACHE.get_or_build(PAPER_PROGRAMS[name].source)


def sized_programs(kind: str, sizes, seed: int = 2024):
    """Deterministic programs of increasing size for scaling benches."""
    out = []
    for size in sizes:
        rng = random.Random(seed + size)
        if kind == "unstructured":
            config = GeneratorConfig(flat_length=size, num_vars=6)
            program = realize(generate_unstructured(rng, config))
        else:
            config = GeneratorConfig(
                max_depth=4, max_stmts=max(3, size // 24), num_vars=6
            )
            program = realize(generate_structured(rng, config))
        out.append((size, program))
    return out


@pytest.fixture(scope="session")
def fig_analyses():
    return {name: corpus_analysis(name) for name in PAPER_PROGRAMS}
