"""Experiment F5 — Figure 5: the continue version.  The new algorithm
keeps the continue on line 7 and drops the one on line 11 (Fig. 5-c);
Lyle's keeps both plus the predicate on line 9 (§5)."""

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.lyle import lyle_slice

from benchmarks.conftest import corpus_analysis

ENTRY = PAPER_PROGRAMS["fig5a"]
CRITERION = SlicingCriterion(14, "positives")


def test_bench_fig05_agrawal_slice(benchmark):
    analysis = corpus_analysis("fig5a")
    result = benchmark(agrawal_slice, analysis, CRITERION)
    assert frozenset(result.statement_nodes()) == ENTRY.expectations["agrawal"]
    assert 7 in result.nodes and 11 not in result.nodes


def test_bench_fig05_lyle_slice(benchmark):
    analysis = corpus_analysis("fig5a")
    result = benchmark(lyle_slice, analysis, CRITERION)
    members = set(result.statement_nodes())
    assert {7, 9, 11} <= members  # the paper's §5 comparison
