"""Experiment F1 — Figure 1: the conventional slice of the jump-free
running example w.r.t. ``positives`` on line 12 (= Fig. 1-b)."""

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion

from benchmarks.conftest import corpus_analysis

EXPECTED = PAPER_PROGRAMS["fig1a"].expectations["conventional"]


def test_bench_fig01_conventional_slice(benchmark):
    analysis = corpus_analysis("fig1a")
    criterion = SlicingCriterion(12, "positives")

    result = benchmark(conventional_slice, analysis, criterion)
    assert frozenset(result.statement_nodes()) == EXPECTED


def test_bench_fig01_full_pipeline(benchmark):
    """Parse + analyze + slice from raw source (the end-to-end cost)."""
    from repro.slicing import slice_program

    source = PAPER_PROGRAMS["fig1a"].source
    result = benchmark(
        slice_program, source, 12, "positives", "conventional"
    )
    assert frozenset(result.statement_nodes()) == EXPECTED
