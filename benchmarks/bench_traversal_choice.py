"""Experiment B2 — the §3 remark that the pre-order traversal may be
driven by either tree: "the same final slice is obtained in each case.
While one method may require less traversals than the other in the case
of one slice, the opposite may be true in the case of another slice."

The bench measures both drivers on Fig. 10 (where the postdominator
drive needs two productive traversals) and on a batch of random goto
programs, recording traversal-count statistics.  The slice-set agreement
itself (exact after pruning — erratum E2) is asserted.
"""

import random

import pytest

from repro.gen.generator import random_criterion
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion

from benchmarks.conftest import corpus_analysis, sized_programs


@pytest.mark.parametrize("drive_tree", ["postdominator", "lexical"])
def test_bench_traversal_choice_fig10(benchmark, drive_tree):
    analysis = corpus_analysis("fig10a")
    criterion = SlicingCriterion(9, "y")
    benchmark.group = "fig10 drive-tree"
    result = benchmark(
        agrawal_slice, analysis, criterion, drive_tree
    )
    assert frozenset(result.statement_nodes()) == frozenset(
        {1, 2, 3, 4, 7, 9}
    )


def test_bench_traversal_choice_statistics(benchmark):
    """Traversal counts for both drivers over a seed batch; printed to
    the bench log and recorded in EXPERIMENTS.md."""
    batch = [
        analyze_program(program)
        for _, program in sized_programs(
            "unstructured", [40] * 8, seed=5150
        )
    ]
    criteria = [
        SlicingCriterion(
            *random_criterion(random.Random(i), analysis.program)
        )
        for i, analysis in enumerate(batch)
    ]

    def sweep():
        counts = {"postdominator": 0, "lexical": 0, "programs": 0}
        for analysis, criterion in zip(batch, criteria):
            by_pdt = agrawal_slice(analysis, criterion)
            by_lst = agrawal_slice(analysis, criterion, drive_tree="lexical")
            counts["postdominator"] += by_pdt.traversals
            counts["lexical"] += by_lst.traversals
            counts["programs"] += 1
            pruned_pdt = agrawal_slice(
                analysis, criterion, prune_redundant=True
            )
            pruned_lst = agrawal_slice(
                analysis,
                criterion,
                drive_tree="lexical",
                prune_redundant=True,
            )
            assert pruned_pdt.same_statements_as(pruned_lst)
        return counts

    counts = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert counts["programs"] == 8
