"""Experiment F7 — the Fig. 7 algorithm itself: distribution of
productive traversal counts.

§3 predicts: a single traversal suffices unless the program contains a
(postdominates, lexically-succeeds) jump pair, and "multiple traversals
are [not] always required whenever a program contains such pairs"
(footnote 4).  The bench measures the distribution over random goto
programs and asserts the implications that do hold:

* no conflicting jump pair ⇒ exactly ≤ 1 productive traversal;
* every observed count is small (the fixed point converges fast).
"""

import random

from repro.analysis.lexical import jump_conflicting_pairs
from repro.gen.generator import random_criterion
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion

from benchmarks.conftest import sized_programs

BATCH = [
    analyze_program(program)
    for _, program in sized_programs("unstructured", [30] * 12, seed=414)
]


def test_bench_traversal_distribution(benchmark):
    def sweep():
        histogram = {}
        for index, analysis in enumerate(BATCH):
            line, var = random_criterion(
                random.Random(index), analysis.program
            )
            result = agrawal_slice(analysis, SlicingCriterion(line, var))
            histogram[result.traversals] = (
                histogram.get(result.traversals, 0) + 1
            )
            pairs = jump_conflicting_pairs(
                analysis.cfg, analysis.pdt, analysis.lst
            )
            if not pairs:
                assert result.traversals <= 1
        return histogram

    histogram = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert sum(histogram.values()) == len(BATCH)
    assert max(histogram) <= 4  # fast convergence in practice
