"""Integration tests for the slicing service: concurrent correctness
against the single-threaded registry path, the batch runner, and the
HTTP front end."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.lang.errors import SlangError
from repro.pdg.builder import analyze_program
from repro.service.cache import AnalysisCache
from repro.service.engine import SlicingEngine, perform_compare, perform_slice
from repro.service.protocol import dump_json, ok_envelope
from repro.service.server import make_server
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import (
    CORRECT_STRUCTURED,
    algorithm_names,
    get_algorithm,
)

#: Algorithms exercised on every corpus program (correct-general plus
#: baselines); structured-only ones are added on structured programs.
GENERAL_ALGORITHMS = [
    name for name in algorithm_names() if name not in CORRECT_STRUCTURED
]


def _workload():
    """Mixed slice/compare payloads over the paper corpus, with the
    expected envelope computed on the single-threaded registry path."""
    jobs = []
    for name, entry in sorted(PAPER_PROGRAMS.items()):
        line, var = entry.criterion
        analysis = analyze_program(entry.source)
        algorithms = list(GENERAL_ALGORITHMS)
        if entry.structured:
            algorithms += [
                algo
                for algo in CORRECT_STRUCTURED
                if _runs_clean(analysis, line, var, algo)
            ]
        for algorithm in algorithms:
            payload = {
                "op": "slice",
                "source": entry.source,
                "line": line,
                "var": var,
                "algorithm": algorithm,
            }
            expected = ok_envelope(
                "slice", perform_slice(analysis, line, var, algorithm)
            )
            jobs.append((payload, expected))
        compare_payload = {
            "op": "compare",
            "source": entry.source,
            "line": line,
            "var": var,
        }
        expected = ok_envelope(
            "compare", perform_compare(analysis, line, var)
        )
        jobs.append((compare_payload, expected))
    return jobs


def _runs_clean(analysis, line, var, algorithm) -> bool:
    try:
        get_algorithm(algorithm)(
            analysis, SlicingCriterion(line=line, var=var)
        )
    except SlangError:
        return False
    return True


class TestConcurrentEngine:
    def test_threaded_responses_equal_single_threaded_registry(self):
        jobs = _workload()
        engine = SlicingEngine(
            cache=AnalysisCache(capacity=16, prewarm=True), workers=8
        )
        # Each request repeated from several threads at once.
        repeated = [job for job in jobs for _ in range(3)]
        with ThreadPoolExecutor(max_workers=12) as pool:
            envelopes = list(
                pool.map(
                    lambda job: (engine.handle_payload(job[0]), job[1]),
                    repeated,
                )
            )
        engine.close()
        for envelope, expected in envelopes:
            assert envelope == expected

    def test_run_batch_preserves_order(self):
        jobs = _workload()
        engine = SlicingEngine(cache=AnalysisCache(capacity=16), workers=6)
        responses = engine.run_batch([payload for payload, _ in jobs])
        engine.close()
        assert len(responses) == len(jobs)
        for response, (_, expected) in zip(responses, jobs):
            assert response == expected

    def test_cache_is_shared_across_requests(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=16), workers=4)
        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        payload = {
            "op": "slice",
            "source": entry.source,
            "line": line,
            "var": var,
        }
        engine.run_batch([payload] * 20)
        stats = engine.cache.stats()
        engine.close()
        assert stats["misses"] <= 4  # benign build races at most
        assert stats["hits"] >= 16
        assert stats["entries"] == 1

    def test_structured_only_rejection_is_structured(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=4))
        entry = PAPER_PROGRAMS["fig3a"]  # unstructured gotos
        line, var = entry.criterion
        for algorithm in CORRECT_STRUCTURED:
            envelope = engine.handle_payload(
                {
                    "op": "slice",
                    "source": entry.source,
                    "line": line,
                    "var": var,
                    "algorithm": algorithm,
                }
            )
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "slice-error"
            assert "structured-only" in envelope["error"]["message"]
        engine.close()

    def test_metrics_fast_path_matches_inline(self):
        from repro.metrics import slice_based_metrics

        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        engine = SlicingEngine(cache=AnalysisCache(capacity=4), workers=4)
        pooled = slice_based_metrics(analysis, engine=engine)
        engine.close()
        inline = slice_based_metrics(analysis)
        assert pooled == inline

    def test_bulk_slice_every_criterion(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=4), workers=4)
        entry = PAPER_PROGRAMS["fig3a"]
        payloads = engine.bulk_slice(entry.source, mode="all")
        engine.close()
        analysis = analyze_program(entry.source)
        slicer = get_algorithm("agrawal")
        for payload in payloads:
            criterion = SlicingCriterion(
                line=payload["criterion"]["line"],
                var=payload["criterion"]["var"],
            )
            expected = slicer(analysis, criterion).statement_nodes()
            assert payload["nodes"] == expected


@pytest.fixture
def http_server():
    engine = SlicingEngine(
        cache=AnalysisCache(capacity=16, prewarm=True), workers=6
    )
    server = make_server(port=0, engine=engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    engine.close()


def _post(server, path, obj):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _get(server, path):
    port = server.server_address[1]
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestHTTPServer:
    def test_concurrent_http_slices_match_cli_bytes(self, http_server):
        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        analysis = analyze_program(entry.source)
        expected = {}
        for algorithm in GENERAL_ALGORITHMS:
            expected[algorithm] = dump_json(
                ok_envelope(
                    "slice", perform_slice(analysis, line, var, algorithm)
                )
            )

        def hit(algorithm):
            status, body = _post(
                http_server,
                "/slice",
                {
                    "source": entry.source,
                    "line": line,
                    "var": var,
                    "algorithm": algorithm,
                },
            )
            return algorithm, status, body

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(hit, GENERAL_ALGORITHMS * 3))
        for algorithm, status, body in results:
            assert status == 200
            assert body == expected[algorithm]

    def test_compare_endpoint_matches_cli_bytes(self, http_server):
        entry = PAPER_PROGRAMS["fig5a"]
        line, var = entry.criterion
        analysis = analyze_program(entry.source)
        expected = dump_json(
            ok_envelope("compare", perform_compare(analysis, line, var))
        )
        status, body = _post(
            http_server,
            "/compare",
            {"source": entry.source, "line": line, "var": var},
        )
        assert status == 200
        assert body == expected

    def test_batch_endpoint(self, http_server):
        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        requests = [
            {
                "op": "slice",
                "source": entry.source,
                "line": line,
                "var": var,
                "id": f"r{i}",
            }
            for i in range(6)
        ]
        status, body = _post(http_server, "/batch", {"requests": requests})
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True
        assert [r["id"] for r in payload["responses"]] == [
            f"r{i}" for i in range(6)
        ]

    def test_graph_and_metrics_endpoints(self, http_server):
        entry = PAPER_PROGRAMS["fig5a"]
        status, body = _post(
            http_server, "/graph", {"source": entry.source, "kind": "pdt"}
        )
        assert status == 200
        assert "digraph" in json.loads(body)["result"]["dot"]
        status, body = _post(
            http_server, "/metrics", {"source": entry.source}
        )
        assert status == 200
        assert "tightness" in json.loads(body)["result"]

    def test_stats_and_algorithms_endpoints(self, http_server):
        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        _post(
            http_server,
            "/slice",
            {"source": entry.source, "line": line, "var": var},
        )
        status, body = _get(http_server, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["requests"].get("slice:agrawal", 0) >= 1
        assert "cache" in stats and stats["cache"]["entries"] >= 1
        status, body = _get(http_server, "/algorithms")
        assert status == 200
        names = [a["name"] for a in json.loads(body)["algorithms"]]
        assert names == algorithm_names()

    def test_error_statuses(self, http_server):
        status, body = _get(http_server, "/nope")
        assert status == 404
        status, body = _post(http_server, "/slice", {"line": 1, "var": "x"})
        assert status == 400
        assert json.loads(body)["error"]["code"] == "protocol-error"
        status, body = _post(
            http_server,
            "/slice",
            {"source": "x = ;", "line": 1, "var": "x"},
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse-error"
        status, body = _post(http_server, "/batch", {"requests": "nope"})
        assert status == 400

    def test_healthz(self, http_server):
        status, body = _get(http_server, "/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_check_endpoint(self, http_server):
        source = "read(x);\ny = 1;\nL: x = x - 1;\nif (x > 0) goto L;\nwrite(x);\n"
        status, body = _post(http_server, "/check", {"source": source})
        assert status == 200
        result = json.loads(body)["result"]
        assert result["clean"] is False
        assert result["counts"] == {"SL105": 1, "SL108": 1}
        # select/ignore prefixes travel over the wire too.
        status, body = _post(
            http_server, "/check", {"source": source, "ignore": ["SL105"]}
        )
        assert json.loads(body)["result"]["counts"] == {"SL108": 1}
        # Per-code diagnostic counters surface in /stats.
        status, body = _get(http_server, "/stats")
        stats = json.loads(body)
        assert stats["diagnostics"].get("SL105", 0) >= 1
        assert stats["requests"].get("check", 0) >= 2

    def test_check_endpoint_reports_syntax_errors_as_diagnostics(
        self, http_server
    ):
        status, body = _post(http_server, "/check", {"source": "read("})
        assert status == 200  # the *check* succeeded; the program is bad
        result = json.loads(body)["result"]
        assert result["counts"] == {"SL001": 1}
        assert result["summary"]["error"] == 1

    def test_check_malformed_request(self, http_server):
        status, body = _post(http_server, "/check", {"source": 7})
        assert status == 400
        assert json.loads(body)["error"]["code"] == "protocol-error"
        status, body = _post(
            http_server, "/check", {"source": "x = 1;", "select": "SL1"}
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "protocol-error"

    def test_unreachable_criterion_has_stable_error_code(self, http_server):
        source = "read(x);\ngoto L;\ny = x;\nwrite(y);\nL: write(x);\n"
        status, body = _post(
            http_server,
            "/slice",
            {"source": source, "line": 4, "var": "y"},
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "unreachable-criterion"


class TestCLIJson:
    def test_slice_json_matches_http_bytes(self, http_server, tmp_path, capsys):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        path = tmp_path / "fig3a.sl"
        path.write_text(entry.source)
        assert (
            main(
                [
                    "slice",
                    str(path),
                    "--line",
                    str(line),
                    "--var",
                    var,
                    "--json",
                ]
            )
            == 0
        )
        cli_body = capsys.readouterr().out.strip()
        status, http_body = _post(
            http_server,
            "/slice",
            {"source": entry.source, "line": line, "var": var},
        )
        assert status == 200
        assert cli_body == http_body

    def test_compare_json_matches_http_bytes(
        self, http_server, tmp_path, capsys
    ):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        path = tmp_path / "fig3a.sl"
        path.write_text(entry.source)
        assert (
            main(
                [
                    "compare",
                    str(path),
                    "--line",
                    str(line),
                    "--var",
                    var,
                    "--json",
                ]
            )
            == 0
        )
        cli_body = capsys.readouterr().out.strip()
        status, http_body = _post(
            http_server,
            "/compare",
            {"source": entry.source, "line": line, "var": var},
        )
        assert status == 200
        assert cli_body == http_body

    def test_check_json_matches_http_bytes(
        self, http_server, tmp_path, capsys
    ):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig10a"]
        path = tmp_path / "fig10a.sl"
        path.write_text(entry.source)
        assert main(["check", str(path), "--format", "json"]) == 0
        cli_body = capsys.readouterr().out.strip()
        status, http_body = _post(
            http_server, "/check", {"source": entry.source}
        )
        assert status == 200
        assert cli_body == http_body

    def test_batch_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig3a"]
        line, var = entry.criterion
        batch = tmp_path / "batch.jsonl"
        lines = [
            json.dumps(
                {
                    "op": "slice",
                    "source": entry.source,
                    "line": line,
                    "var": var,
                    "id": f"r{i}",
                }
            )
            for i in range(4)
        ]
        batch.write_text("\n".join(lines) + "\n")
        assert main(["batch", str(batch), "--stats"]) == 0
        captured = capsys.readouterr()
        out_lines = captured.out.strip().splitlines()
        assert len(out_lines) == 4
        for i, line_text in enumerate(out_lines):
            response = json.loads(line_text)
            assert response["ok"] is True
            assert response["id"] == f"r{i}"
        stats = json.loads(captured.err.strip().splitlines()[-1])
        assert stats["cache"]["hits"] >= 2

    def test_batch_strict_fails_on_errors(self, tmp_path, capsys):
        from repro.cli import main

        batch = tmp_path / "bad.jsonl"
        batch.write_text(
            json.dumps({"op": "slice", "source": "x = ;", "line": 1, "var": "x"})
            + "\n"
        )
        assert main(["batch", str(batch), "--strict"]) == 1
        response = json.loads(capsys.readouterr().out.strip())
        assert response["ok"] is False
        assert response["error"]["code"] == "parse-error"
