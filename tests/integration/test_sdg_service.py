"""End-to-end interprocedural slicing through the service.

Drives DESIGN.md §12's call-crossing example through ``slang serve``'s
HTTP front end and checks the protocol-v2 surface around it: the
``proc`` request field, the ``procedures`` result section, version
negotiation ({1, 2} spoken, anything else refused), the multi-procedure
capability gate, and the ``slang_sdg_*`` observability counters.
"""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.pdg.builder import analyze_program
from repro.sdg.slicer import interprocedural_slice
from repro.service.cache import AnalysisCache
from repro.service.engine import SlicingEngine
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SliceRequest,
    SUPPORTED_VERSIONS,
    request_to_dict,
)
from repro.obs.prom import parse_prometheus
from repro.slicing.criterion import SlicingCriterion

#: The call-crossing example of DESIGN.md §12 (also shipped as
#: ``examples/interprocedural/combine.sl``).
COMBINE = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "interprocedural"
    / "combine.sl"
).read_text()

CRITERION = {"line": 5, "var": "s"}


@pytest.fixture
def http_server():
    from repro.service.server import make_server

    engine = SlicingEngine(
        cache=AnalysisCache(capacity=8, prewarm=False), workers=2
    )
    server = make_server(port=0, engine=engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    engine.close()


def _post(server, path, obj):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return response.status, response.read().decode("utf-8")


class TestCallCrossingSlice:
    def test_design_example_end_to_end(self, http_server):
        status, envelope = _post(
            http_server,
            "/slice",
            {
                "source": COMBINE,
                "algorithm": "interprocedural",
                **CRITERION,
            },
        )
        assert status == 200
        assert envelope["ok"] is True
        result = envelope["result"]

        # The full cross-unit answer rides in the payload.
        procedures = result["procedures"]
        assert set(procedures) == {"main", "combine"}
        lines = result["lines"]
        # The producing call (3) and the guarded return (11) are in;
        # the unrelated second call (4) is out.
        assert 3 in lines and 11 in lines and 4 not in lines
        assert result["summary_edges"] > 0

        # The payload matches the in-process slicer exactly.
        reference = interprocedural_slice(
            analyze_program(COMBINE),
            SlicingCriterion(line=5, var="s"),
        ).sdg_result
        for unit, section in procedures.items():
            assert section["nodes"] == reference.statement_nodes(unit)
        assert lines == reference.lines()

    def test_proc_qualified_criterion(self, http_server):
        status, envelope = _post(
            http_server,
            "/slice",
            {
                "source": COMBINE,
                "line": 9,
                "var": "r",
                "proc": "combine",
                "algorithm": "interprocedural",
            },
        )
        assert status == 200
        assert envelope["result"]["criterion"]["proc"] == "combine"

    def test_other_algorithms_refuse_multiproc(self, http_server):
        status, envelope = _post(
            http_server,
            "/slice",
            {"source": COMBINE, "algorithm": "agrawal", **CRITERION},
        )
        assert envelope["ok"] is False
        assert "interprocedural" in envelope["error"]["message"]

    def test_single_proc_payload_has_no_procedures_key(self, http_server):
        status, envelope = _post(
            http_server,
            "/slice",
            {"source": "x = 1;\nwrite(x);", "line": 2, "var": "x"},
        )
        assert status == 200
        result = envelope["result"]
        assert "procedures" not in result
        assert "proc" not in result["criterion"]


class TestProtocolVersioning:
    def test_supported_versions(self, http_server):
        assert PROTOCOL_VERSION == 2
        assert SUPPORTED_VERSIONS == frozenset({1, 2})
        for version in sorted(SUPPORTED_VERSIONS):
            status, envelope = _post(
                http_server,
                "/slice",
                {
                    "source": COMBINE,
                    "algorithm": "interprocedural",
                    "version": version,
                    **CRITERION,
                },
            )
            assert status == 200, version
            assert envelope["ok"] is True, version

    def test_future_version_is_refused(self, http_server):
        status, envelope = _post(
            http_server,
            "/slice",
            {"source": COMBINE, "version": 3, **CRITERION},
        )
        assert envelope["ok"] is False
        assert "version" in envelope["error"]["message"]

    def test_proc_field_round_trips(self):
        request = SliceRequest.from_dict(
            {
                "source": COMBINE,
                "line": 9,
                "var": "r",
                "proc": "combine",
                "algorithm": "interprocedural",
            }
        )
        assert request.proc == "combine"
        assert request_to_dict(request)["proc"] == "combine"

    def test_proc_field_must_be_string(self):
        with pytest.raises(ProtocolError):
            SliceRequest.from_dict(
                {"source": COMBINE, "line": 9, "var": "r", "proc": 7}
            )


class TestSDGObservability:
    def test_stats_and_prometheus_counters(self, http_server):
        status, envelope = _post(
            http_server,
            "/slice",
            {
                "source": COMBINE,
                "algorithm": "interprocedural",
                **CRITERION,
            },
        )
        assert status == 200

        status, body = _get(http_server, "/stats")
        assert status == 200
        events = json.loads(body)["events"]
        assert events.get("sdg:procedures", 0) >= 2
        assert events.get("sdg:summary-edges", 0) > 0
        assert events.get("sdg:pass1-visits", 0) > 0

        status, text = _get(http_server, "/metrics.prom")
        assert status == 200
        metrics = parse_prometheus(text)
        for name, event in (
            ("slang_sdg_procedures_total", "sdg:procedures"),
            ("slang_sdg_summary_edges_total", "sdg:summary-edges"),
            ("slang_sdg_pass1_visits_total", "sdg:pass1-visits"),
            ("slang_sdg_pass2_visits_total", "sdg:pass2-visits"),
        ):
            assert metrics[name][()] == events[event], name

    def test_sdg_index_counters_reconcile(self, http_server):
        """The ``slang_sdg_index_*`` family reconciles with ``/stats``
        exactly like the rest of the ``slang_sdg_*`` counters: one build
        for the program, mask hits per criterion, and a repeat slice
        reusing the memoized index without a second build."""
        for _ in range(2):
            status, _ = _post(
                http_server,
                "/slice",
                {
                    "source": COMBINE,
                    "algorithm": "interprocedural",
                    **CRITERION,
                },
            )
            assert status == 200

        status, body = _get(http_server, "/stats")
        assert status == 200
        events = json.loads(body)["events"]
        assert events.get("sdg-index:builds", 0) == 1
        assert events.get("sdg-index:mask-hits", 0) > 0

        status, text = _get(http_server, "/metrics.prom")
        assert status == 200
        metrics = parse_prometheus(text)
        for name, event in (
            ("slang_sdg_index_builds_total", "sdg-index:builds"),
            ("slang_sdg_index_mask_hits_total", "sdg-index:mask-hits"),
            ("slang_sdg_index_pressure_skips_total", "sdg-index:pressure-skips"),
            ("slang_sdg_index_incremental_salvages_total", "sdg-index:incremental-salvages"),
        ):
            if event in events:
                assert metrics[name][()] == events[event], name
            else:
                assert name not in metrics, name
