"""Integration tests for the observability layer: traced envelopes,
per-phase span containment across the whole algorithm registry,
exemplars, ``X-Request-Id`` propagation, and the exact reconciliation
of ``GET /metrics.prom`` against ``GET /stats``.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.obs.prom import parse_prometheus
from repro.service.cache import AnalysisCache
from repro.service.engine import SlicingEngine
from repro.service.server import make_server
from repro.slicing.registry import CORRECT_STRUCTURED, algorithm_names

FIG3A = PAPER_PROGRAMS["fig3a"]
FIG5A = PAPER_PROGRAMS["fig5a"]  # structured: accepted by Fig. 12/13


def _slice_payload(entry, algorithm="agrawal", **extra):
    line, var = entry.criterion
    payload = {
        "op": "slice",
        "source": entry.source,
        "line": line,
        "var": var,
        "algorithm": algorithm,
    }
    payload.update(extra)
    return payload


def _walk(nodes):
    for node in nodes:
        yield node
        yield from _walk(node.get("children", []))


def _assert_children_within_parent(node):
    """Child span durations must sum to within the parent duration.

    ``span_tree`` truncates ns → µs, which can only shrink each
    number, so a handful of µs of slack covers the rounding."""
    children = node.get("children", [])
    if children:
        child_total = sum(child["dur_us"] for child in children)
        assert child_total <= node["dur_us"] + len(children) + 1, node[
            "name"
        ]
        for child in children:
            assert child["start_us"] >= node["start_us"], child["name"]
    for child in children:
        _assert_children_within_parent(child)


class TestTracedEnvelopes:
    def test_trace_field_controls_span_tree_presence(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=4))
        try:
            # Traced first: the cache miss is what runs the analyze
            # phases; a later hit would only show "cache-lookup".
            traced = engine.handle_payload(
                _slice_payload(FIG3A, trace=True)
            )
            plain = engine.handle_payload(_slice_payload(FIG3A))
            assert plain["ok"] and "trace" not in plain
            assert traced["ok"]
            (root,) = traced["trace"]
            assert root["name"] == "slice"
            assert root["args"]["algorithm"] == "agrawal"
            names = {node["name"] for node in _walk(traced["trace"])}
            assert {
                "admission",
                "dispatch",
                "cache-lookup",
                "analyze",
                "parse",
                "cfg-build",
                "postdominance",
                "control-dependence",
                "reaching-defs",
                "pdg-build",
                "conventional-base",
                "fig7-traversal",
                "response-encode",
            } <= names
        finally:
            engine.close()

    def test_identical_request_untraced_stays_byte_identical(self):
        """Tracing must not perturb the envelope it decorates: the
        traced response minus its ``trace`` key equals the untraced
        response."""
        engine = SlicingEngine(cache=AnalysisCache(capacity=4))
        try:
            plain = engine.handle_payload(_slice_payload(FIG3A))
            traced = engine.handle_payload(
                _slice_payload(FIG3A, trace=True)
            )
            traced.pop("trace")
            assert traced == plain
        finally:
            engine.close()

    def test_phase_spans_nest_within_parents_for_every_algorithm(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=8))
        try:
            for algorithm in algorithm_names():
                entry = (
                    FIG5A if algorithm in CORRECT_STRUCTURED else FIG3A
                )
                envelope = engine.handle_payload(
                    _slice_payload(entry, algorithm=algorithm, trace=True)
                )
                assert envelope["ok"], (algorithm, envelope)
                tree = envelope["trace"]
                for node in tree:
                    _assert_children_within_parent(node)
                names = {node["name"] for node in _walk(tree)}
                assert "dispatch" in names, algorithm
                assert "response-encode" in names, algorithm
        finally:
            engine.close()

    def test_traced_requests_feed_phase_histograms(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=4))
        try:
            engine.handle_payload(_slice_payload(FIG3A, trace=True))
            phases = engine.stats_payload()["phases"]
            assert phases["analyze"]["count"] == 1
            assert phases["fig7-traversal"]["count"] >= 1
            assert "parse" in phases
        finally:
            engine.close()

    def test_error_paths_still_produce_closed_spans(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=4))
        try:
            payload = _slice_payload(FIG3A, trace=True)
            payload["line"] = 10**6  # no such line -> slice error
            envelope = engine.handle_payload(payload)
            assert not envelope["ok"]
            for node in _walk(envelope.get("trace", [])):
                assert node["dur_us"] >= 0
        finally:
            engine.close()


class TestExemplars:
    def test_slow_requests_are_kept_as_exemplars(self):
        engine = SlicingEngine(
            cache=AnalysisCache(capacity=4), slow_trace_seconds=0.0
        )
        try:
            engine.handle_payload(_slice_payload(FIG3A, trace=True))
            exemplars = engine.exemplars()
            assert exemplars
            assert exemplars[-1]["op"] == "slice"
            assert exemplars[-1]["ok"] is True
            assert exemplars[-1]["trace"]
            payload = engine.stats_payload()
            assert payload["exemplars"]
        finally:
            engine.close()

    def test_exemplar_ring_is_bounded(self):
        engine = SlicingEngine(
            cache=AnalysisCache(capacity=4), slow_trace_seconds=0.0
        )
        try:
            for _ in range(engine.MAX_EXEMPLARS + 5):
                engine.handle_payload(_slice_payload(FIG3A, trace=True))
            assert len(engine.exemplars()) == engine.MAX_EXEMPLARS
        finally:
            engine.close()

    def test_disabled_by_default(self):
        engine = SlicingEngine(cache=AnalysisCache(capacity=4))
        try:
            engine.handle_payload(_slice_payload(FIG3A, trace=True))
            assert "exemplars" not in engine.stats_payload()
        finally:
            engine.close()


@pytest.fixture
def http_server():
    engine = SlicingEngine(
        cache=AnalysisCache(capacity=16, prewarm=True), workers=6
    )
    server = make_server(port=0, engine=engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    engine.close()


def _request(server, path, obj=None, headers=None):
    port = server.server_address[1]
    data = json.dumps(obj).encode("utf-8") if obj is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                response.read().decode("utf-8"),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8"), dict(error.headers)


class TestHTTPObservability:
    def test_traced_request_over_http(self, http_server):
        status, body, _ = _request(
            http_server, "/slice", _slice_payload(FIG3A, trace=True)
        )
        assert status == 200
        envelope = json.loads(body)
        assert envelope["ok"]
        assert envelope["trace"][0]["name"] == "slice"

    def test_request_id_is_echoed(self, http_server):
        status, _, headers = _request(
            http_server,
            "/slice",
            _slice_payload(FIG3A),
            headers={"X-Request-Id": "req-abc-123"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "req-abc-123"

    def test_request_id_is_generated_when_absent(self, http_server):
        _, _, first = _request(http_server, "/healthz")
        _, _, second = _request(http_server, "/healthz")
        assert first["X-Request-Id"]
        assert second["X-Request-Id"]
        assert first["X-Request-Id"] != second["X-Request-Id"]

    def test_error_responses_carry_request_id(self, http_server):
        status, _, headers = _request(
            http_server, "/no-such", headers={"X-Request-Id": "oops-1"}
        )
        assert status == 404
        assert headers["X-Request-Id"] == "oops-1"

    def test_metrics_prom_content_type(self, http_server):
        _, _, headers = _request(http_server, "/metrics.prom")
        assert headers["Content-Type"].startswith("text/plain")
        assert "0.0.4" in headers["Content-Type"]

    def _reconcile(self, stats, metrics):
        """Every counter in the JSON snapshot must appear with the same
        value in the exposition."""
        for key, count in stats["requests"].items():
            op, _, algorithm = key.partition(":")
            labels = [("op", op)]
            if algorithm:
                labels.append(("algorithm", algorithm))
            label_key = tuple(sorted(labels))
            assert (
                metrics["slang_requests_total"][label_key] == count
            ), key
            assert (
                metrics["slang_request_duration_seconds_count"][label_key]
                == stats["latency"][key]["count"]
            ), key
        for key, count in stats["errors"].items():
            op, _, algorithm = key.partition(":")
            labels = [("op", op)]
            if algorithm:
                labels.append(("algorithm", algorithm))
            assert (
                metrics["slang_errors_total"][tuple(sorted(labels))]
                == count
            ), key
        for name, count in stats["events"].items():
            assert (
                metrics["slang_events_total"][(("event", name),)] == count
            ), name
        for phase, snapshot in stats["phases"].items():
            assert (
                metrics["slang_phase_duration_seconds_count"][
                    (("phase", phase),)
                ]
                == snapshot["count"]
            ), phase
        cache = stats["cache"]
        assert metrics["slang_cache_hits_total"][()] == cache["hits"]
        assert metrics["slang_cache_misses_total"][()] == cache["misses"]
        assert (
            metrics["slang_cache_evictions_total"][()]
            == cache["evictions"]
        )
        assert metrics["slang_shed_total"][()] == stats["admission"]["shed"]

    def test_metrics_prom_reconciles_after_concurrent_hammer(
        self, http_server
    ):
        payloads = []
        for index in range(40):
            payload = _slice_payload(
                FIG3A, trace=index % 3 == 0
            )
            if index % 10 == 9:
                payload["line"] = 10**6  # mix some failing requests in
            payloads.append(payload)

        def hit(payload):
            return _request(http_server, "/slice", payload)[0]

        with ThreadPoolExecutor(max_workers=12) as pool:
            statuses = list(pool.map(hit, payloads))
        assert statuses.count(200) == 36

        _, stats_body, _ = _request(http_server, "/stats")
        _, prom_body, _ = _request(http_server, "/metrics.prom")
        stats = json.loads(stats_body)
        metrics = parse_prometheus(prom_body)
        assert stats["requests"]["slice:agrawal"] == 40
        assert stats["errors"]["slice:agrawal"] == 4
        self._reconcile(stats, metrics)

    def test_scrape_during_hammer_is_internally_consistent(
        self, http_server
    ):
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                _request(
                    http_server, "/slice", _slice_payload(FIG3A, trace=True)
                )

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            for _ in range(10):
                _, body, _ = _request(http_server, "/metrics.prom")
                metrics = parse_prometheus(body)
                buckets = metrics.get(
                    "slang_request_duration_seconds_bucket", {}
                )
                counts = metrics.get(
                    "slang_request_duration_seconds_count", {}
                )
                for label_key, count in counts.items():
                    inf_key = tuple(
                        sorted(list(label_key) + [("le", "+Inf")])
                    )
                    # The +Inf cumulative bucket equals the count —
                    # impossible if the snapshot could tear mid-render.
                    assert buckets[inf_key] == count, label_key
        finally:
            stop.set()
            for thread in writers:
                thread.join()
