"""Integration tests for the resilience layer: budgets, sound
degradation, fault injection, admission control, retries, and the HTTP
edge cases — the acceptance suite of the robustness milestone.

The headline properties:

* under a fault plan that forces budget exhaustion on every exact-slice
  request, **every** response is either a structured ``budget-exceeded``
  error or a ``degraded: true`` Fig. 13 slice that passes the SL20x
  slice verifier — never a hang, never a malformed payload;
* no request outlives its deadline by more than a scheduling epsilon;
* the ``/stats`` counters reconcile exactly with the responses observed,
  even under a concurrent valid/invalid/oversized/faulted hammer.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.lint.slice_check import verify_slice
from repro.pdg.builder import analyze_program
from repro.service.engine import SlicingEngine
from repro.service.faults import FaultPlan
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.resilience import EngineLimits
from repro.service.server import make_server

EXHAUST_EVERY_SLICE = {
    "rules": [{"kind": "exhaust-budget", "op": "slice", "every": 1}]
}


def slice_request(entry, algorithm="agrawal"):
    line, var = entry.criterion
    return {
        "op": "slice",
        "source": entry.source,
        "line": line,
        "var": var,
        "algorithm": algorithm,
    }


def assert_schema_valid(response):
    """Every engine response is a well-formed protocol envelope."""
    assert response["version"] == PROTOCOL_VERSION
    assert isinstance(response["op"], str)
    if response["ok"]:
        assert isinstance(response["result"], dict)
    else:
        error = response["error"]
        assert isinstance(error["code"], str)
        assert isinstance(error["message"], str)
        assert isinstance(error["retryable"], bool)
    json.dumps(response)  # JSON-serialisable throughout


class TestDegradation:
    def test_every_exhausted_slice_degrades_or_errors_soundly(self):
        """The acceptance criterion: with budget exhaustion forced on
        every slice request across the whole corpus, 100% of responses
        are either structured ``budget-exceeded`` errors or sound
        ``degraded: true`` Fig. 13 slices."""
        plan = FaultPlan.from_dict(EXHAUST_EVERY_SLICE)
        with SlicingEngine(
            limits=EngineLimits(deadline_seconds=30.0), faults=plan
        ) as engine:
            for name, entry in sorted(PAPER_PROGRAMS.items()):
                response = engine.handle_payload(slice_request(entry))
                assert_schema_valid(response)
                if not response["ok"]:
                    # Fig. 13 refused (unstructured program, dead code):
                    # the original budget error must surface, structured.
                    error = response["error"]
                    assert error["code"] == "budget-exceeded", name
                    assert error["reason"] == "traversals"
                    assert error["phase"] == "fig7-traversal"
                    assert not entry.structured, name
                    continue
                result = response["result"]
                assert result["degraded"] is True, name
                assert result["degraded_from"] == "agrawal"
                assert result["algorithm"] == "conservative"
                assert (
                    result["degrade_reason"]["code"] == "budget-exceeded"
                )
                # Independent soundness audit of the degraded slice.
                analysis = analyze_program(entry.source)
                line, var = entry.criterion
                violations = verify_slice(analysis, result["nodes"])
                assert violations == [], name
            events = engine.stats.snapshot()["events"]
            degraded = events.get("degraded", 0)
            exhausted = events.get("budget-exceeded", 0)
            assert exhausted == len(PAPER_PROGRAMS)
            assert 0 < degraded < len(PAPER_PROGRAMS)

    def test_structured_corpus_degrades_on_every_program(self):
        plan = FaultPlan.from_dict(EXHAUST_EVERY_SLICE)
        with SlicingEngine(faults=plan) as engine:
            for name, entry in sorted(PAPER_PROGRAMS.items()):
                if not entry.structured:
                    continue
                response = engine.handle_payload(slice_request(entry))
                assert response["ok"], (name, response)
                assert response["result"]["degraded"] is True

    def test_degrade_off_surfaces_the_error(self):
        plan = FaultPlan.from_dict(EXHAUST_EVERY_SLICE)
        with SlicingEngine(
            limits=EngineLimits(degrade="off"), faults=plan
        ) as engine:
            entry = PAPER_PROGRAMS["fig1a"]  # structured: would degrade
            response = engine.handle_payload(slice_request(entry))
            assert not response["ok"]
            assert response["error"]["code"] == "budget-exceeded"
            assert response["error"]["retryable"] is False
            assert engine.stats.event_count("degraded") == 0

    def test_conservative_requests_never_self_degrade(self):
        """A request already asking for Fig. 13 cannot "degrade" to
        itself; exhaustion must error (Fig. 13 runs zero rounds, so the
        forced exhaustion does not even fire for it)."""
        plan = FaultPlan.from_dict(EXHAUST_EVERY_SLICE)
        with SlicingEngine(faults=plan) as engine:
            entry = PAPER_PROGRAMS["fig1a"]
            response = engine.handle_payload(
                slice_request(entry, algorithm="conservative")
            )
            # Zero traversal rounds: completes despite the exhausted cap.
            assert response["ok"]
            assert "degraded" not in response["result"]

    def test_client_budget_tightens_engine_budget(self):
        entry = PAPER_PROGRAMS["fig1a"]
        with SlicingEngine(limits=EngineLimits(degrade="off")) as engine:
            request = dict(slice_request(entry))
            request["budget"] = {"max_nodes": 2}
            response = engine.handle_payload(request)
            assert not response["ok"]
            assert response["error"]["code"] == "budget-exceeded"
            assert response["error"]["reason"] == "nodes"

    def test_node_cap_exhaustion_is_not_degraded(self):
        """The node cap binds Fig. 13 exactly as hard as Fig. 7, so
        degradation is pointless — the error surfaces even with the
        degrade policy on."""
        entry = PAPER_PROGRAMS["fig1a"]
        with SlicingEngine(
            limits=EngineLimits(max_cfg_nodes=2)
        ) as engine:
            response = engine.handle_payload(slice_request(entry))
            assert not response["ok"]
            assert response["error"]["reason"] == "nodes"


class TestDeadlines:
    def test_no_request_outlives_its_deadline(self):
        """Even with a 30s injected latency the response arrives within
        deadline + epsilon — the latency fault is capped by the budget
        and the post-sleep tick converts it to a structured error."""
        deadline = 0.2
        plan = FaultPlan.from_dict(
            {"rules": [{"kind": "latency", "seconds": 30.0, "every": 1}]}
        )
        with SlicingEngine(
            limits=EngineLimits(deadline_seconds=deadline), faults=plan
        ) as engine:
            start = time.monotonic()
            response = engine.handle_payload(
                slice_request(PAPER_PROGRAMS["fig1a"])
            )
            elapsed = time.monotonic() - start
            assert_schema_valid(response)
            assert not response["ok"]
            assert response["error"]["code"] == "budget-exceeded"
            assert response["error"]["reason"] == "deadline"
            assert elapsed < deadline + 2.0  # generous scheduling epsilon


class TestAdmissionAndOverload:
    def test_overload_sheds_with_structured_503(self):
        release = threading.Event()
        entered = threading.Event()

        class Blocking(FaultPlan):
            def apply(self, op, algorithm, budget, engine=None):
                entered.set()
                release.wait(timeout=10)

        entry = PAPER_PROGRAMS["fig1a"]
        with SlicingEngine(
            workers=2,
            limits=EngineLimits(max_inflight=1, retry_after_seconds=3.0),
            faults=Blocking([]),
        ) as engine:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    engine.handle_payload, slice_request(entry)
                )
                assert entered.wait(timeout=10)
                shed = engine.handle_payload(slice_request(entry))
                assert not shed["ok"]
                assert shed["error"]["code"] == "overloaded"
                assert shed["error"]["retryable"] is True
                assert shed["error"]["retry_after"] == 3.0
                assert engine.readiness()["ok"] is False
                release.set()
                assert blocked.result(timeout=10)["ok"]
            assert engine.readiness()["ok"] is True
            assert engine.stats.event_count("shed") == 1
            assert engine.gate.snapshot()["shed"] == 1


@pytest.fixture()
def http_server():
    engine = SlicingEngine(
        limits=EngineLimits(max_inflight=8), workers=2
    )
    server = make_server(port=0, engine=engine, max_body_bytes=4096)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    engine.close()


def _post(url, body, headers=None):
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestHTTPEdge:
    def test_healthz_and_readyz(self, http_server):
        with urllib.request.urlopen(
            http_server + "/healthz", timeout=10
        ) as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"ok": True}
        with urllib.request.urlopen(
            http_server + "/readyz", timeout=10
        ) as response:
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["ok"] is True
            assert payload["max_inflight"] == 8
            assert payload["inflight"] == 0

    def test_oversized_body_is_413(self, http_server):
        body = json.dumps(
            {"op": "slice", "source": "x" * 8192, "line": 1, "var": "x"}
        ).encode()
        status, _, payload = _post(http_server + "/slice", body)
        assert status == 413
        assert payload["error"]["code"] == "payload-too-large"

    def test_missing_content_length_is_411(self, http_server):
        import http.client

        host, port = http_server.replace("http://", "").split(":")
        connection = http.client.HTTPConnection(
            host, int(port), timeout=10
        )
        connection.putrequest("POST", "/slice")
        connection.putheader("Connection", "close")
        connection.endheaders()
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        assert response.status == 411
        assert payload["error"]["code"] == "payload-too-large"

    def test_bad_content_length_is_400(self, http_server):
        import http.client

        host, port = http_server.replace("http://", "").split(":")
        connection = http.client.HTTPConnection(
            host, int(port), timeout=10
        )
        connection.putrequest("POST", "/slice")
        connection.putheader("Content-Length", "many")
        connection.putheader("Connection", "close")
        connection.endheaders()
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "protocol-error"

    def test_overloaded_maps_to_503_with_retry_after(self):
        release = threading.Event()
        entered = threading.Event()

        class Blocking(FaultPlan):
            def apply(self, op, algorithm, budget, engine=None):
                entered.set()
                release.wait(timeout=10)

        engine = SlicingEngine(
            limits=EngineLimits(max_inflight=1, retry_after_seconds=2.0),
            faults=Blocking([]),
        )
        server = make_server(port=0, engine=engine)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        body = json.dumps(slice_request(PAPER_PROGRAMS["fig1a"])).encode()
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(_post, base + "/slice", body)
                assert entered.wait(timeout=10)
                status, headers, payload = _post(base + "/slice", body)
                assert status == 503
                assert payload["error"]["code"] == "overloaded"
                assert headers.get("Retry-After") == "2"
                try:
                    urllib.request.urlopen(
                        base + "/readyz", timeout=10
                    ).close()
                    ready_status = 200
                except urllib.error.HTTPError as error:
                    ready_status = error.code
                    error.read()
                assert ready_status == 503  # saturated: not ready
                release.set()
                status, _, payload = blocked.result(timeout=10)
                assert status == 200 and payload["ok"]
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            engine.close()

    def test_budget_exceeded_maps_to_504(self):
        plan = FaultPlan.from_dict(EXHAUST_EVERY_SLICE)
        engine = SlicingEngine(
            limits=EngineLimits(degrade="off"), faults=plan
        )
        server = make_server(port=0, engine=engine)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        body = json.dumps(slice_request(PAPER_PROGRAMS["fig1a"])).encode()
        try:
            status, _, payload = _post(
                f"http://{host}:{port}/slice", body
            )
            assert status == 504
            assert payload["error"]["code"] == "budget-exceeded"
        finally:
            server.shutdown()
            server.server_close()
            engine.close()


class TestBatchRetry:
    def test_transient_faults_recover_with_retries(self):
        plan = FaultPlan.from_dict(
            {"rules": [{"kind": "error", "op": "slice", "first_n": 2}]}
        )
        from repro.service.resilience import RetryPolicy

        entry = PAPER_PROGRAMS["fig1a"]
        with SlicingEngine(workers=1, faults=plan) as engine:
            responses = engine.run_batch(
                [slice_request(entry)] * 3,
                retry=RetryPolicy(
                    max_retries=3, backoff_seconds=0.01, seed=11
                ),
            )
        assert all(response["ok"] for response in responses)
        events = engine.stats.snapshot()["events"]
        assert events["retry"] == 2
        assert events["retry:recovered"] == 1
        assert events["fault-injected"] == 2

    def test_retries_exhaust_on_persistent_faults(self):
        plan = FaultPlan.from_dict(
            {"rules": [{"kind": "error", "op": "slice", "every": 1}]}
        )
        from repro.service.resilience import RetryPolicy

        entry = PAPER_PROGRAMS["fig1a"]
        with SlicingEngine(workers=1, faults=plan) as engine:
            responses = engine.run_batch(
                [slice_request(entry)],
                retry=RetryPolicy(
                    max_retries=2, backoff_seconds=0.01, seed=5
                ),
            )
        assert not responses[0]["ok"]
        assert responses[0]["error"]["code"] == "fault-injected"
        events = engine.stats.snapshot()["events"]
        assert events["retry"] == 2
        assert events["retry:exhausted"] == 1


class TestBatchCLI:
    def _write_batch(self, tmp_path, payloads):
        path = tmp_path / "batch.jsonl"
        path.write_text(
            "".join(json.dumps(payload) + "\n" for payload in payloads)
        )
        return str(path)

    def _write_plan(self, tmp_path, plan):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return str(path)

    def test_strict_transient_only_exits_75(self, tmp_path, capsys):
        from repro.cli import EXIT_TEMPFAIL, main

        entry = PAPER_PROGRAMS["fig1a"]
        batch = self._write_batch(tmp_path, [slice_request(entry)] * 2)
        plan = self._write_plan(
            tmp_path,
            {"rules": [{"kind": "error", "op": "slice", "every": 1}]},
        )
        code = main(
            [
                "batch", batch, "--strict", "--workers", "1",
                "--fault-plan", plan,
            ]
        )
        assert code == EXIT_TEMPFAIL == 75
        err = capsys.readouterr().err
        assert "2 transient failure(s)" in err

    def test_strict_permanent_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig1a"]
        bad = dict(slice_request(entry))
        bad["line"] = 9999
        batch = self._write_batch(
            tmp_path, [slice_request(entry), bad]
        )
        code = main(["batch", batch, "--strict", "--workers", "1"])
        assert code == 1
        assert "1 permanent failure(s)" in capsys.readouterr().err

    def test_strict_recovered_exits_0(self, tmp_path, capsys):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig1a"]
        batch = self._write_batch(tmp_path, [slice_request(entry)] * 2)
        plan = self._write_plan(
            tmp_path,
            {"rules": [{"kind": "error", "op": "slice", "first_n": 1}]},
        )
        code = main(
            [
                "batch", batch, "--strict", "--workers", "1",
                "--max-retries", "3", "--backoff", "0.01",
                "--retry-seed", "1", "--fault-plan", plan,
            ]
        )
        assert code == 0

    def test_degrade_flag_threads_through(self, tmp_path, capsys):
        from repro.cli import main

        entry = PAPER_PROGRAMS["fig1a"]
        batch = self._write_batch(tmp_path, [slice_request(entry)])
        plan = self._write_plan(tmp_path, EXHAUST_EVERY_SLICE)
        code = main(
            ["batch", batch, "--workers", "1", "--fault-plan", plan]
        )
        assert code == 0
        out = capsys.readouterr().out
        response = json.loads(out.splitlines()[0])
        assert response["ok"]
        assert response["result"]["degraded"] is True


class TestConcurrentHammer:
    def test_mixed_load_yields_schema_valid_responses_and_stats(self):
        """Satellite (d): hammer one engine from many threads with a
        valid/invalid/oversized/fault-injected mix; every response is
        schema-valid and the ``/stats`` counters reconcile exactly."""
        entries = sorted(PAPER_PROGRAMS.items())
        plan = FaultPlan.from_dict(
            {
                "seed": 13,
                "rules": [
                    {"kind": "error", "op": "compare", "every": 2},
                    {
                        "kind": "exhaust-budget",
                        "op": "slice",
                        "every": 1,
                    },
                ],
            }
        )
        limits = EngineLimits(
            deadline_seconds=30.0, max_source_bytes=4096
        )
        requests = []
        for index in range(60):
            name, entry = entries[index % len(entries)]
            kind = index % 5
            if kind == 0:
                requests.append(slice_request(entry))
            elif kind == 1:
                line, var = entry.criterion
                requests.append(
                    {
                        "op": "compare",
                        "source": entry.source,
                        "line": line,
                        "var": var,
                    }
                )
            elif kind == 2:  # invalid: bad line
                bad = dict(slice_request(entry))
                bad["line"] = 10**6
                requests.append(bad)
            elif kind == 3:  # invalid: protocol garbage
                requests.append({"op": "slice", "source": entry.source})
            else:  # oversized program
                requests.append(
                    {
                        "op": "slice",
                        "source": "v0 = 1;\n" * 1024,
                        "line": 1,
                        "var": "v0",
                    }
                )
        with SlicingEngine(workers=4, limits=limits, faults=plan) as engine:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(
                    pool.map(engine.handle_payload, requests)
                )
            snapshot = engine.stats_payload()
        assert len(responses) == len(requests)
        observed_errors = 0
        observed_degraded = 0
        by_code = {}
        for response in responses:
            assert_schema_valid(response)
            if not response["ok"]:
                observed_errors += 1
                code = response["error"]["code"]
                by_code[code] = by_code.get(code, 0) + 1
            elif response.get("result", {}).get("degraded"):
                observed_degraded += 1
        events = snapshot["events"]
        # Reconciliation: engine-recorded outcomes match what clients
        # saw.  Requests that fail before the per-op timer — protocol
        # parse failures and oversized-source rejections — are the only
        # ones missing from the requests counters (nothing was shed:
        # no in-flight limit was configured here).
        assert events.get("degraded", 0) == observed_degraded
        assert observed_degraded > 0
        pre_timer = by_code.get("protocol-error", 0) + by_code.get(
            "payload-too-large", 0
        )
        assert pre_timer > 0  # the mix really exercised both
        assert (
            sum(snapshot["requests"].values())
            == len(requests) - pre_timer
        )
        # Errors that reached the timer (slice-error, fault-injected,
        # unrecoverable budget errors) are in the errors counters.
        assert (
            sum(snapshot["errors"].values())
            == observed_errors - pre_timer
        )
        # The fault plan's own ledger matches the engine events.
        fault_fired = sum(
            rule["fired"]
            for rule in snapshot["faults"]["rules"]
            if rule["kind"] == "error"
        )
        assert fault_fired == events.get("fault-injected", 0)
