"""Integration tests: the paper's graph figures (2, 4, 6, 9, 11, 15).

For each example program the paper draws the flowgraph, postdominator
tree, control-dependence graph, and lexical successor tree.  These tests
pin the structures (transcribed from the figures and the prose) node by
node, using the paper's own statement numbering (== our node ids).
"""

import pytest

from repro.corpus import PAPER_PROGRAMS
from tests.conftest import corpus_analysis


def lst_chain(analysis, start):
    chain = [start]
    while True:
        parent = analysis.lst.parent_of(chain[-1])
        if parent is None:
            return chain
        chain.append(parent)


class TestFig2GraphsOfFig1a:
    """Fig. 2: DDG/CDG/PDG of the jump-free running example."""

    @pytest.fixture
    def analysis(self):
        return corpus_analysis("fig1a")

    def test_flowgraph_shape(self, analysis):
        cfg = analysis.cfg
        # while-loop back edges and exits.
        assert set(cfg.succ_ids(3)) == {4, 11}
        assert set(cfg.succ_ids(5)) == {6, 7}
        assert set(cfg.succ_ids(8)) == {9, 10}
        assert cfg.succ_ids(6) == [3]
        assert cfg.succ_ids(9) == [3]
        assert cfg.succ_ids(10) == [3]

    def test_data_dependences_of_node12(self, analysis):
        # "Node 12 is data dependent on nodes 2 and 7."
        assert analysis.ddg.defs_reaching(12) == [2, 7]

    def test_control_dependence_of_node7(self, analysis):
        # "Node 7 is control dependent on node 5."
        assert 5 in analysis.cdg.parents_of(7)

    def test_loop_body_control_dependences(self, analysis):
        for node in (4, 5):
            assert 3 in analysis.cdg.parents_of(node)
        assert 3 in analysis.cdg.parents_of(3)  # loop self-dependence

    def test_lexical_successor_equals_postdominator_for_jump_free_code(
        self, analysis
    ):
        # §3: for programs without jumps the two trees coincide on the
        # "next statement" structure; specifically every immediate
        # lexical successor postdominates its statement.
        for node, parent in analysis.lst.as_parent_map().items():
            assert analysis.pdt.is_ancestor(parent, node), (node, parent)

    def test_pdg_is_union_of_cdg_and_ddg(self, analysis):
        control = {
            (s, d) for s, d, k, _ in analysis.pdg.edges() if k == "control"
        }
        data = {(s, d) for s, d, k, _ in analysis.pdg.edges() if k == "data"}
        assert control == analysis.cdg.edge_pairs()
        assert data == analysis.ddg.edge_pairs()


class TestFig4GraphsOfFig3a:
    @pytest.fixture
    def analysis(self):
        return corpus_analysis("fig3a")

    def test_postdominator_tree(self, analysis):
        expected = {
            1: 2, 2: 3, 3: 14, 4: 5, 5: 13, 6: 7, 7: 13, 8: 9, 9: 13,
            10: 11, 11: 13, 12: 13, 13: 3, 14: 15,
        }
        for node, parent in expected.items():
            assert analysis.pdt.parent_of(node) == parent, node

    def test_lexical_successor_tree_is_the_line_chain(self, analysis):
        assert lst_chain(analysis, 1)[:15] == list(range(1, 16))

    def test_control_dependences(self, analysis):
        pairs = analysis.cdg.edge_pairs()
        assert {(3, 4), (3, 5), (3, 13), (5, 7), (5, 8), (9, 11), (9, 12)} <= pairs
        # Node 3 is control dependent on itself (loop via goto 13).
        assert (3, 3) in pairs

    def test_flowgraph_jump_edges(self, analysis):
        cfg = analysis.cfg
        assert cfg.succ_ids(7) == [13]
        assert cfg.succ_ids(11) == [13]
        assert cfg.succ_ids(13) == [3]
        assert set(cfg.succ_ids(3)) == {4, 14}


class TestFig6GraphsOfFig5a:
    @pytest.fixture
    def analysis(self):
        return corpus_analysis("fig5a")

    def test_continues_jump_to_loop_test(self, analysis):
        cfg = analysis.cfg
        assert cfg.succ_ids(7) == [3]
        assert cfg.succ_ids(11) == [3]

    def test_postdominators_of_continues(self, analysis):
        assert analysis.pdt.parent_of(7) == 3
        assert analysis.pdt.parent_of(11) == 3

    def test_lexical_successors_differ_from_postdominators(self, analysis):
        # continue 7's immediate lexical successor is statement 8,
        # not its immediate postdominator 3 — the crux of Fig. 5.
        assert analysis.lst.parent_of(7) == 8
        assert analysis.lst.parent_of(11) == 12
        assert analysis.lst.parent_of(12) == 3  # body tail -> loop

    def test_control_dependences(self, analysis):
        pairs = analysis.cdg.edge_pairs()
        # Because the continue on 7 can divert control, statements 8 and
        # 9 hang below the `if (x <= 0)` (node 5), not below the while —
        # which is exactly why the conventional slice (Fig. 5b) keeps
        # the if.
        assert {(5, 6), (5, 7), (5, 8), (5, 9), (9, 11), (9, 12)} <= pairs
        assert {(3, 4), (3, 5), (3, 3)} <= pairs


class TestFig9GraphsOfFig8a:
    @pytest.fixture
    def analysis(self):
        return corpus_analysis("fig8a")

    def test_direct_jumps_to_loop_head(self, analysis):
        cfg = analysis.cfg
        for jump in (7, 11, 13):
            assert cfg.succ_ids(jump) == [3]

    def test_jumps_control_dependent_on_their_predicates(self, analysis):
        # §3: "node 9 ... as both nodes 11 and 13 are control dependent
        # on it, as shown in Figure 9-c."
        assert 9 in analysis.cdg.parents_of(11)
        assert 9 in analysis.cdg.parents_of(13)
        assert 5 in analysis.cdg.parents_of(7)

    def test_postdominator_parents(self, analysis):
        assert analysis.pdt.parent_of(7) == 3
        assert analysis.pdt.parent_of(11) == 3
        assert analysis.pdt.parent_of(13) == 3


class TestFig11GraphsOfFig10a:
    @pytest.fixture
    def analysis(self):
        return corpus_analysis("fig10a")

    def test_node4_postdominates_node7(self, analysis):
        assert analysis.pdt.is_ancestor(4, 7, strict=True)

    def test_node7_lexically_succeeds_node4(self, analysis):
        assert analysis.lst.is_ancestor(7, 4, strict=True)

    def test_nearest_relations_during_first_traversal(self, analysis):
        # "node 4 is not added to the slice as its nearest postdominator
        # and the nearest lexical successor are the same, viz., node 9"
        # w.r.t. the conventional slice {3, 9}.
        from repro.slicing.common import nearest_in_slice

        base = {3, 9}
        exit_id = analysis.cfg.exit_id
        assert nearest_in_slice(analysis.pdt, 4, base, exit_id) == 9
        assert nearest_in_slice(analysis.lst, 4, base, exit_id) == 9
        # whereas node 7 diverges (3 vs 9):
        assert nearest_in_slice(analysis.pdt, 7, base, exit_id) == 3
        assert nearest_in_slice(analysis.lst, 7, base, exit_id) == 9

    def test_node2_control_dependent_on_node1(self, analysis):
        assert analysis.cdg.parents_of(2) == [1]

    def test_footnote_4_pair_does_not_force_multiple_traversals(
        self, analysis
    ):
        """Footnote 4: "This is not to say that multiple traversals are
        always required whenever a program contains such pairs" — the
        same program, sliced on z or x instead of y, finishes in one
        productive traversal despite the (4, 7) pair."""
        from repro.slicing.agrawal import agrawal_slice
        from repro.slicing.criterion import SlicingCriterion

        for line, var in [(10, "z"), (8, "x")]:
            result = agrawal_slice(analysis, SlicingCriterion(line, var))
            assert result.traversals == 1, (line, var)


class TestFig15GraphsOfFig14a:
    @pytest.fixture
    def analysis(self):
        return corpus_analysis("fig14a")

    def test_switch_dispatch_edges(self, analysis):
        cfg = analysis.cfg
        targets = {label: dst for dst, label in cfg.successors(1)}
        assert targets["case 1"] == 2
        assert targets["case 2"] == 4
        assert targets["case 3"] == 6
        assert targets["default"] == 8

    def test_arm_statements_control_dependent_on_switch(self, analysis):
        for node in (2, 3, 4, 5, 6, 7):
            assert 1 in analysis.cdg.parents_of(node)

    def test_lexical_fall_through_chain(self, analysis):
        assert lst_chain(analysis, 2)[:7] == [2, 3, 4, 5, 6, 7, 8]

    def test_break_postdominators(self, analysis):
        for node in (3, 5, 7):
            assert analysis.pdt.parent_of(node) == 8
