"""Golden expected-diagnostics tests: ``slang check`` over the corpus.

Each corpus program's full lint payload is pinned in
``tests/golden/lint/<name>.json`` (regenerate with
``python tools/lint_corpus.py --update``).  Pinning the whole payload —
not just counts — means any change to a rule's message, hint, severity,
or ordering is a visible diff.
"""

import json
import os

import pytest

from tools.lint_corpus import GOLDEN_DIR, corpus_entries, golden_path

from repro.lint.rules import run_lint

CORPUS = dict(corpus_entries())


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_program_matches_golden(name):
    path = golden_path(name)
    assert os.path.exists(path), (
        f"no golden for {name}; run `python tools/lint_corpus.py --update`"
    )
    with open(path, "r", encoding="utf-8") as handle:
        expected = json.load(handle)
    assert run_lint(CORPUS[name]).payload() == expected


def test_every_golden_has_a_corpus_program():
    stems = {
        os.path.splitext(filename)[0]
        for filename in os.listdir(GOLDEN_DIR)
        if filename.endswith(".json")
    }
    assert stems == set(CORPUS)


def test_no_corpus_program_has_error_diagnostics():
    # The corpus is all valid programs; lint findings are warnings/info.
    for name, source in CORPUS.items():
        assert not run_lint(source).has_errors, name
