"""Integration: semantic correctness of every sound algorithm on the
whole corpus, over all recorded inputs and environments.

This is the paper's §1 contract made executable: "P' computes the same
value(s) of var at loc as that computed by P".
"""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.interp.oracle import TrajectoryMismatch, check_slice_correctness
from repro.lang.errors import SliceError
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import CORRECT_GENERAL, get_algorithm
from tests.conftest import corpus_analysis

SOUND_EVERYWHERE = [name for name in CORRECT_GENERAL if name != "lyle"]


class TestSoundAlgorithms:
    @pytest.mark.parametrize("program_name", sorted(PAPER_PROGRAMS))
    @pytest.mark.parametrize("algorithm", SOUND_EVERYWHERE)
    def test_trajectories_preserved(self, program_name, algorithm):
        entry = PAPER_PROGRAMS[program_name]
        analysis = corpus_analysis(program_name)
        result = get_algorithm(algorithm)(
            analysis, SlicingCriterion(*entry.criterion)
        )
        for env in entry.env_sets:
            check_slice_correctness(
                result, entry.input_sets, initial_env=dict(env)
            )

    @pytest.mark.parametrize(
        "program_name",
        [n for n in sorted(PAPER_PROGRAMS) if PAPER_PROGRAMS[n].structured],
    )
    @pytest.mark.parametrize("algorithm", ["structured", "conservative"])
    def test_structured_algorithms_on_structured_corpus(
        self, program_name, algorithm
    ):
        entry = PAPER_PROGRAMS[program_name]
        analysis = corpus_analysis(program_name)
        try:
            result = get_algorithm(algorithm)(
                analysis, SlicingCriterion(*entry.criterion)
            )
        except SliceError:
            pytest.skip("guarded precondition")
        for env in entry.env_sets:
            check_slice_correctness(
                result, entry.input_sets, initial_env=dict(env)
            )


class TestUnsoundBaselinesFailVisibly:
    """The paper's negative results, demonstrated semantically."""

    CASES = [
        # (program, algorithm) pairs the paper reports as wrong.
        ("fig3a", "conventional"),
        ("fig5a", "conventional"),
        ("fig8a", "conventional"),
        ("fig8a", "jiang"),
        ("fig16a", "gallagher"),
    ]

    @pytest.mark.parametrize("program_name,algorithm", CASES)
    def test_divergence_detected(self, program_name, algorithm):
        entry = PAPER_PROGRAMS[program_name]
        analysis = corpus_analysis(program_name)
        result = get_algorithm(algorithm)(
            analysis, SlicingCriterion(*entry.criterion)
        )
        diverged = False
        for env in entry.env_sets:
            try:
                check_slice_correctness(
                    result, entry.input_sets, initial_env=dict(env)
                )
            except TrajectoryMismatch:
                diverged = True
        assert diverged, (
            f"{algorithm} on {program_name} should misbehave per the paper"
        )

    def test_conventional_correct_when_no_jumps(self):
        # Fig. 1a has no jump statements — conventional slicing is fine.
        entry = PAPER_PROGRAMS["fig1a"]
        analysis = corpus_analysis("fig1a")
        result = get_algorithm("conventional")(
            analysis, SlicingCriterion(*entry.criterion)
        )
        assert check_slice_correctness(result, entry.input_sets) == len(
            entry.input_sets
        )
