"""Integration tests for the extra (non-paper) corpus programs."""

import pytest

from repro.corpus.extras import EXTRA_PROGRAMS, WORDCOUNT_CRITERIA
from repro.interp.oracle import TrajectoryMismatch, check_slice_correctness
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import get_algorithm

_ANALYSES = {}


def analysis_of(name):
    if name not in _ANALYSES:
        _ANALYSES[name] = analyze_program(EXTRA_PROGRAMS[name].source)
    return _ANALYSES[name]


class TestExpectations:
    @pytest.mark.parametrize(
        "name,algorithm",
        [
            (name, algorithm)
            for name in sorted(EXTRA_PROGRAMS)
            for algorithm in sorted(EXTRA_PROGRAMS[name].expectations)
        ],
    )
    def test_expected_slices(self, name, algorithm):
        entry = EXTRA_PROGRAMS[name]
        result = get_algorithm(algorithm)(
            analysis_of(name), SlicingCriterion(*entry.criterion)
        )
        assert frozenset(result.statement_nodes()) == entry.expectations[
            algorithm
        ]

    @pytest.mark.parametrize("name", sorted(EXTRA_PROGRAMS))
    def test_node_ids_equal_lines(self, name):
        for node in analysis_of(name).cfg.statement_nodes():
            assert node.id == node.line


class TestWordcount:
    """Weiser's teaching point: the three output slices differ."""

    @pytest.mark.parametrize(
        "criterion,expected", sorted(WORDCOUNT_CRITERIA.items())
    )
    def test_per_output_slices(self, criterion, expected):
        line, var = criterion
        result = get_algorithm("agrawal")(
            analysis_of("wordcount"), SlicingCriterion(line, var)
        )
        assert frozenset(result.statement_nodes()) == expected

    def test_slices_nearly_disjoint(self):
        lines_slice = WORDCOUNT_CRITERIA[(15, "lines")]
        chars_slice = WORDCOUNT_CRITERIA[(17, "chars")]
        words_slice = WORDCOUNT_CRITERIA[(16, "words")]
        common = lines_slice & chars_slice & words_slice
        assert common == {5, 6}  # only the input loop is shared

    @pytest.mark.parametrize(
        "criterion", sorted(WORDCOUNT_CRITERIA)
    )
    def test_all_slices_semantically_correct(self, criterion):
        entry = EXTRA_PROGRAMS["wordcount"]
        line, var = criterion
        result = get_algorithm("agrawal")(
            analysis_of("wordcount"), SlicingCriterion(line, var)
        )
        check_slice_correctness(result, entry.input_sets)


class TestSearch:
    """The break is essential for first-match semantics."""

    def test_conventional_slice_is_wrong(self):
        entry = EXTRA_PROGRAMS["search"]
        result = get_algorithm("conventional")(
            analysis_of("search"), SlicingCriterion(*entry.criterion)
        )
        with pytest.raises(TrajectoryMismatch):
            check_slice_correctness(result, entry.input_sets)

    def test_agrawal_slice_is_correct(self):
        entry = EXTRA_PROGRAMS["search"]
        result = get_algorithm("agrawal")(
            analysis_of("search"), SlicingCriterion(*entry.criterion)
        )
        assert check_slice_correctness(result, entry.input_sets) == len(
            entry.input_sets
        )

    def test_found_slice_keeps_break_conservatively(self):
        # `found` is monotone, so the break is semantically redundant for
        # it — but the nearest-postdominator test cannot know that, and
        # every jump-aware algorithm keeps the break.  The conventional
        # slice without it happens to be correct here.
        analysis = analysis_of("search")
        criterion = SlicingCriterion(12, "found")
        agrawal = get_algorithm("agrawal")(analysis, criterion)
        conventional = get_algorithm("conventional")(analysis, criterion)
        assert 11 in agrawal.nodes
        assert 11 not in conventional.nodes
        entry = EXTRA_PROGRAMS["search"]
        check_slice_correctness(agrawal, entry.input_sets)
        check_slice_correctness(conventional, entry.input_sets)

    def test_dynamic_slice_on_no_match_run_drops_the_hit_branch(self):
        from repro.dynamic.slicer import dynamic_slice

        entry = EXTRA_PROGRAMS["search"]
        result = dynamic_slice(
            analysis_of("search"),
            SlicingCriterion(*entry.criterion),
            inputs=[1, 2, 3],  # n=1, values 2 and 3: no match
        )
        assert 10 not in result.statement_nodes()  # index = i never ran
