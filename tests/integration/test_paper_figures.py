"""Integration tests: every slice the paper reports, exactly.

One test class per figure; assertions are transcribed from the paper
(figures 1, 3, 5, 8, 10, 14, 16 and the §5 prose).  The corpus module
records the expected sets; these tests check them against live runs and
also pin the artefacts the paper calls out explicitly (traversal counts,
label re-associations, extracted source shapes).
"""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_source
from repro.slicing.registry import get_algorithm
from tests.conftest import corpus_analysis


def run(name, algorithm):
    entry = PAPER_PROGRAMS[name]
    analysis = corpus_analysis(name)
    slicer = get_algorithm(algorithm)
    return entry, slicer(analysis, SlicingCriterion(*entry.criterion))


class TestExpectedSlices:
    @pytest.mark.parametrize(
        "name,algorithm",
        [
            (name, algorithm)
            for name in sorted(PAPER_PROGRAMS)
            for algorithm in sorted(PAPER_PROGRAMS[name].expectations)
        ],
    )
    def test_slice_matches_paper(self, name, algorithm):
        entry, result = run(name, algorithm)
        expected = entry.expectations[algorithm]
        assert frozenset(result.statement_nodes()) == expected

    @pytest.mark.parametrize(
        "name,algorithm",
        [
            (name, algorithm)
            for name in sorted(PAPER_PROGRAMS)
            for algorithm in sorted(PAPER_PROGRAMS[name].must_include)
        ],
    )
    def test_paper_reported_inclusions(self, name, algorithm):
        entry, result = run(name, algorithm)
        missing = entry.must_include[algorithm] - set(result.statement_nodes())
        assert not missing

    @pytest.mark.parametrize(
        "name,algorithm",
        [
            (name, algorithm)
            for name in sorted(PAPER_PROGRAMS)
            for algorithm in sorted(PAPER_PROGRAMS[name].must_exclude)
        ],
    )
    def test_paper_reported_exclusions(self, name, algorithm):
        entry, result = run(name, algorithm)
        overlap = entry.must_exclude[algorithm] & set(result.statement_nodes())
        assert not overlap

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_traversal_counts(self, name):
        entry, result = run(name, "agrawal")
        if entry.expected_traversals is not None:
            assert result.traversals == entry.expected_traversals

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_label_reassociations(self, name):
        entry, result = run(name, "agrawal")
        assert result.label_map == entry.expected_labels

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_node_ids_equal_paper_statement_numbers(self, name):
        analysis = corpus_analysis(name)
        for node in analysis.cfg.statement_nodes():
            assert node.id == node.line


class TestFig3Extraction:
    """Fig. 3c, line by line."""

    def test_extracted_text(self):
        _, result = run("fig3a", "agrawal")
        assert extract_source(result) == (
            "positives = 0;\n"
            "L3: if (eof()) goto L14;\n"
            "read(x);\n"
            "if (x > 0) goto L8;\n"
            "goto L13;\n"
            "L8: positives = positives + 1;\n"
            "L13: goto L3;\n"
            "L14: ;\n"
            "write(positives);\n"
        )


class TestFig5Extraction:
    """Fig. 5c: the continue on line 7 survives inside its if."""

    def test_extracted_text(self):
        _, result = run("fig5a", "agrawal")
        text = extract_source(result)
        assert "continue;" in text
        assert text.count("continue;") == 1
        assert "sum" not in text


class TestFig8Extraction:
    """Fig. 8c: jumps 7, 11, 13 all kept; labels L12 and L14 dangle."""

    def test_extracted_text(self):
        _, result = run("fig8a", "agrawal")
        text = extract_source(result)
        assert text.count("goto L3;") == 3
        assert "L12: ;" in text
        assert "L14: ;" in text
        assert "if (x % 2 != 0) goto L12;" in text


class TestFig10Extraction:
    """Fig. 10b: L6 lands on `goto L3`, L8 on `write(y)`."""

    def test_extracted_text(self):
        _, result = run("fig10a", "agrawal")
        assert extract_source(result) == (
            "if (c1)\n"
            "{\n"
            "    goto L6;\n"
            "    L3: y = 1;\n"
            "    goto L8;\n"
            "}\n"
            "L6: ;\n"
            "goto L3;\n"
            "L8: ;\n"
            "write(y);\n"
        )


class TestFig14TwoSlices:
    """Figs. 14b vs 14c: conservative keeps two more breaks."""

    def test_difference_is_exactly_the_breaks(self):
        _, simplified = run("fig14a", "structured")
        _, conservative = run("fig14a", "conservative")
        extra = set(conservative.statement_nodes()) - set(
            simplified.statement_nodes()
        )
        assert extra == {5, 7}
        analysis = corpus_analysis("fig14a")
        assert all(analysis.cfg.nodes[n].is_jump for n in extra)


class TestFig16GallagherFailure:
    """Fig. 16b is wrong — and provably so via the oracle."""

    def test_gallagher_misses_the_goto(self):
        _, gallagher = run("fig16a", "gallagher")
        _, correct = run("fig16a", "agrawal")
        assert 4 not in gallagher.statement_nodes()
        assert 4 in correct.statement_nodes()

    def test_gallagher_slice_misbehaves_semantically(self):
        from repro.interp.oracle import (
            TrajectoryMismatch,
            check_slice_correctness,
        )

        entry, gallagher = run("fig16a", "gallagher")
        with pytest.raises(TrajectoryMismatch):
            check_slice_correctness(gallagher, entry.input_sets)

    def test_agrawal_slice_is_correct(self):
        from repro.interp.oracle import check_slice_correctness

        entry, correct = run("fig16a", "agrawal")
        assert check_slice_correctness(correct, entry.input_sets) == len(
            entry.input_sets
        )


class TestJiangFailure:
    """§5: the Jiang–Zhou–Robson reconstruction misses 11 and 13 in
    Fig. 8 — and its slice is semantically wrong there."""

    def test_semantic_failure(self):
        from repro.interp.oracle import (
            TrajectoryMismatch,
            check_slice_correctness,
        )

        entry, result = run("fig8a", "jiang")
        with pytest.raises(TrajectoryMismatch):
            check_slice_correctness(result, entry.input_sets)


class TestLyleOverapproximation:
    """§5: Lyle's slices are supersets of Agrawal's — and still correct —
    on the programs the paper discusses.

    Fig. 10a is excluded deliberately: the paper hedges Lyle's rule with
    "except in certain degenerate cases", and Fig. 10's pattern (the
    needed jumps lie *before* every conventional-slice statement on the
    path from entry, so they are not "between S and loc" for any slice
    member S) is exactly such a case — the literal reconstruction drops
    gotos 2 and 7 there and the slice misbehaves.  Recorded as finding
    E3 in EXPERIMENTS.md.
    """

    NAMES = [n for n in sorted(PAPER_PROGRAMS) if n != "fig10a"]

    @pytest.mark.parametrize("name", NAMES)
    def test_superset_of_agrawal(self, name):
        entry, lyle = run(name, "lyle")
        _, agrawal = run(name, "agrawal")
        assert set(agrawal.statement_nodes()) <= set(lyle.statement_nodes())

    @pytest.mark.parametrize("name", NAMES)
    def test_lyle_semantically_correct(self, name):
        from repro.interp.oracle import check_slice_correctness

        entry, lyle = run(name, "lyle")
        for env in entry.env_sets:
            check_slice_correctness(
                lyle, entry.input_sets, initial_env=dict(env)
            )

    def test_fig10_is_a_degenerate_case_for_lyle(self):
        entry, lyle = run("fig10a", "lyle")
        _, agrawal = run("fig10a", "agrawal")
        assert not (
            set(agrawal.statement_nodes()) <= set(lyle.statement_nodes())
        )
