"""Integration tests for crash-tolerant multi-process serving.

Real processes, real sockets: each supervisor test forks worker
processes of the module under test and talks to the front door over
HTTP.  The headline properties (the acceptance criteria of the
robustness milestone):

* a batch sent while a ``worker-crash`` fault plan is active completes
  with **zero wrong results** — the supervisor detects the exit-70
  deaths, restarts each crashed shard exactly once, and the client's
  retries bridge the gap;
* a **restarted** cluster over the same store root serves its warm set
  byte-identically from disk, without recomputing;
* during a graceful drain ``/readyz`` flips to 503 (with Retry-After)
  and POSTs are refused with a *retryable* envelope, while ``/healthz``
  keeps answering 200 — liveness and readiness are different questions;
* a corrupted store entry is quarantined and recomputed, never served.
"""

import json
import time
import urllib.request

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.service.client import ServiceClient
from repro.service.cluster import (
    ClusterConfig,
    ClusterSupervisor,
    shard_for,
)
from repro.service.engine import SlicingEngine
from repro.service.faults import FaultPlan
from repro.service.resilience import RetryPolicy
from repro.service.server import make_server
from repro.service.store import DurableStore

CRASH_ONCE = {
    "rules": [{"kind": "worker-crash", "op": "slice", "first_n": 1}]
}


def slice_payload(entry, algorithm="agrawal"):
    line, var = entry.criterion
    return {
        "op": "slice",
        "source": entry.source,
        "line": line,
        "var": var,
        "algorithm": algorithm,
    }


def fast_config(**overrides):
    defaults = dict(
        workers=2,
        port=0,
        heartbeat_interval=0.2,
        backoff_base=0.05,
        drain_seconds=5.0,
        verbose=False,
        seed=11,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture
def corpus():
    return sorted(PAPER_PROGRAMS.items())


class TestShardFor:
    def test_deterministic_and_in_range(self, corpus):
        for _, entry in corpus:
            shard = shard_for(entry.source, 4)
            assert shard == shard_for(entry.source, 4)
            assert 0 <= shard < 4

    def test_single_worker_degenerates_to_zero(self, corpus):
        assert all(
            shard_for(entry.source, 1) == 0 for _, entry in corpus
        )

    def test_corpus_spreads_over_shards(self, corpus):
        shards = {shard_for(entry.source, 2) for _, entry in corpus}
        assert shards == {0, 1}


class TestClusterServing:
    @pytest.fixture
    def cluster(self, tmp_path):
        config = fast_config(store_root=str(tmp_path / "store"))
        supervisor = ClusterSupervisor(config)
        supervisor.start()
        client = ServiceClient(
            f"http://127.0.0.1:{supervisor.port}",
            retry=RetryPolicy(
                max_retries=4, backoff_seconds=0.1, seed=3
            ),
        )
        try:
            yield supervisor, client
        finally:
            supervisor.stop(drain=True)

    def test_slice_matches_local_engine(self, cluster, corpus):
        supervisor, client = cluster
        name, entry = corpus[1]  # fig3a
        response = client.post(slice_payload(entry))
        assert response["ok"], response
        with SlicingEngine() as engine:
            local = engine.handle_payload(slice_payload(entry))
        assert response["result"] == local["result"]

    def test_requests_route_by_content_hash(self, cluster, corpus):
        """Shard affinity: every repetition of one program lands on the
        same worker, so its analysis cache is reused."""
        supervisor, client = cluster
        _, entry = corpus[0]
        shard = shard_for(entry.source, supervisor.config.workers)
        before = supervisor.cluster_snapshot()["worker_stats"]
        for _ in range(3):
            assert client.post(slice_payload(entry))["ok"]
        after = supervisor.cluster_snapshot()["worker_stats"]
        delta = [
            after[i]["requests"] - before[i]["requests"]
            for i in range(supervisor.config.workers)
        ]
        assert delta[shard] == 3
        assert sum(delta) == 3

    def test_batch_is_merged_in_input_order(self, cluster, corpus):
        supervisor, client = cluster
        payloads = [slice_payload(entry) for _, entry in corpus]
        body = json.dumps({"requests": payloads}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{supervisor.port}/batch",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as reply:
            merged = json.loads(reply.read())
        assert merged["ok"]
        assert len(merged["responses"]) == len(payloads)
        for payload, response in zip(payloads, merged["responses"]):
            assert response["ok"], response
            assert response["result"]["criterion"]["line"] == (
                payload["line"]
            )

    def test_stats_aggregate_across_workers(self, cluster, corpus):
        supervisor, client = cluster
        for _, entry in corpus[:3]:
            assert client.post(slice_payload(entry))["ok"]
        status, stats = client.get("/stats")
        assert status == 200
        total = sum(
            count
            for op, count in stats["requests"].items()
            if op.startswith("slice:")
        )
        assert total >= 3
        assert stats["cluster"]["workers"] == 2
        assert stats["cluster"]["alive"] == 2
        assert len(stats["cluster"]["worker_stats"]) == 2
        assert stats["store"]["puts"] >= 3

    def test_prometheus_exposes_cluster_families(self, cluster):
        supervisor, _ = cluster
        url = f"http://127.0.0.1:{supervisor.port}/metrics.prom"
        with urllib.request.urlopen(url, timeout=10) as reply:
            text = reply.read().decode()
        assert "slang_cluster_workers 2" in text
        assert "slang_cluster_workers_alive 2" in text
        assert 'slang_cluster_restarts_total{shard="0"}' in text
        assert "slang_store_bytes" in text

    def test_drain_refuses_posts_but_stays_alive(
        self, cluster, corpus
    ):
        supervisor, client = cluster
        _, entry = corpus[0]
        assert client.post(slice_payload(entry))["ok"]
        # Flip the drain flag without tearing the front door down (stop()
        # would close the socket we are probing).
        supervisor._draining = True
        try:
            status, ready = client.get("/readyz")
            assert status == 503
            assert ready["ok"] is False and ready["draining"] is True
            status, health = client.get("/healthz")
            assert status == 200 and health["ok"] is True
            refused = client.post(slice_payload(entry))
            assert refused["ok"] is False
            assert refused["error"]["code"] == "overloaded"
            assert refused["error"]["retryable"] is True
            assert refused["error"]["retry_after"] > 0
        finally:
            supervisor._draining = False
        assert client.post(slice_payload(entry))["ok"]


class TestCrashRecovery:
    def test_batch_completes_through_worker_crashes(
        self, tmp_path, corpus
    ):
        """The chaos acceptance criterion, in miniature: every worker's
        first slice request kills it (exit 70); the batch still returns
        only correct results, each shard restarts exactly once, and the
        pool is fully healed afterwards."""
        config = fast_config(
            store_root=str(tmp_path / "store"), faults=CRASH_ONCE
        )
        supervisor = ClusterSupervisor(config)
        supervisor.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{supervisor.port}",
                retry=RetryPolicy(
                    max_retries=6, backoff_seconds=0.2, seed=7
                ),
            )
            payloads = [
                slice_payload(entry) for _, entry in corpus
            ] * 2
            with SlicingEngine() as engine:
                expected = [
                    engine.handle_payload(p) for p in payloads
                ]
            responses = client.run_batch(payloads, concurrency=4)
            for response, want in zip(responses, expected):
                assert response["ok"], response
                assert response["result"] == want["result"]
            snapshot = supervisor.cluster_snapshot()
            assert snapshot["restarts"] >= 1
            for worker in snapshot["worker_stats"]:
                assert worker["restarts"] <= 1  # crash-once plan
                assert worker["alive"]
            stats = supervisor.stats_payload()
            assert stats["store"]["quarantined"] == 0
            assert client.stats()["recovered"] >= 1
        finally:
            supervisor.stop(drain=True)


class TestWarmRestart:
    def test_restarted_cluster_serves_warm_set_from_disk(
        self, tmp_path, corpus
    ):
        """Durability across a full restart: a new supervisor over the
        same store root answers the previous lifetime's requests
        byte-identically, from disk, without recomputing."""
        root = str(tmp_path / "store")
        payloads = [slice_payload(entry) for _, entry in corpus]

        config = fast_config(store_root=root)
        first = ClusterSupervisor(config)
        first.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{first.port}")
            cold = [client.post(p) for p in payloads]
            assert all(r["ok"] for r in cold)
        finally:
            first.stop(drain=True)

        second = ClusterSupervisor(fast_config(store_root=root))
        second.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{second.port}")
            warm = [client.post(p) for p in payloads]
            for before, after in zip(cold, warm):
                assert json.dumps(
                    after["result"], sort_keys=True
                ) == json.dumps(before["result"], sort_keys=True)
            stats = second.stats_payload()
            assert stats["store"]["hits"] == len(payloads)
            assert stats["store"]["quarantined"] == 0
        finally:
            second.stop(drain=True)


class TestStoreCorruptionFault:
    def test_corrupt_entry_is_quarantined_and_recomputed(
        self, tmp_path, corpus
    ):
        """``store-corruption`` end to end through the engine: the
        armed put writes a bad entry; a fresh engine over the same root
        detects the checksum mismatch and quarantines it — the corrupt
        bytes are never returned.  Since the incremental layer, every
        slice is stored twice (exact-source key + per-unit sub-key) and
        the fault arms one put, so the clean replica may answer the
        read; with it gone too the engine recomputes.  Either way the
        served result equals the fresh computation."""
        root = str(tmp_path / "store")
        _, entry = corpus[1]
        payload = slice_payload(entry)
        plan = FaultPlan.from_dict(
            {"rules": [{"kind": "store-corruption", "op": "slice",
                        "first_n": 1}]}
        )
        with SlicingEngine(
            store=DurableStore(root), faults=plan
        ) as engine:
            poisoned = engine.handle_payload(payload)
            assert poisoned["ok"]  # the response itself is computed fresh
        with SlicingEngine(store=DurableStore(root)) as engine:
            recovered = engine.handle_payload(payload)
            assert recovered["ok"]
            assert recovered["result"] == poisoned["result"]
            store_stats = engine.stats_payload()["store"]
            assert store_stats["quarantined"] == 1
            # At most the clean per-unit replica hit; the quarantined
            # exact-key entry never counts as a hit.
            assert store_stats["hits"] <= 1


class TestSingleServerDrain:
    def test_readyz_and_posts_flip_on_drain(self, corpus):
        """Satellite: the single-process server's graceful drain —
        ``/readyz`` 503 with Retry-After and retryable POST refusals,
        ``/healthz`` still 200 (the process is alive, just leaving)."""
        _, entry = corpus[1]
        with SlicingEngine() as engine:
            server = make_server("127.0.0.1", 0, engine)
            import threading

            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                client = ServiceClient(
                    f"http://127.0.0.1:{server.server_address[1]}"
                )
                status, ready = client.get("/readyz")
                assert status == 200 and ready["ok"]
                assert client.post(slice_payload(entry))["ok"]

                engine.begin_drain()
                status, ready = client.get("/readyz")
                assert status == 503
                assert ready["draining"] is True
                status, health = client.get("/healthz")
                assert status == 200
                refused = client.post(slice_payload(entry))
                assert refused["ok"] is False
                assert refused["error"]["code"] == "overloaded"
                assert refused["error"]["retryable"] is True
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5.0)
