"""Unit tests for the rooted-tree utility."""

import sys

import pytest

from repro.analysis.tree import Tree


@pytest.fixture
def sample():
    #        10
    #       /  \
    #      5    8
    #     / \    \
    #    1   3    7
    #        |
    #        2
    return Tree({5: 10, 8: 10, 1: 5, 3: 5, 7: 8, 2: 3}, root=10)


class TestStructure:
    def test_nodes(self, sample):
        assert sample.nodes == {1, 2, 3, 5, 7, 8, 10}

    def test_contains(self, sample):
        assert 7 in sample
        assert 99 not in sample

    def test_len(self, sample):
        assert len(sample) == 7

    def test_parent_of(self, sample):
        assert sample.parent_of(2) == 3
        assert sample.parent_of(10) is None

    def test_children_sorted(self, sample):
        assert sample.children_of(10) == [5, 8]
        assert sample.children_of(5) == [1, 3]
        assert sample.children_of(2) == []

    def test_depths(self, sample):
        assert sample.depth_of(10) == 0
        assert sample.depth_of(5) == 1
        assert sample.depth_of(2) == 3

    def test_single_node_tree(self):
        tree = Tree({}, root=0)
        assert tree.nodes == {0}
        assert list(tree.preorder()) == [0]


class TestInvalidConstruction:
    def test_root_with_parent_rejected(self):
        with pytest.raises(ValueError):
            Tree({1: 2, 2: 1}, root=1)

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            Tree({1: 2, 2: 3, 3: 1}, root=0)

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError):
            Tree({1: 42}, root=0)


class TestAncestry:
    def test_ancestors_nearest_first(self, sample):
        assert list(sample.ancestors(2)) == [3, 5, 10]
        assert list(sample.ancestors(10)) == []

    def test_is_ancestor_reflexive_by_default(self, sample):
        assert sample.is_ancestor(3, 3)
        assert not sample.is_ancestor(3, 3, strict=True)

    def test_is_ancestor_proper(self, sample):
        assert sample.is_ancestor(10, 2, strict=True)
        assert sample.is_ancestor(5, 1, strict=True)
        assert not sample.is_ancestor(1, 5)
        assert not sample.is_ancestor(8, 2)

    def test_is_ancestor_unknown_nodes(self, sample):
        assert not sample.is_ancestor(99, 2)
        assert not sample.is_ancestor(2, 99)


class TestNearestAncestorIn:
    def test_nearest_picks_closest(self, sample):
        assert sample.nearest_ancestor_in(2, {5, 10}) == 5
        assert sample.nearest_ancestor_in(2, {3, 10}) == 3

    def test_excludes_self(self, sample):
        assert sample.nearest_ancestor_in(3, {3, 10}) == 10

    def test_none_when_no_member(self, sample):
        assert sample.nearest_ancestor_in(2, {7, 8}) is None

    def test_accepts_any_iterable(self, sample):
        assert sample.nearest_ancestor_in(2, [10]) == 10


class TestTraversal:
    def test_preorder_parent_before_children(self, sample):
        order = list(sample.preorder())
        position = {node: index for index, node in enumerate(order)}
        for parent, child in sample.edges():
            assert position[parent] < position[child]

    def test_preorder_children_ascending(self, sample):
        order = list(sample.preorder())
        assert order == [10, 5, 1, 3, 2, 8, 7]

    def test_edges_and_parent_map_consistent(self, sample):
        assert dict(
            (child, parent) for parent, child in sample.edges()
        ) == sample.as_parent_map()


class TestAncestorChain:
    def fresh_walk(self, tree, node):
        chain = []
        current = tree.parent_of(node)
        while current is not None:
            chain.append(current)
            current = tree.parent_of(current)
        return tuple(chain)

    def test_chain_matches_fresh_parent_walk(self, sample):
        for node in sample.nodes:
            assert sample.ancestor_chain(node) == self.fresh_walk(
                sample, node
            )

    def test_chain_is_cached(self, sample):
        first = sample.ancestor_chain(2)
        assert sample.ancestor_chain(2) is first
        # Filling 2's chain also fills every prefix on the way up.
        assert sample.ancestor_chain(3) == (5, 10)

    def test_unknown_node_gets_empty_chain(self, sample):
        assert sample.ancestor_chain(99) == ()
        assert list(sample.ancestors(99)) == []

    def test_deep_chain_does_not_recurse(self):
        """LST chains on large flat programs are deep; the memo fill
        must not hit the interpreter recursion limit."""
        depth = sys.getrecursionlimit() + 500
        tree = Tree({i: i - 1 for i in range(1, depth)}, root=0)
        chain = tree.ancestor_chain(depth - 1)
        assert len(chain) == depth - 1
        assert chain[0] == depth - 2
        assert chain[-1] == 0

    def test_corpus_nearest_in_slice_unchanged(self):
        """The memoized chains answer nearest-ancestor queries exactly
        as a fresh walk does, over every PDT/LST in the corpus."""
        from repro.corpus import PAPER_PROGRAMS
        from repro.pdg.builder import analyze_program

        for name in sorted(PAPER_PROGRAMS):
            analysis = analyze_program(PAPER_PROGRAMS[name].source)
            for tree in (analysis.pdt, analysis.lst):
                members = set(
                    list(sorted(tree.nodes))[:: max(1, len(tree) // 5)]
                )
                for node in sorted(tree.nodes):
                    expected = None
                    for ancestor in self.fresh_walk(tree, node):
                        if ancestor in members:
                            expected = ancestor
                            break
                    assert (
                        tree.nearest_ancestor_in(node, members)
                        == expected
                    ), (name, node)
