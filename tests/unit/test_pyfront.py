"""Unit tests for the Python front end."""

import pytest

from repro.interp.interpreter import run_program
from repro.pyfront.slicer import slice_python
from repro.pyfront.translate import TranslationError, translate_source
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Break,
    Continue,
    For,
    If,
    Num,
    Read,
    Return,
    Skip,
    While,
    Write,
)


class TestStatementTranslation:
    def test_assignment(self):
        program = translate_source("x = 1 + 2")
        assert isinstance(program.body[0], Assign)

    def test_aug_assignment(self):
        program = translate_source("x = 1\nx += 2")
        stmt = program.body[1]
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.value, Binary)
        assert stmt.value.op == "+"

    def test_read_idiom(self):
        program = translate_source("x = read()")
        assert isinstance(program.body[0], Read)

    def test_print_becomes_write(self):
        program = translate_source("print(1)")
        assert isinstance(program.body[0], Write)

    def test_pass_becomes_skip(self):
        program = translate_source("pass")
        assert isinstance(program.body[0], Skip)

    def test_if_elif_else(self):
        program = translate_source(
            "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3"
        )
        stmt = program.body[0]
        assert isinstance(stmt, If)
        # elif arrives as a nested If inside the else branch.
        assert isinstance(stmt.else_branch.stmts[0], If)

    def test_while_with_jumps(self):
        program = translate_source(
            "while not eof():\n    x = read()\n"
            "    if x < 0:\n        continue\n    break"
        )
        loop = program.body[0]
        assert isinstance(loop, While)
        assert isinstance(loop.body.stmts[2], Break)
        inner_if = loop.body.stmts[1]
        assert isinstance(inner_if.then_branch.stmts[0], Continue)

    def test_for_range_one_arg(self):
        program = translate_source("for i in range(5):\n    pass")
        loop = program.body[0]
        assert isinstance(loop, For)
        assert loop.init.value == Num(0)
        assert loop.cond.right == Num(5)

    def test_for_range_three_args(self):
        program = translate_source("for i in range(2, 10, 3):\n    pass")
        loop = program.body[0]
        assert loop.init.value == Num(2)
        assert loop.step.value.right == Num(3)

    def test_return(self):
        program = translate_source("return 7")
        assert isinstance(program.body[0], Return)

    def test_function_body_unwrapped(self):
        program = translate_source("def f():\n    x = 1\n    print(x)")
        assert len(program.body) == 2

    def test_line_numbers_preserved(self):
        program = translate_source("x = 1\n\ny = 2")
        assert [stmt.line for stmt in program.body] == [1, 3]


class TestExpressionTranslation:
    def test_bool_constants(self):
        program = translate_source("x = True\ny = False")
        assert program.body[0].value == Num(1)
        assert program.body[1].value == Num(0)

    def test_chained_comparison(self):
        program = translate_source("x = 1 < y < 10")
        value = program.body[0].value
        assert value.op == "&&"

    def test_floor_division(self):
        program = translate_source("x = 7 // 2")
        assert program.body[0].value.op == "/"

    def test_boolean_operators(self):
        program = translate_source("x = a and b or not c")
        assert program.body[0].value.op == "||"


class TestRejections:
    @pytest.mark.parametrize(
        "source",
        [
            "x = 1.5",
            "x = 'hello'",
            "x, y = 1, 2",
            "x = [1, 2]",
            "for x in items:\n    pass",
            "while c:\n    pass\nelse:\n    pass",
            "import os",
            "x = y ** 2",
            "f(1)",
            "print(1, 2)",
            "x = obj.attr",
        ],
    )
    def test_unsupported(self, source):
        with pytest.raises(TranslationError):
            translate_source(source)

    def test_error_names_line(self):
        with pytest.raises(TranslationError) as info:
            translate_source("x = 1\ny = 'bad'")
        assert "line 2" in str(info.value)


class TestTranslationSemantics:
    def test_translated_program_runs(self):
        program = translate_source(
            "total = 0\n"
            "for i in range(5):\n"
            "    if i % 2 == 0:\n"
            "        continue\n"
            "    total += i\n"
            "print(total)\n"
        )
        assert run_program(program).outputs == [4]

    def test_read_and_eof(self):
        program = translate_source(
            "n = 0\n"
            "while not eof():\n"
            "    x = read()\n"
            "    n += 1\n"
            "print(n)\n"
        )
        assert run_program(program, inputs=[7, 8]).outputs == [2]


class TestPythonSlicing:
    SOURCE = (
        "total = 0\n"
        "count = 0\n"
        "while not eof():\n"
        "    x = read()\n"
        "    if x <= 0:\n"
        "        total += f1(x)\n"
        "        continue\n"
        "    count += 1\n"
        "print(total)\n"
        "print(count)\n"
    )

    def test_slice_includes_relevant_continue(self):
        report = slice_python(self.SOURCE, line=10, var="count")
        assert 7 in report.lines  # the continue
        assert 6 not in report.lines  # total's update
        assert 1 not in report.lines

    def test_report_lines_match_result(self):
        report = slice_python(self.SOURCE, line=10, var="count")
        assert report.lines == report.result.lines()

    def test_annotated_marks_slice_lines(self):
        report = slice_python(self.SOURCE, line=10, var="count")
        annotated = report.annotated.splitlines()
        assert annotated[6].startswith(">")  # line 7: continue
        assert annotated[5].startswith(" ")  # line 6: total update

    def test_algorithm_selectable(self):
        conservative = slice_python(
            self.SOURCE, line=10, var="count", algorithm="conservative"
        )
        structured = slice_python(self.SOURCE, line=10, var="count")
        assert set(structured.lines) <= set(conservative.lines)
