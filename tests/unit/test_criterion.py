"""Unit tests for slicing-criterion resolution."""

import pytest

from repro.lang.errors import SliceError
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


class TestResolution:
    def test_use_site_is_its_own_seed(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        resolved = resolve_criterion(analysis, SlicingCriterion(2, "x"))
        assert resolved.node_id == 2
        assert resolved.seeds == {2}

    def test_def_site_is_its_own_seed(self):
        analysis = analyze_program("x = y + 1;")
        resolved = resolve_criterion(analysis, SlicingCriterion(1, "x"))
        assert resolved.seeds == {1}

    def test_unrelated_statement_pulls_reaching_defs(self):
        analysis = analyze_program("x = 1;\nif (c)\nx = 2;\nwrite(q);")
        resolved = resolve_criterion(analysis, SlicingCriterion(4, "x"))
        assert resolved.node_id == 4
        assert resolved.seeds == {4, 1, 3}

    def test_unrelated_statement_no_defs(self):
        analysis = analyze_program("write(q);")
        resolved = resolve_criterion(analysis, SlicingCriterion(1, "x"))
        assert resolved.seeds == {1}

    def test_unknown_line_raises_with_hint(self):
        analysis = analyze_program("x = 1;")
        with pytest.raises(SliceError) as info:
            resolve_criterion(analysis, SlicingCriterion(99, "x"))
        assert "99" in str(info.value)

    def test_prefers_use_over_def_on_same_line(self):
        # Two statements on one line: a def of x and a use of x.
        analysis = analyze_program("x = 1; write(x);")
        resolved = resolve_criterion(analysis, SlicingCriterion(1, "x"))
        assert analysis.cfg.nodes[resolved.node_id].text == "write(x)"

    def test_falls_back_to_def_then_first(self):
        analysis = analyze_program("x = 1; y = 2;")
        resolved = resolve_criterion(analysis, SlicingCriterion(1, "y"))
        assert analysis.cfg.nodes[resolved.node_id].text == "y = 2"
        resolved = resolve_criterion(analysis, SlicingCriterion(1, "zz"))
        assert analysis.cfg.nodes[resolved.node_id].text == "x = 1"

    def test_str_format(self):
        assert str(SlicingCriterion(12, "positives")) == (
            "<positives, line 12>"
        )
