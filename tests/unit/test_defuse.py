"""Unit tests for def-use chains and the data-dependence graph."""

from repro.analysis.defuse import (
    compute_data_dependence,
    def_use_chains,
)
from repro.analysis.reaching_defs import (
    Definition,
    compute_reaching_definitions,
)
from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program


def cfg_of(source, **kwargs):
    return build_cfg(parse_program(source), **kwargs)


class TestDataDependence:
    def test_simple_flow(self):
        cfg = cfg_of("x = 1;\nwrite(x);")
        ddg = compute_data_dependence(cfg)
        assert (1, 2, "x") in set(ddg.edges())

    def test_no_dependence_when_killed(self):
        cfg = cfg_of("x = 1;\nx = 2;\nwrite(x);")
        ddg = compute_data_dependence(cfg)
        assert (1, 3, "x") not in set(ddg.edges())
        assert (2, 3, "x") in set(ddg.edges())

    def test_paper_fig1_write_depends_on_both_assignments(self):
        from repro.corpus import PAPER_PROGRAMS

        cfg = cfg_of(PAPER_PROGRAMS["fig1a"].source)
        ddg = compute_data_dependence(cfg)
        # "Node 12 is data dependent on nodes 2 and 7" (paper §2).
        assert ddg.defs_reaching(12) == [2, 7]

    def test_predicate_uses_create_dependence(self):
        cfg = cfg_of("read(x);\nif (x > 0)\ny = 1;", chain_io=False)
        ddg = compute_data_dependence(cfg)
        assert (1, 2, "x") in set(ddg.edges())

    def test_accepts_precomputed_reaching(self):
        cfg = cfg_of("x = 1;\nwrite(x);")
        reaching = compute_reaching_definitions(cfg)
        ddg = compute_data_dependence(cfg, reaching)
        assert ddg.defs_reaching(2) == [1]

    def test_uses_of(self):
        cfg = cfg_of("x = 1;\nwrite(x);\nwrite(x + 1);")
        ddg = compute_data_dependence(cfg)
        assert ddg.uses_of(1) == [2, 3]

    def test_def_edges_carry_variable(self):
        cfg = cfg_of("x = 1;\ny = 2;\nwrite(x + y);")
        ddg = compute_data_dependence(cfg)
        assert sorted(ddg.def_edges_of(3)) == [(1, "x"), (2, "y")]

    def test_self_dependence_around_loop(self):
        cfg = cfg_of("s = 0;\nwhile (c)\ns = s + 1;")
        ddg = compute_data_dependence(cfg)
        assert (3, 3, "s") in set(ddg.edges())


class TestDefUseChains:
    def test_chain_lists_all_uses(self):
        cfg = cfg_of("x = 1;\nwrite(x);\ny = x + 2;")
        chains = def_use_chains(cfg)
        assert chains[Definition(1, "x")] == [2, 3]

    def test_unused_definition_absent(self):
        cfg = cfg_of("x = 1;\ny = 2;\nwrite(y);")
        chains = def_use_chains(cfg)
        assert Definition(1, "x") not in chains
