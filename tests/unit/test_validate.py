"""Unit tests for the semantic validator."""

import pytest

from repro.lang.errors import ValidationError
from repro.lang.parser import parse_program
from repro.lang.validate import (
    CODE_DUPLICATE_CASE,
    CODE_DUPLICATE_LABEL,
    CODE_MISPLACED_BREAK,
    CODE_MISPLACED_CONTINUE,
    CODE_UNDEFINED_GOTO,
    check_program,
    check_program_diagnostics,
    collect_labels,
    validate_program,
)
from repro.lint.diagnostics import Severity


def diagnostics(source):
    return check_program(parse_program(source))


def structured(source):
    return check_program_diagnostics(parse_program(source))


class TestLabels:
    def test_resolved_goto_passes(self):
        assert diagnostics("goto L; L: x = 1;") == []

    def test_unresolved_goto(self):
        messages = diagnostics("goto nowhere;")
        assert len(messages) == 1
        assert "nowhere" in messages[0]

    def test_duplicate_labels(self):
        messages = diagnostics("L: x = 1; L: y = 2; goto L;")
        assert any("duplicate label" in message for message in messages)

    def test_collect_labels_maps_statements(self):
        program = parse_program("A: x = 1; B: y = 2;")
        labels = collect_labels(program)
        assert set(labels) == {"A", "B"}
        assert labels["A"] is program.body[0]

    def test_collect_labels_raises_on_duplicate(self):
        program = parse_program("A: x = 1; A: y = 2;")
        with pytest.raises(ValidationError):
            collect_labels(program)

    def test_forward_and_backward_gotos_resolve(self):
        source = "A: if (c) goto B; goto A; B: x = 1;"
        assert diagnostics(source) == []


class TestJumpPlacement:
    def test_break_in_while_ok(self):
        assert diagnostics("while (c) break;") == []

    def test_break_in_switch_ok(self):
        assert diagnostics("switch (c) { case 1: break; }") == []

    def test_break_at_top_level(self):
        assert any("break" in m for m in diagnostics("break;"))

    def test_break_in_if_outside_loop(self):
        assert any("break" in m for m in diagnostics("if (c) break;"))

    def test_continue_in_loop_ok(self):
        assert diagnostics("while (c) continue;") == []

    def test_continue_in_for_ok(self):
        assert diagnostics("for (i = 0; i < 2; i = i + 1) continue;") == []

    def test_continue_in_do_while_ok(self):
        assert diagnostics("do continue; while (c);") == []

    def test_continue_in_switch_outside_loop(self):
        source = "switch (c) { case 1: continue; }"
        assert any("continue" in m for m in diagnostics(source))

    def test_continue_in_switch_inside_loop_ok(self):
        source = "while (c) switch (d) { case 1: continue; }"
        assert diagnostics(source) == []

    def test_break_in_loop_inside_switch_targets_loop(self):
        source = "switch (c) { case 1: while (d) break; }"
        assert diagnostics(source) == []

    def test_return_anywhere_ok(self):
        assert diagnostics("return;") == []


class TestSwitchArms:
    def test_duplicate_case_value(self):
        source = "switch (c) { case 1: x = 1; case 1: y = 2; }"
        assert any("duplicate" in m for m in diagnostics(source))

    def test_duplicate_default(self):
        source = "switch (c) { default: x = 1; default: y = 2; }"
        assert any("default" in m for m in diagnostics(source))

    def test_distinct_values_ok(self):
        source = "switch (c) { case 1: x = 1; case 2: default: y = 2; }"
        assert diagnostics(source) == []

    def test_duplicate_values_in_different_switches_ok(self):
        source = (
            "switch (a) { case 1: x = 1; } switch (b) { case 1: y = 2; }"
        )
        assert diagnostics(source) == []


class TestStructuredDiagnostics:
    """check_program_diagnostics emits the Diagnostic model the lint
    engine consumes; check_program is a formatting shim over it."""

    def test_codes_are_stable(self):
        cases = {
            "L: x = 1; L: y = 2; goto L;": CODE_DUPLICATE_LABEL,
            "goto nowhere;": CODE_UNDEFINED_GOTO,
            "break;": CODE_MISPLACED_BREAK,
            "if (c) continue;": CODE_MISPLACED_CONTINUE,
            "switch (c) { case 1: x = 1; case 1: y = 2; }": (
                CODE_DUPLICATE_CASE
            ),
        }
        for source, code in cases.items():
            found = structured(source)
            assert [d.code for d in found] == [code], source

    def test_every_front_end_finding_is_an_error(self):
        found = structured("goto a; break; L: x = 1; L: y = 2;")
        assert found
        assert all(d.severity is Severity.ERROR for d in found)

    def test_positions_and_rule_slugs(self):
        (diag,) = structured("x = 1;\ngoto nowhere;\n")
        assert diag.line == 2
        assert diag.rule == "undefined-goto-target"
        assert diag.hint is not None

    def test_string_shim_formats_the_same_findings(self):
        source = "goto a; goto b; break;"
        objects = structured(source)
        strings = diagnostics(source)
        assert strings == [
            f"line {d.line}: {d.message}" for d in objects
        ]

    def test_valid_program_has_no_diagnostics(self):
        assert structured("while (c) { break; } x = 1;") == []


class TestValidateProgram:
    def test_raises_on_any_diagnostic(self):
        with pytest.raises(ValidationError) as info:
            validate_program(parse_program("goto nowhere;"))
        assert "nowhere" in str(info.value)

    def test_returns_empty_list_on_success(self):
        assert validate_program(parse_program("x = 1;")) == []

    def test_multiple_diagnostics_reported_together(self):
        with pytest.raises(ValidationError) as info:
            validate_program(parse_program("goto a; goto b; break;"))
        message = str(info.value)
        assert "a" in message and "b" in message and "break" in message
