"""Unit tests for the tree-walking interpreter (the differential
reference for the CFG interpreter)."""

import pytest

from repro.interp.ast_interpreter import run_ast
from repro.interp.interpreter import run_program
from repro.lang.errors import InterpreterError
from repro.lang.parser import parse_program


def both(source, inputs=(), env=None):
    program = parse_program(source)
    return (
        run_program(program, inputs, initial_env=env),
        run_ast(program, inputs, initial_env=env),
    )


class TestAgreementWithCfgInterpreter:
    @pytest.mark.parametrize(
        "source,inputs",
        [
            ("x = 1;\nwrite(x + 2);", ()),
            ("read(a);\nread(b);\nwrite(a * b);", (3, 4)),
            ("if (c)\nwrite(1);\nelse\nwrite(2);", ()),
            (
                "s = 0;\nwhile (!eof()) {\nread(x);\ns = s + x;\n}\nwrite(s);",
                (1, 2, 3),
            ),
            ("do\nwrite(1);\nwhile (0);", ()),
            (
                "for (i = 0; i < 4; i = i + 1) {\nif (i == 2)\ncontinue;\n"
                "write(i);\n}",
                (),
            ),
            (
                "while (1) {\nread(x);\nif (eof())\nbreak;\n}\nwrite(x);",
                (9, 8),
            ),
            ("return 5;\nwrite(1);", ()),
            (
                "switch (c) {\ncase 1: write(10);\ncase 2: write(20);\n"
                "break;\ndefault: write(99);\n}",
                (),
            ),
        ],
    )
    def test_outputs_env_and_return_agree(self, source, inputs):
        cfg_result, ast_result = both(source, inputs)
        assert cfg_result.outputs == ast_result.outputs
        assert cfg_result.returned == ast_result.returned
        assert cfg_result.env == ast_result.env

    def test_switch_dispatch_per_value(self):
        source = (
            "switch (c) {\ncase 1: write(10);\nbreak;\ncase 2: write(20);\n"
            "case 3: write(30);\nbreak;\ndefault: write(99);\n}"
        )
        for value in range(-1, 5):
            cfg_result, ast_result = both(source, env={"c": value})
            assert cfg_result.outputs == ast_result.outputs, value

    def test_corpus_structured_goto_free_program(self):
        from repro.corpus import PAPER_PROGRAMS

        for name in ("fig1a", "fig5a", "fig14a"):
            source = PAPER_PROGRAMS[name].source
            for inputs in ((), (3, -1, 4, 0, 7), (1, 2)):
                for c in (0, 1, 2, 3):
                    cfg_result, ast_result = both(
                        source, inputs, env={"c": c}
                    )
                    assert cfg_result.outputs == ast_result.outputs


class TestLimits:
    def test_goto_rejected(self):
        program = parse_program("goto L;\nL: x = 1;")
        with pytest.raises(InterpreterError) as info:
            run_ast(program)
        assert "goto" in str(info.value)

    def test_step_limit(self):
        program = parse_program("i = 0;\nwhile (i < 100)\ni = i - 1;")
        with pytest.raises(InterpreterError):
            run_ast(program, step_limit=50)

    def test_break_inside_switch_inside_loop(self):
        source = (
            "n = 0;\nwhile (n < 3) {\nswitch (n) {\ncase 1: break;\n"
            "default: write(n);\n}\nn = n + 1;\n}"
        )
        cfg_result, ast_result = both(source)
        assert cfg_result.outputs == ast_result.outputs == [0, 2]
