"""Unit tests for dynamic slicing."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.dynamic.slicer import dynamic_slice
from repro.dynamic.trace import record_trace
from repro.lang.errors import SliceError
from repro.pdg.builder import analyze_program
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion


class TestTrace:
    def test_trace_records_execution_order(self):
        analysis = analyze_program("x = 1;\ny = 2;")
        trace = record_trace(analysis.cfg)
        nodes = [event.node_id for event in trace.events]
        assert nodes == [analysis.cfg.entry_id, 1, 2]

    def test_data_dependencies_point_to_last_definition(self):
        analysis = analyze_program("x = 1;\nx = 2;\nwrite(x);")
        trace = record_trace(analysis.cfg)
        write_event = trace.events[-1]
        assert dict(write_event.data_deps)["x"] == 2  # event index of x=2

    def test_loop_carried_dependency(self):
        analysis = analyze_program(
            "s = 0;\nwhile (!eof()) {\nread(x);\ns = s + x;\n}\nwrite(s);"
        )
        trace = record_trace(analysis.cfg, inputs=[5, 6])
        updates = trace.occurrences_of(4)
        assert len(updates) == 2
        second = trace.events[updates[1]]
        assert dict(second.data_deps)["s"] == updates[0]

    def test_outputs_recorded(self):
        analysis = analyze_program("write(7);")
        trace = record_trace(analysis.cfg)
        assert trace.outputs == [7]

    def test_occurrences_of(self):
        analysis = analyze_program(
            "while (!eof()) {\nread(x);\n}\nwrite(x);"
        )
        trace = record_trace(analysis.cfg, inputs=[1, 2, 3])
        assert len(trace.occurrences_of(2)) == 3


class TestDynamicSlice:
    def test_subset_of_static_slice(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        criterion = SlicingCriterion(15, "positives")
        dynamic = dynamic_slice(analysis, criterion, inputs=[3, -1, 4])
        static = conventional_slice(analysis, criterion)
        assert set(dynamic.statement_nodes()) <= set(static.statement_nodes())

    def test_empty_run_shrinks_slice(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        criterion = SlicingCriterion(15, "positives")
        dynamic = dynamic_slice(analysis, criterion, inputs=[])
        # Loop never entered: only the initialisation and the write (and
        # the loop guard via control dependence) can matter.
        assert 8 not in dynamic.statement_nodes()  # positives += 1 not run

    def test_branch_not_taken_excluded(self):
        source = "read(c);\nif (c)\nx = 1;\nelse\nx = 2;\nwrite(x);"
        analysis = analyze_program(source)
        criterion = SlicingCriterion(6, "x")
        # nodes: 1 read, 2 if, 3 x=1 (then), 4 x=2 (else), 5 write.
        taken = dynamic_slice(analysis, criterion, inputs=[1])
        assert 3 in taken.statement_nodes()
        assert 4 not in taken.statement_nodes()
        other = dynamic_slice(analysis, criterion, inputs=[0])
        assert 4 in other.statement_nodes()
        assert 3 not in other.statement_nodes()

    def test_occurrence_selection(self):
        source = (
            "s = 0;\nwhile (!eof()) {\nread(x);\ns = s + x;\nwrite(s);\n}"
        )
        analysis = analyze_program(source)
        criterion = SlicingCriterion(5, "s")
        first = dynamic_slice(
            analysis, criterion, inputs=[1, 2], occurrence=0
        )
        last = dynamic_slice(
            analysis, criterion, inputs=[1, 2], occurrence=-1
        )
        assert len(first.events) < len(last.events)

    def test_never_executed_criterion_raises(self):
        analysis = analyze_program("if (0)\nx = 1;\nwrite(x);")
        with pytest.raises(SliceError):
            dynamic_slice(analysis, SlicingCriterion(2, "x"), inputs=[])

    def test_bad_occurrence_raises(self):
        analysis = analyze_program("write(x);")
        with pytest.raises(SliceError):
            dynamic_slice(
                analysis, SlicingCriterion(1, "x"), inputs=[], occurrence=5
            )

    def test_lines_and_statement_nodes(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        dynamic = dynamic_slice(analysis, SlicingCriterion(2, "x"))
        assert dynamic.statement_nodes() == [1, 2]
        assert dynamic.lines() == [1, 2]

    def test_dynamic_control_dependence_includes_guard(self):
        source = "read(c);\nif (c)\nx = 1;\nwrite(x);"
        analysis = analyze_program(source)
        dynamic = dynamic_slice(
            analysis, SlicingCriterion(4, "x"), inputs=[1]
        )
        assert 2 in dynamic.statement_nodes()  # the if
        assert 1 in dynamic.statement_nodes()  # read feeding the if
