"""Unit tests for the SL parser."""

import pytest

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DoWhile,
    For,
    Goto,
    If,
    Num,
    Read,
    Return,
    Skip,
    Switch,
    Unary,
    Var,
    While,
    Write,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression, parse_program


def single(source):
    program = parse_program(source)
    assert len(program.body) == 1
    return program.body[0]


class TestSimpleStatements:
    def test_assignment(self):
        stmt = single("x = 1 + 2;")
        assert isinstance(stmt, Assign)
        assert stmt.target == "x"
        assert isinstance(stmt.value, Binary)

    def test_read(self):
        stmt = single("read(x);")
        assert isinstance(stmt, Read)
        assert stmt.target == "x"

    def test_write(self):
        stmt = single("write(x + 1);")
        assert isinstance(stmt, Write)

    def test_skip(self):
        assert isinstance(single(";"), Skip)

    def test_break(self):
        # Placement is the validator's business; parsing succeeds.
        assert isinstance(single("break;"), Break)

    def test_continue(self):
        assert isinstance(single("continue;"), Continue)

    def test_return_with_value(self):
        stmt = single("return x * 2;")
        assert isinstance(stmt, Return)
        assert stmt.value is not None

    def test_return_bare(self):
        stmt = single("return;")
        assert isinstance(stmt, Return)
        assert stmt.value is None

    def test_goto(self):
        stmt = single("goto L5;")
        assert isinstance(stmt, Goto)
        assert stmt.target == "L5"


class TestLabels:
    def test_label_attaches_to_statement(self):
        stmt = single("L3: x = 1;")
        assert stmt.label == "L3"
        assert isinstance(stmt, Assign)

    def test_label_on_conditional_goto(self):
        stmt = single("L3: if (eof()) goto L14;")
        assert stmt.label == "L3"
        assert isinstance(stmt, If)
        assert isinstance(stmt.then_branch, Goto)

    def test_label_line_is_statement_line(self):
        program = parse_program("x = 1;\nL2: y = 2;")
        assert program.body[1].line == 2

    def test_double_label_rejected(self):
        with pytest.raises(ParseError):
            parse_program("A: B: x = 1;")

    def test_label_on_block(self):
        stmt = single("L: { x = 1; }")
        assert stmt.label == "L"
        assert isinstance(stmt, Block)


class TestCompoundStatements:
    def test_if_without_else(self):
        stmt = single("if (x > 0) y = 1;")
        assert isinstance(stmt, If)
        assert stmt.else_branch is None

    def test_if_with_else(self):
        stmt = single("if (x > 0) y = 1; else y = 2;")
        assert isinstance(stmt.else_branch, Assign)

    def test_dangling_else_binds_to_nearest_if(self):
        stmt = single("if (a) if (b) x = 1; else x = 2;")
        assert stmt.else_branch is None
        inner = stmt.then_branch
        assert isinstance(inner, If)
        assert inner.else_branch is not None

    def test_while(self):
        stmt = single("while (!eof()) read(x);")
        assert isinstance(stmt, While)
        assert isinstance(stmt.body, Read)

    def test_do_while(self):
        stmt = single("do { read(x); } while (!eof());")
        assert isinstance(stmt, DoWhile)
        assert isinstance(stmt.body, Block)

    def test_for_full_header(self):
        stmt = single("for (i = 0; i < 3; i = i + 1) x = x + i;")
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, Assign)
        assert isinstance(stmt.cond, Binary)
        assert isinstance(stmt.step, Assign)

    def test_for_empty_clauses(self):
        stmt = single("for (;;) break;")
        assert stmt.init is None
        assert stmt.cond is None
        assert stmt.step is None

    def test_for_with_read_init(self):
        stmt = single("for (read(x); x < 3; x = x + 1) ;")
        assert isinstance(stmt.init, Read)

    def test_nested_blocks(self):
        stmt = single("{ { x = 1; } y = 2; }")
        assert isinstance(stmt, Block)
        assert isinstance(stmt.stmts[0], Block)

    def test_empty_block(self):
        stmt = single("{ }")
        assert isinstance(stmt, Block)
        assert stmt.stmts == []


class TestSwitch:
    def test_simple_switch(self):
        stmt = single("switch (c) { case 1: x = 1; break; case 2: y = 2; }")
        assert isinstance(stmt, Switch)
        assert len(stmt.cases) == 2
        assert stmt.cases[0].matches == [1]
        assert len(stmt.cases[0].stmts) == 2

    def test_merged_case_labels(self):
        stmt = single("switch (c) { case 1: case 2: default: x = 1; }")
        assert len(stmt.cases) == 1
        assert stmt.cases[0].matches == [1, 2, None]

    def test_negative_case_value(self):
        stmt = single("switch (c) { case -3: x = 1; }")
        assert stmt.cases[0].matches == [-3]

    def test_empty_arm_falls_through(self):
        stmt = single("switch (c) { case 1: case 2: x = 1; }")
        assert stmt.cases[0].matches == [1, 2]

    def test_statement_before_case_rejected(self):
        with pytest.raises(ParseError):
            parse_program("switch (c) { x = 1; }")


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Binary)
        assert expr.op == "+"
        assert isinstance(expr.right, Binary)
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, Binary)
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, Binary)

    def test_logical_precedence(self):
        expr = parse_expression("a || b && c")
        assert expr.op == "||"
        assert isinstance(expr.right, Binary)
        assert expr.right.op == "&&"

    def test_comparison_precedence(self):
        expr = parse_expression("a + 1 < b * 2")
        assert expr.op == "<"

    def test_unary_not(self):
        expr = parse_expression("!eof()")
        assert isinstance(expr, Unary)
        assert expr.op == "!"
        assert isinstance(expr.operand, Call)

    def test_unary_minus_nested(self):
        expr = parse_expression("- -x")
        assert isinstance(expr, Unary)
        assert isinstance(expr.operand, Unary)

    def test_call_with_arguments(self):
        expr = parse_expression("max(a, b + 1)")
        assert isinstance(expr, Call)
        assert expr.name == "max"
        assert len(expr.args) == 2

    def test_call_no_arguments(self):
        expr = parse_expression("eof()")
        assert expr.args == ()

    def test_variable(self):
        assert parse_expression("xyz") == Var("xyz")

    def test_number(self):
        assert parse_expression("7") == Num(7)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 3")


class TestExpressionMetadata:
    def test_variables_collected(self):
        expr = parse_expression("a + f(b, c * d) - a")
        assert expr.variables() == {"a", "b", "c", "d"}

    def test_calls_collected(self):
        expr = parse_expression("f(g(x)) + h(1)")
        assert expr.calls() == {"f", "g", "h"}


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "x = ;",
            "if x > 0 y = 1;",
            "while () x = 1;",
            "x = 1",
            "goto ;",
            "read();",
            "read(1);",
            "write();",
            "{ x = 1;",
            "do x = 1; while (c)",
            "switch (c) { case: x = 1; }",
            "else x = 1;",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as info:
            parse_program("x = 1;\ny = ;")
        assert info.value.location is not None
        assert info.value.location.line == 2


class TestLineNumbers:
    def test_statement_lines(self):
        program = parse_program("x = 1;\ny = 2;\n\nz = 3;")
        assert [stmt.line for stmt in program.body] == [1, 2, 4]

    def test_nested_statement_lines(self):
        program = parse_program("if (c)\n{\nx = 1;\n}")
        stmt = program.body[0]
        assert stmt.line == 1
        assert stmt.then_branch.stmts[0].line == 3
