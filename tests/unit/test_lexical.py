"""Unit tests for the lexical successor tree and structured-jump tests."""

import pytest

from repro.analysis.lexical import (
    build_lst,
    build_lst_syntactic,
    conflicting_pairs,
    is_structured_jump,
    is_structured_program,
    jump_conflicting_pairs,
    jump_target,
    unstructured_jump_ids,
)
from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg
from repro.corpus import PAPER_PROGRAMS
from repro.lang.parser import parse_program


def setup(source):
    program = parse_program(source)
    cfg = build_cfg(program)
    return program, cfg, build_lst(cfg)


class TestConstruction:
    def test_sequence_is_a_chain(self):
        _, cfg, lst = setup("x = 1;\ny = 2;\nz = 3;")
        assert lst.parent_of(1) == 2
        assert lst.parent_of(2) == 3
        assert lst.parent_of(3) == cfg.exit_id

    def test_if_branches_share_follow(self):
        _, cfg, lst = setup("if (c)\nx = 1;\nelse\ny = 2;\nz = 3;")
        assert lst.parent_of(1) == 4
        assert lst.parent_of(2) == 4
        assert lst.parent_of(3) == 4

    def test_last_of_loop_body_points_to_loop(self):
        _, cfg, lst = setup("while (c) {\nx = 1;\ny = 2;\n}\nz = 3;")
        assert lst.parent_of(3) == 1
        assert lst.parent_of(2) == 3
        assert lst.parent_of(1) == 4

    def test_do_while_body_points_to_test(self):
        _, cfg, lst = setup("do {\nx = 1;\n}\nwhile (c);\nz = 3;")
        # node 1 = body, node 2 = test, node 3 = z
        assert lst.parent_of(1) == 2
        assert lst.parent_of(2) == 3

    def test_for_step_and_init_point_to_test(self):
        _, cfg, lst = setup(
            "for (i = 0; i < 3; i = i + 1) {\nx = 1;\n}\nz = 3;"
        )
        # nodes: 1 init, 2 pred, 3 step, 4 body, 5 z
        assert lst.parent_of(1) == 2
        assert lst.parent_of(3) == 2
        assert lst.parent_of(4) == 3  # deleting body -> control to step
        assert lst.parent_of(2) == 5

    def test_switch_arms_fall_through(self):
        _, cfg, lst = setup(
            "switch (c) {\ncase 1: x = 1;\nbreak;\ncase 2: y = 2;\n}\nz = 3;"
        )
        # nodes: 1 switch, 2 x, 3 break, 4 y, 5 z
        assert lst.parent_of(2) == 3
        assert lst.parent_of(3) == 4  # break's successor is the next arm
        assert lst.parent_of(4) == 5
        assert lst.parent_of(1) == 5

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_syntactic_construction_agrees_on_corpus(self, name):
        program = parse_program(PAPER_PROGRAMS[name].source)
        cfg = build_cfg(program)
        wired = build_lst(cfg)
        syntactic = build_lst_syntactic(program, cfg)
        assert wired.as_parent_map() == syntactic.as_parent_map()

    def test_paper_fig4d_is_a_linear_chain(self):
        _, cfg, lst = setup(PAPER_PROGRAMS["fig3a"].source)
        for node_id in range(1, 16):
            assert lst.parent_of(node_id) == node_id + 1 or (
                node_id == 15 and lst.parent_of(node_id) == cfg.exit_id
            )


class TestStructuredJumps:
    def test_break_is_structured(self):
        _, cfg, lst = setup("while (c)\nbreak;")
        jump = cfg.jump_nodes()[0]
        assert is_structured_jump(cfg, lst, jump.id)

    def test_continue_is_structured(self):
        _, cfg, lst = setup("while (c)\ncontinue;")
        jump = cfg.jump_nodes()[0]
        assert is_structured_jump(cfg, lst, jump.id)

    def test_return_is_structured(self):
        _, cfg, lst = setup("return;\n")
        jump = cfg.jump_nodes()[0]
        assert is_structured_jump(cfg, lst, jump.id)

    def test_forward_goto_along_chain_is_structured(self):
        _, cfg, lst = setup("goto L;\nx = 1;\nL: y = 2;")
        jump = cfg.jump_nodes()[0]
        assert is_structured_jump(cfg, lst, jump.id)

    def test_backward_goto_is_unstructured(self):
        _, cfg, lst = setup("L: x = 1;\nif (c) goto L;")
        # The backward jump is fused into a CONDGOTO, so craft a plain
        # backward goto guarded to keep EXIT reachable.
        _, cfg, lst = setup("L: if (c) goto M;\ngoto L;\nM: y = 1;")
        goto_back = next(n for n in cfg.jump_nodes() if n.goto_target == "L")
        assert not is_structured_jump(cfg, lst, goto_back.id)

    def test_goto_into_sibling_branch_is_unstructured(self):
        _, cfg, lst = setup(PAPER_PROGRAMS["fig10a"].source)
        goto_l3 = next(n for n in cfg.jump_nodes() if n.goto_target == "L3")
        assert not is_structured_jump(cfg, lst, goto_l3.id)

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_corpus_structured_flags(self, name):
        entry = PAPER_PROGRAMS[name]
        cfg = build_cfg(parse_program(entry.source))
        assert is_structured_program(cfg) == entry.structured

    def test_jump_target_rejects_non_jumps(self):
        _, cfg, _ = setup("x = 1;")
        with pytest.raises(ValueError):
            jump_target(cfg, 1)

    def test_backward_condgoto_makes_program_unstructured(self):
        # Regression: the gate once looked only at unconditional jumps,
        # so a program whose sole unstructured jump was a fused
        # conditional goto slipped past it (and the Fig. 12 slicer then
        # produced a semantically wrong slice — caught by the slice
        # verifier sweep).
        _, cfg, _ = setup("read(x);\nL: x = x - 1;\nif (x > 0) goto L;\nwrite(x);")
        assert not cfg.jump_nodes()  # fused: no unconditional jumps
        assert unstructured_jump_ids(cfg)
        assert not is_structured_program(cfg)

    def test_forward_condgoto_is_structured(self):
        _, cfg, _ = setup("read(x);\nif (x > 0) goto L;\nx = 1;\nL: write(x);")
        assert unstructured_jump_ids(cfg) == []
        assert is_structured_program(cfg)


class TestConflictingPairs:
    def test_fig10_has_the_papers_pair(self):
        program = parse_program(PAPER_PROGRAMS["fig10a"].source)
        cfg = build_cfg(program)
        pdt = build_postdominator_tree(cfg)
        lst = build_lst(cfg)
        pairs = jump_conflicting_pairs(cfg, pdt, lst)
        # "Whereas node 4 postdominates node 7, node 7 lexically
        # succeeds node 4" (§3).
        assert (4, 7) in pairs

    @pytest.mark.parametrize("name", ["fig3a", "fig8a"])
    def test_figs_3_and_8_have_none(self, name):
        program = parse_program(PAPER_PROGRAMS[name].source)
        cfg = build_cfg(program)
        pdt = build_postdominator_tree(cfg)
        lst = build_lst(cfg)
        assert jump_conflicting_pairs(cfg, pdt, lst) == []

    @pytest.mark.parametrize(
        "name", [n for n in sorted(PAPER_PROGRAMS) if PAPER_PROGRAMS[n].structured]
    )
    def test_property_1_structured_programs_have_none(self, name):
        program = parse_program(PAPER_PROGRAMS[name].source)
        cfg = build_cfg(program)
        pdt = build_postdominator_tree(cfg)
        lst = build_lst(cfg)
        assert jump_conflicting_pairs(cfg, pdt, lst) == []

    def test_unrestricted_query_is_a_superset(self):
        program = parse_program(PAPER_PROGRAMS["fig10a"].source)
        cfg = build_cfg(program)
        pdt = build_postdominator_tree(cfg)
        lst = build_lst(cfg)
        unrestricted = set(conflicting_pairs(pdt, lst))
        jumps_only = set(jump_conflicting_pairs(cfg, pdt, lst))
        assert jumps_only <= unrestricted
