"""Unit tests for SliceResult, nearest-in-slice, and label re-association."""

import pytest

from repro.analysis.tree import Tree
from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.common import nearest_in_slice, reassociate_labels
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion


class TestNearestInSlice:
    def setup_method(self):
        #   3 <- 2 <- 1 <- 0 (parent chain towards root 3)
        self.tree = Tree({0: 1, 1: 2, 2: 3}, root=3)

    def test_picks_nearest_member(self):
        assert nearest_in_slice(self.tree, 0, {1, 2}, exit_id=3) == 1

    def test_skips_non_members(self):
        assert nearest_in_slice(self.tree, 0, {2}, exit_id=3) == 2

    def test_exit_always_counts(self):
        assert nearest_in_slice(self.tree, 0, set(), exit_id=3) == 3

    def test_self_not_considered(self):
        assert nearest_in_slice(self.tree, 1, {1}, exit_id=3) == 3


class TestReassociation:
    def test_dangling_label_mapped_to_postdominator(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        criterion = SlicingCriterion(15, "positives")
        result = agrawal_slice(analysis, criterion)
        assert result.label_map == {"L14": 15}

    def test_label_in_slice_not_reassociated(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        criterion = SlicingCriterion(15, "positives")
        result = agrawal_slice(analysis, criterion)
        assert "L8" not in result.label_map
        assert "L3" not in result.label_map

    def test_direct_call(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig8a"].source)
        result = agrawal_slice(analysis, SlicingCriterion(15, "positives"))
        mapping = reassociate_labels(analysis, result.nodes)
        assert mapping == {"L14": 15, "L12": 13}


class TestSliceResult:
    @pytest.fixture
    def result(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        return agrawal_slice(analysis, SlicingCriterion(15, "positives"))

    def test_statement_nodes_strips_entry(self, result):
        assert result.analysis.cfg.entry_id not in result.statement_nodes()
        assert result.analysis.cfg.entry_id in result.nodes

    def test_lines(self, result):
        assert result.lines() == [2, 3, 4, 5, 7, 8, 13, 15]

    def test_contains(self, result):
        assert 13 in result
        assert 11 not in result

    def test_jump_nodes(self, result):
        assert result.jump_nodes() == [7, 13]

    def test_same_statements_as(self, result):
        other = agrawal_slice(
            result.analysis, SlicingCriterion(15, "positives")
        )
        assert result.same_statements_as(other)
        conv = conventional_slice(
            result.analysis, SlicingCriterion(15, "positives")
        )
        assert not result.same_statements_as(conv)

    def test_describe_mentions_algorithm_and_labels(self, result):
        text = result.describe()
        assert "agrawal" in text
        assert "L14" in text
        assert "positives" in text

    def test_criterion_accessor(self, result):
        assert result.criterion.line == 15
        assert result.criterion.var == "positives"
