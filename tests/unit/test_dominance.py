"""Unit tests for the dominator computations (iterative and
Lengauer–Tarjan), cross-checked against each other and networkx."""

import random

import networkx as nx
import pytest

from repro.analysis.dominance import immediate_dominators
from repro.analysis.lengauer_tarjan import lengauer_tarjan


def adjacency(edges, nodes=None):
    node_set = set(nodes or [])
    for src, dst in edges:
        node_set.add(src)
        node_set.add(dst)
    succ = {node: [] for node in node_set}
    pred = {node: [] for node in node_set}
    for src, dst in edges:
        succ[src].append(dst)
        pred[dst].append(src)
    return succ, pred


def networkx_idom(edges, root):
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    graph.add_node(root)
    idom = dict(nx.immediate_dominators(graph, root))
    # Some networkx versions omit the root's self-entry; normalise.
    idom[root] = root
    return idom


BOTH = [immediate_dominators, lengauer_tarjan]


@pytest.mark.parametrize("compute", BOTH)
class TestSmallGraphs:
    def test_chain(self, compute):
        succ, pred = adjacency([(0, 1), (1, 2), (2, 3)])
        assert compute(succ, pred, 0) == {0: 0, 1: 0, 2: 1, 3: 2}

    def test_diamond(self, compute):
        succ, pred = adjacency([(0, 1), (0, 2), (1, 3), (2, 3)])
        idom = compute(succ, pred, 0)
        assert idom[3] == 0
        assert idom[1] == 0 and idom[2] == 0

    def test_loop(self, compute):
        succ, pred = adjacency([(0, 1), (1, 2), (2, 1), (1, 3)])
        idom = compute(succ, pred, 0)
        assert idom == {0: 0, 1: 0, 2: 1, 3: 1}

    def test_unreachable_node_absent(self, compute):
        succ, pred = adjacency([(0, 1)], nodes=[0, 1, 9])
        idom = compute(succ, pred, 0)
        assert 9 not in idom

    def test_self_loop(self, compute):
        succ, pred = adjacency([(0, 1), (1, 1), (1, 2)])
        idom = compute(succ, pred, 0)
        assert idom[1] == 0 and idom[2] == 1

    def test_parallel_edges(self, compute):
        succ, pred = adjacency([(0, 1), (0, 1), (1, 2)])
        assert compute(succ, pred, 0)[2] == 1

    def test_single_node(self, compute):
        succ, pred = adjacency([], nodes=[0])
        assert compute(succ, pred, 0) == {0: 0}

    def test_classic_lengauer_tarjan_figure(self, compute):
        # The irreducible example from the Lengauer–Tarjan paper.
        edges = [
            ("R", "A"), ("R", "B"), ("R", "C"), ("A", "D"), ("B", "A"),
            ("B", "D"), ("B", "E"), ("C", "F"), ("C", "G"), ("D", "L"),
            ("E", "H"), ("F", "I"), ("G", "I"), ("G", "J"), ("H", "E"),
            ("H", "K"), ("I", "K"), ("J", "I"), ("K", "I"), ("K", "R"),
            ("L", "H"),
        ]
        index = {name: i for i, name in enumerate("RABCDEFGHIJKL")}
        succ, pred = adjacency([(index[a], index[b]) for a, b in edges])
        idom = compute(succ, pred, index["R"])
        expected = {
            "A": "R", "B": "R", "C": "R", "D": "R", "E": "R", "F": "C",
            "G": "C", "H": "R", "I": "R", "J": "G", "K": "R", "L": "D",
        }
        for node, dominator in expected.items():
            assert idom[index[node]] == index[dominator], node


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_digraphs_match_each_other_and_networkx(self, seed):
        rng = random.Random(seed)
        node_count = rng.randint(2, 40)
        nodes = list(range(node_count))
        edges = []
        # A random spine guarantees some reachability, plus random noise.
        for index in range(1, node_count):
            edges.append((rng.randrange(index), index))
        for _ in range(rng.randint(0, 3 * node_count)):
            edges.append((rng.randrange(node_count), rng.randrange(node_count)))
        succ, pred = adjacency(edges, nodes=nodes)
        iterative = immediate_dominators(succ, pred, 0)
        tarjan = lengauer_tarjan(succ, pred, 0)
        reference = networkx_idom(edges, 0)
        assert iterative == tarjan
        assert iterative == reference

    @pytest.mark.parametrize("seed", range(10))
    def test_sparse_dags(self, seed):
        rng = random.Random(1000 + seed)
        node_count = rng.randint(2, 30)
        edges = [
            (src, dst)
            for src in range(node_count)
            for dst in range(src + 1, node_count)
            if rng.random() < 0.15
        ]
        edges += [(0, dst) for dst in range(1, node_count)]
        succ, pred = adjacency(edges, nodes=range(node_count))
        assert immediate_dominators(succ, pred, 0) == lengauer_tarjan(
            succ, pred, 0
        )
