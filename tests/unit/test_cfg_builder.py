"""Unit tests for CFG construction."""

import pytest

from repro.cfg.builder import INPUT_CURSOR, build_cfg
from repro.cfg.graph import EdgeLabel, NodeKind
from repro.lang.errors import ValidationError
from repro.lang.parser import parse_program


def cfg_of(source, **kwargs):
    return build_cfg(parse_program(source), **kwargs)


def kinds(cfg):
    return [node.kind for node in cfg.sorted_nodes()]


def edge_set(cfg):
    return set(cfg.edges())


class TestNodeCreation:
    def test_entry_is_node_zero_exit_is_last(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        assert cfg.entry_id == 0
        assert cfg.exit_id == len(cfg) - 1
        assert cfg.entry.kind is NodeKind.ENTRY
        assert cfg.exit.kind is NodeKind.EXIT

    def test_lexical_numbering(self):
        cfg = cfg_of("x = 1;\nif (x)\ny = 2;\nz = 3;")
        texts = [cfg.nodes[i].text for i in range(1, 4 + 1)]
        assert texts == ["x = 1", "if (x)", "y = 2", "z = 3"]

    def test_node_lines_match_source(self):
        cfg = cfg_of("x = 1;\n\ny = 2;")
        lines = [node.line for node in cfg.statement_nodes()]
        assert lines == [1, 3]

    def test_block_has_no_node(self):
        cfg = cfg_of("{ x = 1; }")
        assert len(cfg.statement_nodes()) == 1

    def test_do_while_test_node_follows_body_lexically(self):
        cfg = cfg_of("do\nx = 1;\nwhile (c);")
        body, test = cfg.statement_nodes()
        assert body.kind is NodeKind.ASSIGN
        assert test.kind is NodeKind.PREDICATE
        assert body.id < test.id


class TestCondGotoFusion:
    def test_fusion_applies(self):
        cfg = cfg_of("if (eof()) goto L; L: x = 1;")
        node = cfg.statement_nodes()[0]
        assert node.kind is NodeKind.CONDGOTO
        assert node.goto_target == "L"

    def test_fused_node_has_true_and_false_edges(self):
        cfg = cfg_of("if (eof()) goto L; y = 2; L: x = 1;")
        node_id = cfg.statement_nodes()[0].id
        labels = {label for _, label in cfg.successors(node_id)}
        assert labels == {EdgeLabel.TRUE, EdgeLabel.FALSE}

    def test_no_fusion_with_else(self):
        cfg = cfg_of("if (c) goto L; else x = 2; L: x = 1;")
        assert cfg.statement_nodes()[0].kind is NodeKind.PREDICATE

    def test_no_fusion_with_block_body(self):
        cfg = cfg_of("if (c) { goto L; } L: x = 1;")
        assert cfg.statement_nodes()[0].kind is NodeKind.PREDICATE

    def test_fusion_disabled(self):
        cfg = cfg_of("if (c) goto L; L: x = 1;", fuse_cond_goto=False)
        first = cfg.statement_nodes()[0]
        assert first.kind is NodeKind.PREDICATE
        assert cfg.statement_nodes()[1].kind is NodeKind.GOTO

    def test_both_statements_map_to_fused_node(self):
        program = parse_program("if (c) goto L; L: x = 1;")
        cfg = build_cfg(program)
        if_stmt = program.body[0]
        assert cfg.node_of(if_stmt) == cfg.node_of(if_stmt.then_branch)


class TestEdges:
    def test_straight_line(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        assert (0, 1, EdgeLabel.TRUE) in edge_set(cfg)
        assert (1, 2, EdgeLabel.FALL) in edge_set(cfg)
        assert (2, 3, EdgeLabel.FALL) in edge_set(cfg)

    def test_if_branches_rejoin(self):
        cfg = cfg_of("if (c)\nx = 1;\nelse\ny = 2;\nz = 3;")
        edges = edge_set(cfg)
        assert (1, 2, EdgeLabel.TRUE) in edges
        assert (1, 3, EdgeLabel.FALSE) in edges
        assert (2, 4, EdgeLabel.FALL) in edges
        assert (3, 4, EdgeLabel.FALL) in edges

    def test_if_without_else_false_edge_falls_through(self):
        cfg = cfg_of("if (c)\nx = 1;\nz = 3;")
        assert (1, 3, EdgeLabel.FALSE) in edge_set(cfg)

    def test_while_back_edge_and_exit(self):
        cfg = cfg_of("while (c)\nx = 1;\ny = 2;")
        edges = edge_set(cfg)
        assert (1, 2, EdgeLabel.TRUE) in edges
        assert (1, 3, EdgeLabel.FALSE) in edges
        assert (2, 1, EdgeLabel.FALL) in edges

    def test_do_while_executes_body_first(self):
        cfg = cfg_of("do\nx = 1;\nwhile (c);\ny = 2;")
        edges = edge_set(cfg)
        # ENTRY -> body (1), body -> test (2), test -true-> body,
        # test -false-> next (3).
        assert (0, 1, EdgeLabel.TRUE) in edges
        assert (1, 2, EdgeLabel.FALL) in edges
        assert (2, 1, EdgeLabel.TRUE) in edges
        assert (2, 3, EdgeLabel.FALSE) in edges

    def test_for_wiring(self):
        cfg = cfg_of("for (i = 0; i < 3; i = i + 1)\nx = x + i;\ny = 1;")
        # Nodes: 1 init, 2 pred, 3 step, 4 body, 5 after.
        edges = edge_set(cfg)
        assert (1, 2, EdgeLabel.FALL) in edges  # init -> pred
        assert (2, 4, EdgeLabel.TRUE) in edges  # pred -> body
        assert (2, 5, EdgeLabel.FALSE) in edges  # pred -> after
        assert (4, 3, EdgeLabel.FALL) in edges  # body -> step
        assert (3, 2, EdgeLabel.FALL) in edges  # step -> pred

    def test_break_targets_after_loop(self):
        cfg = cfg_of("while (c) {\nbreak;\n}\ny = 1;")
        break_node = next(
            n for n in cfg.statement_nodes() if n.kind is NodeKind.BREAK
        )
        after = next(n for n in cfg.statement_nodes() if n.text == "y = 1")
        assert (break_node.id, after.id, EdgeLabel.JUMP) in edge_set(cfg)

    def test_continue_targets_loop_test(self):
        cfg = cfg_of("while (c) {\ncontinue;\n}")
        cont = next(
            n for n in cfg.statement_nodes() if n.kind is NodeKind.CONTINUE
        )
        assert (cont.id, 1, EdgeLabel.JUMP) in edge_set(cfg)

    def test_continue_in_for_targets_step(self):
        cfg = cfg_of("for (i = 0; i < 3; i = i + 1) {\ncontinue;\n}")
        cont = next(
            n for n in cfg.statement_nodes() if n.kind is NodeKind.CONTINUE
        )
        step = next(n for n in cfg.statement_nodes() if n.text == "i = i + 1")
        assert (cont.id, step.id, EdgeLabel.JUMP) in edge_set(cfg)

    def test_return_targets_exit(self):
        cfg = cfg_of("return 1;\nx = 2;")
        ret = cfg.statement_nodes()[0]
        assert (ret.id, cfg.exit_id, EdgeLabel.JUMP) in edge_set(cfg)

    def test_goto_resolves_forward_and_backward(self):
        cfg = cfg_of("A: x = 1;\ngoto B;\ngoto A;\nB: y = 2;")
        edges = edge_set(cfg)
        assert (2, 4, EdgeLabel.JUMP) in edges
        assert (3, 1, EdgeLabel.JUMP) in edges


class TestSwitchWiring:
    SOURCE = (
        "switch (c) {\n"
        "case 1: x = 1;\n"
        "break;\n"
        "case 2: y = 2;\n"
        "case 3: z = 3;\n"
        "}\n"
        "w = 4;"
    )

    def test_case_edges(self):
        cfg = cfg_of(self.SOURCE)
        edges = edge_set(cfg)
        assert (1, 2, "case 1") in edges
        assert (1, 4, "case 2") in edges
        assert (1, 5, "case 3") in edges

    def test_missing_default_goes_past_switch(self):
        cfg = cfg_of(self.SOURCE)
        assert (1, 6, EdgeLabel.DEFAULT) in edge_set(cfg)

    def test_fall_through_between_arms(self):
        cfg = cfg_of(self.SOURCE)
        assert (4, 5, EdgeLabel.FALL) in edge_set(cfg)

    def test_break_leaves_switch(self):
        cfg = cfg_of(self.SOURCE)
        assert (3, 6, EdgeLabel.JUMP) in edge_set(cfg)

    def test_default_edge_to_default_arm(self):
        cfg = cfg_of("switch (c) { default: x = 1; }\ny = 2;")
        assert (1, 2, EdgeLabel.DEFAULT) in edge_set(cfg)

    def test_empty_arm_falls_into_next(self):
        cfg = cfg_of("switch (c) { case 1: case 2: x = 1; }\ny = 2;")
        edges = edge_set(cfg)
        assert (1, 2, "case 1") in edges
        assert (1, 2, "case 2") in edges


class TestDefsUses:
    def test_assign(self):
        cfg = cfg_of("x = y + z;")
        node = cfg.statement_nodes()[0]
        assert node.defs == {"x"}
        assert node.uses == {"y", "z"}

    def test_read_chains_input_cursor(self):
        cfg = cfg_of("read(x);")
        node = cfg.statement_nodes()[0]
        assert node.defs == {"x", INPUT_CURSOR}
        assert node.uses == {INPUT_CURSOR}

    def test_read_without_chaining(self):
        cfg = cfg_of("read(x);", chain_io=False)
        node = cfg.statement_nodes()[0]
        assert node.defs == {"x"}
        assert node.uses == set()

    def test_eof_uses_cursor(self):
        cfg = cfg_of("while (!eof()) read(x);")
        pred = cfg.statement_nodes()[0]
        assert INPUT_CURSOR in pred.uses

    def test_write_uses(self):
        cfg = cfg_of("write(a + b);")
        assert cfg.statement_nodes()[0].uses == {"a", "b"}

    def test_return_uses(self):
        cfg = cfg_of("return a * 2;")
        assert cfg.statement_nodes()[0].uses == {"a"}

    def test_jump_has_no_defs_or_uses(self):
        cfg = cfg_of("while (c) break;")
        brk = next(
            n for n in cfg.statement_nodes() if n.kind is NodeKind.BREAK
        )
        assert brk.defs == frozenset() and brk.uses == frozenset()


class TestLexicalParents:
    def test_sequence(self):
        cfg = cfg_of("x = 1;\ny = 2;\nz = 3;")
        assert cfg.lexical_parent[1] == 2
        assert cfg.lexical_parent[2] == 3
        assert cfg.lexical_parent[3] == cfg.exit_id

    def test_last_of_while_body_points_to_loop(self):
        cfg = cfg_of("while (c) {\nx = 1;\ny = 2;\n}\nz = 3;")
        # nodes: 1 while, 2 x, 3 y, 4 z
        assert cfg.lexical_parent[3] == 1
        assert cfg.lexical_parent[1] == 4

    def test_then_branch_tail_points_past_if(self):
        cfg = cfg_of("if (c) {\nx = 1;\n}\ny = 2;")
        assert cfg.lexical_parent[2] == 3


class TestValidationHook:
    def test_invalid_program_rejected(self):
        with pytest.raises(ValidationError):
            cfg_of("goto nowhere;")

    def test_misplaced_break_rejected(self):
        with pytest.raises(ValidationError):
            cfg_of("break;")


class TestUnreachable:
    def test_dead_code_detected(self):
        cfg = cfg_of("return;\nx = 1;")
        dead = cfg.unreachable_statements()
        assert [node.text for node in dead] == ["x = 1"]

    def test_live_program_has_none(self):
        cfg = cfg_of("if (c) return;\nx = 1;")
        assert cfg.unreachable_statements() == []
