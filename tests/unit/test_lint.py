"""Unit tests for the ``slang check`` rule engine (SL1xx rules plus the
driver's parsing, filtering, and report shaping)."""

from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    count_by_code,
    filter_diagnostics,
    severity_counts,
    sort_diagnostics,
)
from repro.lint.rules import RULES, run_lint


def codes(source, **kwargs):
    return [d.code for d in run_lint(source, **kwargs).diagnostics]


class TestDriver:
    def test_clean_program(self):
        report = run_lint("read(x);\nwrite(x);\n")
        assert report.clean
        assert not report.has_errors
        assert report.format_text() == "no diagnostics"

    def test_syntax_error_becomes_sl001(self):
        report = run_lint("read(")
        assert [d.code for d in report.diagnostics] == ["SL001"]
        assert report.has_errors
        assert report.diagnostics[0].severity is Severity.ERROR

    def test_validation_errors_suppress_analysis_rules(self):
        # An undefined goto target means no CFG can be built; the
        # report must carry only the SL0xx finding, not a traceback.
        report = run_lint("goto nowhere;\nx = 1;\n")
        assert [d.code for d in report.diagnostics] == ["SL003"]

    def test_select_and_ignore_prefixes(self):
        source = "read(x);\ny = 1;\nif (x > 0) goto L;\nz = 2;\nL: write(x);\n"
        all_codes = set(codes(source))
        assert "SL108" in all_codes
        assert codes(source, select=["SL108"]) == ["SL108", "SL108"]
        assert "SL108" not in codes(source, ignore=["SL108"])
        assert codes(source, select=["SL9"]) == []

    def test_payload_shape_is_stable(self):
        payload = run_lint("read(x);\nwrite(x);\n").payload()
        assert set(payload) == {"clean", "counts", "summary", "diagnostics"}
        assert payload["clean"] is True
        assert payload["summary"] == {"error": 0, "warning": 0, "info": 0}

    def test_diagnostics_sorted_by_position(self):
        report = run_lint("y = 5;\nread(x);\nz = y;\nwrite(x);\n")
        lines = [d.line for d in report.diagnostics]
        assert lines == sorted(lines)

    def test_registry_covers_the_documented_code_space(self):
        assert set(RULES) == {
            "SL101", "SL102", "SL103", "SL104",
            "SL105", "SL106", "SL107", "SL108",
        }
        for code, registered in RULES.items():
            assert registered.code == code
            assert registered.name
            assert registered.summary


class TestRules:
    def test_sl101_unreachable_code(self):
        source = "read(x);\ngoto L;\nx = x + 1;\nL: write(x);\n"
        report = run_lint(source, select=["SL101"])
        assert [d.line for d in report.diagnostics] == [3]

    def test_sl101_reports_one_head_per_dead_run(self):
        source = (
            "read(x);\ngoto L;\n"
            "x = x + 1;\nx = x + 2;\nx = x + 3;\n"
            "L: write(x);\n"
        )
        report = run_lint(source, select=["SL101"])
        assert len(report.diagnostics) == 1
        assert report.diagnostics[0].line == 3

    def test_sl102_dead_store(self):
        source = "read(x);\nx = 1;\nx = 2;\nwrite(x);\n"
        report = run_lint(source, select=["SL102"])
        assert [d.line for d in report.diagnostics] == [2]

    def test_sl102_not_raised_when_value_used(self):
        source = "read(x);\nx = x + 1;\nwrite(x);\n"
        assert run_lint(source, select=["SL102"]).clean

    def test_sl103_maybe_uninitialized(self):
        source = "write(x);\n"
        report = run_lint(source, select=["SL103"])
        assert [d.line for d in report.diagnostics] == [1]
        assert "'x'" in report.diagnostics[0].message

    def test_sl103_quiet_after_read(self):
        assert run_lint("read(x);\nwrite(x);\n", select=["SL103"]).clean

    def test_sl103_path_sensitive_join(self):
        # x is initialised on only one branch: still maybe-uninitialized.
        source = "read(c);\nif (c > 0) x = 1;\nwrite(x);\n"
        report = run_lint(source, select=["SL103"])
        assert [d.line for d in report.diagnostics] == [3]

    def test_sl104_unused_label(self):
        source = "read(x);\nL: write(x);\n"
        report = run_lint(source, select=["SL104"])
        assert [d.line for d in report.diagnostics] == [2]

    def test_sl104_quiet_when_targeted(self):
        source = "read(x);\ngoto L;\nL: write(x);\n"
        assert run_lint(source, select=["SL104"]).clean

    def test_sl105_backward_goto(self):
        source = "read(x);\nL: x = x - 1;\nif (x > 0) goto L;\nwrite(x);\n"
        report = run_lint(source, select=["SL105"])
        assert [d.line for d in report.diagnostics] == [3]
        assert report.diagnostics[0].severity is Severity.INFO

    def test_sl105_forward_goto_is_structured(self):
        source = "read(x);\nif (x > 0) goto L;\nx = 1;\nL: write(x);\n"
        assert run_lint(source, select=["SL105"]).clean

    def test_sl106_constant_condition(self):
        source = "read(x);\nif (1 < 2) x = 1;\nwrite(x);\n"
        report = run_lint(source, select=["SL106"])
        assert [d.line for d in report.diagnostics] == [2]

    def test_sl106_for_without_condition_is_idiomatic(self):
        source = "read(x);\nfor (;;) { break; }\nwrite(x);\n"
        assert run_lint(source, select=["SL106"]).clean

    def test_sl106_division_by_zero_not_folded(self):
        source = "read(x);\nif (1 / 0) x = 1;\nwrite(x);\n"
        assert run_lint(source, select=["SL106"]).clean

    def test_sl106_constant_switch_subject(self):
        source = "switch (2 + 1) { case 3: x = 1; }\nwrite(x);\n"
        report = run_lint(source, select=["SL106"])
        assert [d.line for d in report.diagnostics] == [1]

    def test_sl107_no_reachable_exit(self):
        # Structurally stuck: a goto cycle with no edge leaving it
        # (a semantically infinite `while (1 > 0)` still has a false
        # edge in the CFG — that is SL106's finding, not SL107's).
        source = "read(x);\nL: x = x + 1;\ngoto L;\nwrite(x);\n"
        report = run_lint(source, select=["SL107"])
        assert report.diagnostics
        assert all(d.code == "SL107" for d in report.diagnostics)

    def test_sl107_quiet_with_break(self):
        source = "read(x);\nwhile (1 > 0) { break; }\nwrite(x);\n"
        assert run_lint(source, select=["SL107"]).clean

    def test_sl108_never_read(self):
        source = "read(x);\ny = x;\nwrite(x);\n"
        report = run_lint(source, select=["SL108"])
        assert [d.line for d in report.diagnostics] == [2]
        assert "'y'" in report.diagnostics[0].message

    def test_sl108_suppresses_sl102_for_the_same_variable(self):
        # A never-read variable is one finding (SL108), not a dead-store
        # report on every assignment to it.
        source = "read(x);\ny = 1;\ny = 2;\nwrite(x);\n"
        report = run_lint(source, select=["SL102", "SL108"])
        assert [d.code for d in report.diagnostics] == ["SL108"]


class TestDiagnosticModel:
    def _diag(self, **kwargs):
        defaults = dict(
            code="SL101",
            severity=Severity.WARNING,
            line=3,
            message="m",
            rule="unreachable-code",
        )
        defaults.update(kwargs)
        return Diagnostic(**defaults)

    def test_to_dict_has_every_key(self):
        payload = self._diag().to_dict()
        assert set(payload) == {
            "code", "severity", "line", "column", "message", "rule", "hint",
        }
        assert payload["severity"] == "warning"
        assert payload["column"] is None

    def test_format_includes_position_code_and_hint(self):
        text = self._diag(column=7, hint="fix it").format()
        assert text.startswith("line 3:7: warning SL101 [unreachable-code]:")
        assert "hint: fix it" in text

    def test_sort_by_position_then_severity(self):
        late = self._diag(line=9)
        early_info = self._diag(line=2, severity=Severity.INFO, code="SL105")
        early_error = self._diag(line=2, severity=Severity.ERROR, code="SL201")
        ordered = sort_diagnostics([late, early_info, early_error])
        assert [d.code for d in ordered] == ["SL201", "SL105", "SL101"]

    def test_counters(self):
        diags = [
            self._diag(),
            self._diag(line=4),
            self._diag(code="SL105", severity=Severity.INFO),
        ]
        assert count_by_code(diags) == {"SL101": 2, "SL105": 1}
        assert severity_counts(diags) == {"error": 0, "warning": 2, "info": 1}

    def test_filter_select_then_ignore(self):
        diags = [self._diag(), self._diag(code="SL105")]
        assert [
            d.code for d in filter_diagnostics(diags, select=["SL10"])
        ] == ["SL101", "SL105"]
        assert [
            d.code
            for d in filter_diagnostics(diags, select=["SL10"], ignore=["SL105"])
        ] == ["SL101"]
