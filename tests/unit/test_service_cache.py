"""Unit tests for the content-addressed analysis cache."""

import threading

from repro.corpus import PAPER_PROGRAMS
from repro.service.cache import AnalysisCache, analysis_key

FIG3A = PAPER_PROGRAMS["fig3a"].source
FIG5A = PAPER_PROGRAMS["fig5a"].source


class TestContentAddressing:
    def test_same_source_same_key(self):
        assert analysis_key(FIG3A) == analysis_key(FIG3A)

    def test_different_source_different_key(self):
        assert analysis_key(FIG3A) != analysis_key(FIG5A)

    def test_options_change_the_key(self):
        assert analysis_key(FIG3A) != analysis_key(FIG3A, fuse_cond_goto=False)
        assert analysis_key(FIG3A) != analysis_key(FIG3A, chain_io=False)
        assert analysis_key(FIG3A) != analysis_key(
            FIG3A, dominator_algorithm="lengauer-tarjan"
        )


class TestHitsAndMisses:
    def test_second_build_is_a_hit_returning_the_same_object(self):
        cache = AnalysisCache(capacity=4)
        first = cache.get_or_build(FIG3A)
        second = cache.get_or_build(FIG3A)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_stats_shape(self):
        cache = AnalysisCache(capacity=4)
        cache.get_or_build(FIG3A)
        cache.get_or_build(FIG3A)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == 0.5

    def test_zero_capacity_disables_caching(self):
        cache = AnalysisCache(capacity=0)
        first = cache.get_or_build(FIG3A)
        second = cache.get_or_build(FIG3A)
        assert first is not second
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = AnalysisCache(capacity=2)
        fig10a = PAPER_PROGRAMS["fig10a"].source
        cache.get_or_build(FIG3A)
        cache.get_or_build(FIG5A)
        cache.get_or_build(FIG3A)  # refresh fig3a; fig5a is now LRU
        cache.get_or_build(fig10a)  # evicts fig5a
        assert cache.evictions == 1
        assert cache.get(analysis_key(FIG5A)) is None
        assert cache.get(analysis_key(FIG3A)) is not None

    def test_clear(self):
        cache = AnalysisCache(capacity=2)
        cache.get_or_build(FIG3A)
        cache.clear()
        assert len(cache) == 0


class TestPrewarm:
    def test_prewarm_freezes_lazy_fields(self):
        cache = AnalysisCache(capacity=2, prewarm=True)
        analysis = cache.get_or_build(FIG3A)
        assert analysis._augmented_cfg is not None
        assert analysis._augmented_pdg is not None
        assert analysis.reaching is not None


class TestThreadSafety:
    def test_concurrent_get_or_build_yields_one_winner(self):
        cache = AnalysisCache(capacity=8)
        results = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            results.append(cache.get_or_build(FIG3A))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 1
        winner = cache.get(analysis_key(FIG3A))
        # Racing builders may each have built, but every *cached* lookup
        # from here on serves one object.
        assert winner is not None
        assert cache.get(analysis_key(FIG3A)) is winner


# ----------------------------------------------------------------------
# Slice-level memoization (SliceCacheStats / SliceMemo / engine wiring)
# ----------------------------------------------------------------------

from repro.service.cache import SliceCacheStats, SliceMemo  # noqa: E402


class TestSliceCacheStats:
    def test_counters_and_hit_rate(self):
        stats = SliceCacheStats()
        stats.record(hit=False)
        stats.record(hit=True)
        stats.record(hit=True)
        stats.record_eviction()
        snapshot = stats.stats()
        assert snapshot == {
            "hits": 2,
            "misses": 1,
            "evictions": 1,
            "hit_rate": round(2 / 3, 4),
        }

    def test_empty_hit_rate_is_zero(self):
        assert SliceCacheStats().stats()["hit_rate"] == 0.0

    def test_reset(self):
        stats = SliceCacheStats()
        stats.record(hit=True)
        stats.record_eviction()
        stats.reset()
        assert stats.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "hit_rate": 0.0,
        }


class TestSliceMemo:
    KEY = ("agrawal", 5, "x")

    def test_miss_then_hit_same_object(self):
        stats = SliceCacheStats()
        memo = SliceMemo(4, stats)
        assert memo.get(self.KEY) is None
        sentinel = object()
        memo.put(self.KEY, sentinel)
        assert memo.get(self.KEY) is sentinel
        assert stats.stats()["hits"] == 1
        assert stats.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        stats = SliceCacheStats()
        memo = SliceMemo(2, stats)
        a, b, c = ("a", 1, "x"), ("b", 2, "y"), ("c", 3, "z")
        memo.put(a, "A")
        memo.put(b, "B")
        memo.get(a)  # refresh a; b is now LRU
        memo.put(c, "C")  # evicts b
        assert memo.get(b) is None
        assert memo.get(a) == "A"
        assert memo.get(c) == "C"
        assert stats.stats()["evictions"] == 1
        assert len(memo) == 2

    def test_zero_capacity_stores_nothing(self):
        memo = SliceMemo(0)
        memo.put(self.KEY, "value")
        assert memo.get(self.KEY) is None
        assert len(memo) == 0

    def test_works_without_shared_stats(self):
        memo = SliceMemo(2)
        memo.put(self.KEY, "value")
        assert memo.get(self.KEY) == "value"


class TestEngineSliceMemoWiring:
    def test_repeat_slice_is_a_hit_returning_the_same_result(self):
        from repro.service.engine import SlicingEngine

        with SlicingEngine(workers=1) as engine:
            analysis = engine.analysis_for(FIG3A)
            criterion = analysis.cfg.statement_nodes()[-1]
            line = criterion.line
            var = sorted(criterion.uses | criterion.defs)[0]
            first = engine.slice_cached(analysis, line, var, "agrawal")
            second = engine.slice_cached(analysis, line, var, "agrawal")
            assert first is second
            snapshot = engine.slice_cache_stats.stats()
            assert snapshot["hits"] == 1
            assert snapshot["misses"] == 1
            payload = engine.stats_payload()
            assert payload["slice_cache"]["hits"] == 1

    def test_memo_is_per_analysis_and_per_algorithm(self):
        from repro.service.engine import SlicingEngine

        with SlicingEngine(workers=1) as engine:
            analysis = engine.analysis_for(FIG3A)
            node = analysis.cfg.statement_nodes()[-1]
            var = sorted(node.uses | node.defs)[0]
            a = engine.slice_cached(analysis, node.line, var, "agrawal")
            b = engine.slice_cached(analysis, node.line, var, "weiser")
            assert a is not b
            assert engine.slice_cache_stats.stats()["misses"] == 2

    def test_slice_cache_counters_reach_prometheus(self):
        from repro.obs.prom import parse_prometheus, render_prometheus
        from repro.service.engine import SlicingEngine

        with SlicingEngine(workers=1) as engine:
            analysis = engine.analysis_for(FIG3A)
            node = analysis.cfg.statement_nodes()[-1]
            var = sorted(node.uses | node.defs)[0]
            engine.slice_cached(analysis, node.line, var, "agrawal")
            engine.slice_cached(analysis, node.line, var, "agrawal")
            metrics = parse_prometheus(
                render_prometheus(engine.stats_payload())
            )
        assert metrics["slang_slice_cache_hits_total"][()] == 1.0
        assert metrics["slang_slice_cache_misses_total"][()] == 1.0
        assert metrics["slang_slice_cache_evictions_total"][()] == 0.0
