"""Unit tests for the content-addressed analysis cache."""

import threading

from repro.corpus import PAPER_PROGRAMS
from repro.service.cache import AnalysisCache, analysis_key

FIG3A = PAPER_PROGRAMS["fig3a"].source
FIG5A = PAPER_PROGRAMS["fig5a"].source


class TestContentAddressing:
    def test_same_source_same_key(self):
        assert analysis_key(FIG3A) == analysis_key(FIG3A)

    def test_different_source_different_key(self):
        assert analysis_key(FIG3A) != analysis_key(FIG5A)

    def test_options_change_the_key(self):
        assert analysis_key(FIG3A) != analysis_key(FIG3A, fuse_cond_goto=False)
        assert analysis_key(FIG3A) != analysis_key(FIG3A, chain_io=False)
        assert analysis_key(FIG3A) != analysis_key(
            FIG3A, dominator_algorithm="lengauer-tarjan"
        )


class TestHitsAndMisses:
    def test_second_build_is_a_hit_returning_the_same_object(self):
        cache = AnalysisCache(capacity=4)
        first = cache.get_or_build(FIG3A)
        second = cache.get_or_build(FIG3A)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_stats_shape(self):
        cache = AnalysisCache(capacity=4)
        cache.get_or_build(FIG3A)
        cache.get_or_build(FIG3A)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == 0.5

    def test_zero_capacity_disables_caching(self):
        cache = AnalysisCache(capacity=0)
        first = cache.get_or_build(FIG3A)
        second = cache.get_or_build(FIG3A)
        assert first is not second
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = AnalysisCache(capacity=2)
        fig10a = PAPER_PROGRAMS["fig10a"].source
        cache.get_or_build(FIG3A)
        cache.get_or_build(FIG5A)
        cache.get_or_build(FIG3A)  # refresh fig3a; fig5a is now LRU
        cache.get_or_build(fig10a)  # evicts fig5a
        assert cache.evictions == 1
        assert cache.get(analysis_key(FIG5A)) is None
        assert cache.get(analysis_key(FIG3A)) is not None

    def test_clear(self):
        cache = AnalysisCache(capacity=2)
        cache.get_or_build(FIG3A)
        cache.clear()
        assert len(cache) == 0


class TestPrewarm:
    def test_prewarm_freezes_lazy_fields(self):
        cache = AnalysisCache(capacity=2, prewarm=True)
        analysis = cache.get_or_build(FIG3A)
        assert analysis._augmented_cfg is not None
        assert analysis._augmented_pdg is not None
        assert analysis.reaching is not None


class TestThreadSafety:
    def test_concurrent_get_or_build_yields_one_winner(self):
        cache = AnalysisCache(capacity=8)
        results = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            results.append(cache.get_or_build(FIG3A))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 1
        winner = cache.get(analysis_key(FIG3A))
        # Racing builders may each have built, but every *cached* lookup
        # from here on serves one object.
        assert winner is not None
        assert cache.get(analysis_key(FIG3A)) is winner
