"""Unit tests for dead-code elimination."""

import pytest

from repro.apps.deadcode import eliminate_dead_code
from repro.interp.interpreter import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty


def cleaned(source, **kwargs):
    report = eliminate_dead_code(source, **kwargs)
    return report, pretty(report.program)


class TestDeadAssignments:
    def test_simple_dead_store_removed(self):
        report, text = cleaned("x = 1;\nx = 2;\nwrite(x);")
        assert "x = 1" not in text
        assert "x = 2" in text
        assert report.removed_assignments == [(1, "x = 1")]

    def test_unused_variable_removed(self):
        report, text = cleaned("x = 1;\ny = 2;\nwrite(y);")
        assert "x = 1" not in text

    def test_cascading_removal_iterates(self):
        # b depends only on a; both die once write(b) is absent.
        report, text = cleaned("a = 1;\nb = a + 1;\nwrite(q);")
        assert "a = 1" not in text and "b = a" not in text
        assert report.iterations >= 2

    def test_live_through_loop_kept(self):
        report, text = cleaned(
            "s = 0;\nwhile (!eof()) {\nread(x);\ns = s + x;\n}\nwrite(s);"
        )
        assert report.removed_count == 0

    def test_read_not_removed_when_stream_matters(self):
        # The read's value is dead but its stream effect is not: a later
        # eof() observes the cursor.
        source = "read(x);\nif (eof())\nwrite(1);\nelse\nwrite(2);"
        report, text = cleaned(source)
        assert "read(x)" in text

    def test_dead_assign_in_branch(self):
        source = "read(c);\nif (c)\nx = 1;\nelse\ny = 2;\nwrite(y);"
        report, text = cleaned(source)
        assert "x = 1" not in text
        assert "y = 2" in text


class TestUnreachable:
    def test_code_after_return_removed(self):
        report, text = cleaned("return 1;\nx = 2;\nwrite(x);")
        assert "write" not in text
        assert any("x = 2" in entry[1] for entry in report.removed_unreachable) or (
            "x = 2" not in text
        )

    def test_unreachable_kept_when_disabled(self):
        report, text = cleaned(
            "return 1;\nwrite(5);", remove_unreachable=False
        )
        assert "write(5)" in text

    def test_goto_skipped_region(self):
        source = "goto L;\nx = 1;\nL: write(2);"
        report, text = cleaned(source)
        assert "x = 1" not in text
        assert "write(2)" in text
        assert "goto L" in text


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "source,inputs",
        [
            ("x = 1;\nx = 2;\nwrite(x);", ()),
            ("a = 1;\nb = a;\nwrite(q);\nreturn b - b;", ()),
            (
                "s = 0;\nd = 9;\nwhile (!eof()) {\nread(x);\nd = x;\n"
                "s = s + x;\n}\nwrite(s);",
                (1, 2, 3),
            ),
            (
                "read(c);\nswitch (c) {\ncase 1: u = 1;\ncase 2: "
                "write(20);\nbreak;\ncase 3: write(30);\n}",
                (1,),
            ),
            ("goto L;\nx = 5;\nL: write(7);", ()),
        ],
    )
    def test_outputs_and_return_unchanged(self, source, inputs):
        program = parse_program(source)
        before = run_program(program, inputs)
        report = eliminate_dead_code(source)
        after = run_program(report.program, inputs)
        assert before.outputs == after.outputs
        assert before.returned == after.returned

    def test_switch_case_label_reassociated_on_dead_arm(self):
        # case 1's only statement is dead; its label must fall through to
        # case 2's arm, preserving dispatch.
        source = (
            "read(c);\nswitch (c) {\ncase 1: u = 1;\ncase 2: "
            "write(20);\nbreak;\ncase 3: write(30);\n}"
        )
        report = eliminate_dead_code(source)
        text = pretty(report.program)
        assert "u = 1" not in text
        for value, expected in [(1, [20]), (2, [20]), (3, [30]), (4, [])]:
            result = run_program(report.program, [value])
            assert result.outputs == expected, value


class TestReport:
    def test_counts(self):
        report = eliminate_dead_code("x = 1;\nreturn 0;\ny = 2;")
        assert report.removed_count == 2

    def test_clean_program_untouched(self):
        source = "read(x);\nwrite(x);"
        report = eliminate_dead_code(source)
        assert report.removed_count == 0
        assert report.iterations == 0
        assert pretty(report.program) == pretty(parse_program(source))

    def test_accepts_ast(self):
        program = parse_program("x = 1;\nwrite(q);")
        report = eliminate_dead_code(program)
        assert report.removed_count == 1
