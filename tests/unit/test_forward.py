"""Unit tests for forward slicing and chopping."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.forward import chop, forward_slice


class TestForwardSlice:
    def test_straight_line_propagation(self):
        analysis = analyze_program("x = 1;\ny = x + 1;\nz = y * 2;\nq = 5;")
        result = forward_slice(analysis, SlicingCriterion(1, "x"))
        assert result.statement_nodes() == [1, 2, 3]

    def test_control_influence(self):
        analysis = analyze_program("read(c);\nif (c)\nx = 1;\ny = 2;")
        result = forward_slice(analysis, SlicingCriterion(1, "c"))
        members = set(result.statement_nodes())
        assert {1, 2, 3} <= members
        assert 4 not in members  # y=2 is beyond the if's influence

    def test_jump_influence_needs_augmented_pdg(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        # What would editing `goto L13` (line 7) affect?  The variable
        # name is irrelevant for a jump; pick one with no definitions so
        # the seed is exactly the goto node.
        augmented = forward_slice(analysis, SlicingCriterion(7, "q"))
        plain = forward_slice(
            analysis, SlicingCriterion(7, "q"), use_augmented=False
        )
        assert plain.statement_nodes() == [7]  # just the goto itself
        assert len(augmented.statement_nodes()) > 1

    def test_criterion_at_use_site_seeds_reaching_defs(self):
        analysis = analyze_program("x = 1;\nwrite(q);\nwrite(x);")
        result = forward_slice(analysis, SlicingCriterion(2, "x"))
        # editing "the x observed at line 2" means editing x = 1, whose
        # influence reaches line 3 as well.
        assert 3 in result.statement_nodes()

    def test_algorithm_labels(self):
        analysis = analyze_program("x = 1;")
        assert forward_slice(analysis, SlicingCriterion(1, "x")).algorithm == (
            "forward"
        )
        assert forward_slice(
            analysis, SlicingCriterion(1, "x"), use_augmented=False
        ).algorithm == "forward-plain"


class TestChop:
    def test_chop_is_intersection(self):
        from repro.slicing.conventional import conventional_slice

        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        source = SlicingCriterion(4, "x")
        target = SlicingCriterion(15, "positives")
        result = chop(analysis, source, target)
        forwards = set(
            forward_slice(analysis, source).statement_nodes()
        )
        assert set(result.statement_nodes()) <= forwards

    def test_chop_excludes_unrelated_paths(self):
        analysis = analyze_program(
            "read(a);\nread(b);\nx = a + 1;\ny = b + 1;\nwrite(x);\nwrite(y);"
        )
        result = chop(
            analysis, SlicingCriterion(1, "a"), SlicingCriterion(5, "x")
        )
        members = set(result.statement_nodes())
        assert {1, 3, 5} <= members
        assert 4 not in members and 6 not in members

    def test_empty_chop_when_no_influence(self):
        analysis = analyze_program("x = 1;\ny = 2;\nwrite(y);")
        result = chop(
            analysis, SlicingCriterion(1, "x"), SlicingCriterion(3, "y")
        )
        # x never flows into y: the chop keeps at most shared control
        # context (ENTRY is stripped by statement_nodes).
        assert 1 not in result.statement_nodes()

    def test_notes_record_source(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        result = chop(
            analysis, SlicingCriterion(1, "x"), SlicingCriterion(2, "x")
        )
        assert any("chop source" in note for note in result.notes)
