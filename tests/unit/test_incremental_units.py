"""Unit tests for the incremental layer's building blocks: per-unit
fingerprints (what dirties what), the bounded :class:`UnitCache`, and
the global on/off knob.

The dirtiness rules under test are exactly the ones DESIGN.md §14
documents:

* formatting that preserves line numbers is invisible;
* a line shift is a real change (analyses carry absolute lines);
* a body edit that leaves a unit's signature alone dirties only that
  unit;
* an I/O flip anywhere dirties the whole caller chain, because callers
  hash their direct callees' signatures and the ``io`` bit propagates
  transitively through the call graph.
"""

import random

import pytest

from repro.lang.parser import parse_program
from repro.pdg.builder import analyze_program
from repro.service.cache import AnalysisCache
from repro.service.incremental import (
    IncrementalStats,
    StitchedUnit,
    UnitCache,
    incremental,
    incremental_enabled,
    incremental_parse,
    set_incremental_enabled,
    split_source,
    unit_fingerprints,
    units_digest,
)

CHAIN = """\
read(v);
call outer(v, r);
write(r);

proc outer(a, out) {
    call inner(a, out);
}

proc inner(a, out) {
    out = a + 1;
}

proc orphan(z) {
    z = 0;
}
"""


def fingerprints(source):
    return unit_fingerprints(parse_program(source))


class TestFingerprints:
    def test_same_line_comment_is_invisible(self):
        """Formatting that keeps every statement on its line changes no
        unit's fingerprint — the whole analysis is salvageable."""
        base = fingerprints(CHAIN)
        lines = CHAIN.splitlines()
        lines[0] += "  // reviewed"
        edited = fingerprints("\n".join(lines) + "\n")
        assert edited == base

    def test_line_shift_changes_every_shifted_unit(self):
        """A prepended comment *line* renumbers everything below it;
        absolute lines are part of the analyses, so every fingerprint
        must change."""
        base = fingerprints(CHAIN)
        edited = fingerprints("// header\n" + CHAIN)
        assert all(edited[unit] != base[unit] for unit in base)

    def test_body_edit_dirties_only_its_unit(self):
        """A constant tweak inside ``inner`` leaves its signature alone,
        so callers (and strangers) keep their fingerprints."""
        base = fingerprints(CHAIN)
        edited = fingerprints(CHAIN.replace("out = a + 1;", "out = a + 2;"))
        assert edited["inner"] != base["inner"]
        assert edited["outer"] == base["outer"]
        assert edited["main"] == base["main"]
        assert edited["orphan"] == base["orphan"]

    def test_io_flip_dirties_the_caller_chain(self):
        """Making ``inner`` perform I/O flips its signature's ``io``
        bit; the bit propagates transitively, so ``outer`` (direct
        caller) *and* ``main`` (caller of a now-I/O ``outer``) are
        dirtied — call sites thread the ``$in`` cursor differently.
        ``orphan`` never calls anyone and stays clean."""
        base = fingerprints(CHAIN)
        edited = fingerprints(CHAIN.replace("out = a + 1;", "read(out);"))
        assert edited["inner"] != base["inner"]
        assert edited["outer"] != base["outer"]
        assert edited["main"] != base["main"]
        assert edited["orphan"] == base["orphan"]

    def test_options_are_part_of_the_address(self):
        program = parse_program(CHAIN)
        assert unit_fingerprints(program, fuse_cond_goto=True) != (
            unit_fingerprints(program, fuse_cond_goto=False)
        )
        assert unit_fingerprints(program, chain_io=True) != (
            unit_fingerprints(program, chain_io=False)
        )

    def test_units_digest_is_order_insensitive(self):
        base = fingerprints(CHAIN)
        reversed_order = dict(reversed(list(base.items())))
        assert units_digest(base) == units_digest(reversed_order)
        perturbed = dict(base)
        perturbed["inner"] = "0" * 64
        assert units_digest(perturbed) != units_digest(base)


def lines_of(program):
    return [
        stmt.line
        for _, body in program.units()
        for top in body
        for stmt in __import__(
            "repro.lang.ast_nodes", fromlist=["walk_statements"]
        ).walk_statements(top)
    ]


def assert_same_program(left, right):
    """Structural equality through the canonical renderer plus the
    absolute line vector (pretty drops line numbers)."""
    from repro.lang.pretty import pretty

    assert pretty(left) == pretty(right)
    assert lines_of(left) == lines_of(right)


class TestSelectiveParse:
    def test_split_matches_whole_parse(self):
        spans = split_source(CHAIN)
        assert [s.kind for s in spans] == ["main", "proc", "proc", "proc"]
        assert [s.start_line for s in spans] == [1, 5, 9, 13]
        cache = UnitCache()
        assert_same_program(
            incremental_parse(CHAIN, cache), parse_program(CHAIN)
        )

    def test_block_comments_and_braces_in_comments(self):
        source = (
            "x = 1; /* { not a brace } */\n"
            "write(x);\n"
            "/* proc fake(a) { */\n"
            "proc f(a) {\n"
            "    a = a + 1; // } also not\n"
            "}\n"
        )
        cache = UnitCache()
        assert_same_program(
            incremental_parse(source, cache), parse_program(source)
        )
        assert [s.kind for s in split_source(source)] == ["main", "proc"]

    def test_edit_reparses_only_its_span(self):
        cache = UnitCache()
        incremental_parse(CHAIN, cache)
        parsed_before = cache.stats.snapshot()["spans_parsed"]
        edited = CHAIN.replace("out = a + 1;", "out = a + 2;")
        assert_same_program(
            incremental_parse(edited, cache), parse_program(edited)
        )
        stats = cache.stats.snapshot()
        assert stats["spans_parsed"] == parsed_before + 1  # inner only
        assert stats["spans_reused"] == 3  # main, outer, orphan

    def test_unsupported_layout_falls_back(self):
        # A statement after the procs: valid SL, but not the canonical
        # layout — the splitter declines and the whole source parses.
        source = "x = 1;\nproc f(a) {\n    a = 1;\n}\ny = 2;\n"
        assert split_source(source) is None
        cache = UnitCache()
        assert_same_program(
            incremental_parse(source, cache), parse_program(source)
        )

    def test_malformed_source_raises_the_canonical_error(self):
        import pytest as _pytest

        from repro.lang.errors import SlangError

        bad = "x = ;\nproc f(a) {\n    a = 1;\n}\n"
        cache = UnitCache()
        with _pytest.raises(SlangError) as inc_err:
            incremental_parse(bad, cache)
        with _pytest.raises(SlangError) as ref_err:
            parse_program(bad)
        assert str(inc_err.value) == str(ref_err.value)


class TestUnitCache:
    def analysis(self):
        return analyze_program("x = 1;\nwrite(x);\n")

    def test_lru_capacity_evicts_oldest(self):
        cache = UnitCache(capacity=2)
        a = self.analysis()
        cache.put_unit("k1", a)
        cache.put_unit("k2", a)
        cache.put_unit("k3", a)
        assert len(cache) == 2
        assert cache.get_unit("k1") is None
        assert cache.get_unit("k3") is not None

    def test_get_refreshes_recency(self):
        cache = UnitCache(capacity=2)
        a = self.analysis()
        cache.put_unit("k1", a)
        cache.put_unit("k2", a)
        cache.get_unit("k1")  # k2 is now the eviction candidate
        cache.put_unit("k3", a)
        assert cache.get_unit("k1") is not None
        assert cache.get_unit("k2") is None

    def test_stitched_per_unit_is_bounded(self):
        cache = UnitCache(capacity=4, stitched_per_unit=2)
        record = cache.put_unit("k1", self.analysis())
        for index in range(3):
            cache.put_stitched(
                "k1",
                f"assume{index}",
                StitchedUnit(
                    local=record.analysis.pdg,
                    pairs=frozenset(),
                    summary_count=0,
                ),
            )
        assert len(record.stitched) == 2
        assert cache.get_stitched("k1", "assume0") is None
        assert cache.get_stitched("k1", "assume2") is not None

    def test_put_stitched_without_unit_is_a_noop(self):
        cache = UnitCache(capacity=4)
        stitched = StitchedUnit(
            local=self.analysis().pdg, pairs=frozenset(), summary_count=0
        )
        assert cache.put_stitched("ghost", "a", stitched) is stitched
        assert cache.get_stitched("ghost", "a") is None

    def test_snapshot_carries_counters_and_sizes(self):
        cache = UnitCache(capacity=8)
        cache.stats.record("units_reused", 3)
        snapshot = cache.snapshot()
        assert snapshot["capacity"] == 8
        assert snapshot["entries"] == 0
        assert snapshot["stitched_entries"] == 0
        assert snapshot["index_entries"] == 0
        assert snapshot["units_reused"] == 3
        for field in IncrementalStats.FIELDS:
            assert field in snapshot
        assert "indexes_salvaged" in IncrementalStats.FIELDS

    def test_index_store_is_lru_bounded(self):
        cache = UnitCache(capacity=4, index_capacity=2)
        first, second, third = object(), object(), object()
        cache.put_index("i1", first)
        cache.put_index("i2", second)
        cache.put_index("i3", third)
        assert cache.get_index("i1") is None
        assert cache.get_index("i3") is third
        assert cache.snapshot()["index_entries"] == 2

    def test_get_index_refreshes_recency(self):
        cache = UnitCache(capacity=4, index_capacity=2)
        first, second = object(), object()
        cache.put_index("i1", first)
        cache.put_index("i2", second)
        cache.get_index("i1")  # i2 is now the eviction candidate
        cache.put_index("i3", object())
        assert cache.get_index("i1") is first
        assert cache.get_index("i2") is None

    def test_clear_drops_indexes(self):
        cache = UnitCache(capacity=4)
        cache.put_index("i1", object())
        cache.clear()
        assert cache.get_index("i1") is None
        assert cache.snapshot()["index_entries"] == 0


class TestKnob:
    def test_context_manager_restores_on_exit_and_error(self):
        assert incremental_enabled()
        with incremental(False):
            assert not incremental_enabled()
        assert incremental_enabled()
        with pytest.raises(RuntimeError):
            with incremental(False):
                raise RuntimeError("boom")
        assert incremental_enabled()

    def test_disabled_bypass_leaves_unit_cache_untouched(self):
        """With the knob off the analysis cache takes the monolithic
        path: no unit records, no counters — behaviour is exactly the
        pre-incremental engine's."""
        unit_cache = UnitCache()
        cache = AnalysisCache(capacity=4, unit_cache=unit_cache)
        with incremental(False):
            analysis = cache.get_or_build(CHAIN)
        assert analysis is not None
        assert len(unit_cache) == 0
        assert all(
            count == 0 for count in unit_cache.stats.snapshot().values()
        )

    def test_enabled_path_populates_unit_cache(self):
        unit_cache = UnitCache()
        cache = AnalysisCache(capacity=4, unit_cache=unit_cache)
        cache.get_or_build(CHAIN)
        assert len(unit_cache) >= 1
        stats = unit_cache.stats.snapshot()
        assert stats["programs"] == 1
        assert stats["units_built"] >= 1
