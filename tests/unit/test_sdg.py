"""Unit tests for the SDG subsystem: call graph, parameter model,
summary edges, and criterion resolution across procedures."""

import pytest

from repro.cfg.builder import INPUT_CURSOR
from repro.lang.ast_nodes import MAIN_UNIT
from repro.lang.errors import SliceError, UnreachableCriterionError
from repro.lang.parser import parse_program
from repro.pdg.builder import analyze_program
from repro.sdg.builder import sdg_for_analysis
from repro.sdg.callgraph import build_call_graph
from repro.sdg.params import IO_PARAM, actuals_for, signatures
from repro.sdg.slicer import resolve_sdg_criterion, sdg_slice
from repro.slicing.criterion import SlicingCriterion

COMBINE = """\
read(x);
read(y);
call combine(x, y, s);
call combine(y, y, t);
write(s);
write(t);

proc combine(a, b, r) {
    r = a * b;
    if (a > b) {
        return;
    }
    r = r + a;
}
"""

CHAIN = """\
read(v);
call outer(v, r);
write(r);

proc outer(a, out) {
    call inner(a, out);
}

proc inner(a, out) {
    out = a + 1;
}

proc orphan(z) {
    z = 0;
}
"""

READER = """\
call fetch(x);
read(y);
write(x);
write(y);

proc fetch(slot) {
    read(slot);
}
"""


def _sdg(source):
    return sdg_for_analysis(analyze_program(source))


class TestCallGraph:
    def test_sites_and_callees(self):
        graph = build_call_graph(parse_program(COMBINE))
        assert graph.units == [MAIN_UNIT, "combine"]
        assert [name for _, name in graph.sites[MAIN_UNIT]] == [
            "combine",
            "combine",
        ]
        assert graph.callees[MAIN_UNIT] == {"combine"}
        assert graph.callers["combine"] == {MAIN_UNIT}

    def test_reachability_excludes_uncalled_proc(self):
        graph = build_call_graph(parse_program(CHAIN))
        assert graph.reachable == {MAIN_UNIT, "outer", "inner"}
        assert "orphan" not in graph.reachable

    def test_recursion_detection(self):
        source = """\
call ping(x);
write(x);

proc ping(a) {
    if (a > 0) {
        call pong(a);
    }
}

proc pong(a) {
    a = a - 1;
    call ping(a);
}
"""
        graph = build_call_graph(parse_program(source))
        assert graph.recursive == {"ping", "pong"}

    def test_io_units_propagate_to_callers(self):
        graph = build_call_graph(parse_program(READER))
        # fetch reads directly; main reads directly too.
        assert graph.io_units == {MAIN_UNIT, "fetch"}


class TestParamModel:
    def test_io_param_matches_cfg_input_cursor(self):
        # The implicit parameter must be the same pseudo-variable the
        # CFG builder threads through read statements, or read
        # chaining breaks across call boundaries.
        assert IO_PARAM == INPUT_CURSOR

    def test_io_proc_gains_implicit_formal(self):
        program = parse_program(READER)
        table = signatures(program)
        assert table["fetch"].formals == ("slot", IO_PARAM)
        assert table[MAIN_UNIT].formals == ()

    def test_non_var_argument_is_copy_in_only(self):
        source = """\
call f(x + 1, y);
write(y);

proc f(a, b) {
    b = a;
}
"""
        program = parse_program(source)
        table = signatures(program)
        call = next(
            stmt
            for stmt in program.statements()
            if type(stmt).__name__ == "CallStmt"
        )
        specs = actuals_for(call, table["f"])
        assert [spec.out_var for spec in specs] == [None, "y"]


class TestSummaryEdges:
    def test_summary_edges_exist_for_param_flow(self):
        sdg = _sdg(COMBINE)
        assert sdg.summary_edges > 0
        assert sdg.summary_iterations >= 1

    def test_degenerate_program_has_no_summary_edges(self):
        sdg = _sdg("x = 1;\nwrite(x);")
        assert sdg.is_degenerate
        assert sdg.summary_edges == 0

    def test_chain_effect_reaches_top_level_actual_out(self):
        # r depends on v only through outer -> inner; slicing on r must
        # pull the read through two summary levels.
        sdg = _sdg(CHAIN)
        result = sdg_slice(sdg, SlicingCriterion(line=3, var="r"))
        lines = result.lines()
        assert 1 in lines  # read(v)
        assert "inner" in result.units()


class TestCriterionResolution:
    def test_unknown_proc_is_named(self):
        sdg = _sdg(COMBINE)
        with pytest.raises(SliceError) as err:
            resolve_sdg_criterion(
                sdg, SlicingCriterion(line=9, var="r", proc="nope")
            )
        assert "'nope'" in str(err.value)
        assert "'combine'" in str(err.value)

    def test_line_outside_proc_lists_its_lines(self):
        sdg = _sdg(COMBINE)
        with pytest.raises(SliceError) as err:
            resolve_sdg_criterion(
                sdg, SlicingCriterion(line=1, var="x", proc="combine")
            )
        assert "proc 'combine'" in str(err.value)

    def test_line_in_no_unit(self):
        sdg = _sdg(COMBINE)
        with pytest.raises(SliceError) as err:
            resolve_sdg_criterion(sdg, SlicingCriterion(line=99, var="x"))
        assert "no statement at line 99" in str(err.value)

    def test_ambiguous_line_names_candidates(self):
        # Two proc bodies share source line 5, so an unqualified
        # criterion there cannot pick a unit.
        source = (
            "call a(x);\n"
            "call b(y);\n"
            "write(x);\n"
            "\n"
            "proc a(p) { p = 1; } proc b(q) { q = 2; }\n"
        )
        sdg = _sdg(source)
        with pytest.raises(SliceError) as err:
            resolve_sdg_criterion(sdg, SlicingCriterion(line=5, var="p"))
        message = str(err.value)
        assert "ambiguous" in message
        assert "'a'" in message and "'b'" in message
        # Qualifying resolves it.
        resolved = resolve_sdg_criterion(
            sdg, SlicingCriterion(line=5, var="p", proc="a")
        )
        assert resolved.unit == "a"

    def test_never_called_proc_is_rejected_by_name(self):
        sdg = _sdg(CHAIN)
        with pytest.raises(UnreachableCriterionError) as err:
            resolve_sdg_criterion(
                sdg, SlicingCriterion(line=14, var="z", proc="orphan")
            )
        assert "'orphan'" in str(err.value)
        assert "never called" in str(err.value)

    def test_unreachable_statement_in_proc_names_the_proc(self):
        source = """\
call f(x);
write(x);

proc f(a) {
    return;
    a = 1;
}
"""
        sdg = _sdg(source)
        with pytest.raises(UnreachableCriterionError) as err:
            resolve_sdg_criterion(
                sdg, SlicingCriterion(line=6, var="a", proc="f")
            )
        assert "proc 'f'" in str(err.value)


class TestSliceShape:
    def test_unrelated_call_site_is_dropped(self):
        sdg = _sdg(COMBINE)
        result = sdg_slice(sdg, SlicingCriterion(line=5, var="s"))
        lines = result.lines()
        assert 3 in lines  # the call that produces s
        assert 4 not in lines  # the unrelated second call
        # The guarded return controls the copy-out value: Agrawal's
        # rule must keep it.
        assert 11 in lines

    def test_global_nodes_are_disjoint_across_units(self):
        sdg = _sdg(COMBINE)
        result = sdg_slice(sdg, SlicingCriterion(line=5, var="s"))
        globals_ = result.global_nodes()
        total = sum(len(nodes) for nodes in result.per_proc.values())
        assert len(globals_) == total
