"""Unit tests for dominator/postdominator tree construction over CFGs."""

import pytest

from repro.analysis.postdominance import (
    build_dominator_tree,
    build_postdominator_tree,
)
from repro.cfg.builder import build_cfg
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_program


def cfg_of(source):
    return build_cfg(parse_program(source))


class TestDominatorTree:
    def test_straight_line(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        tree = build_dominator_tree(cfg)
        assert tree.parent_of(1) == cfg.entry_id
        assert tree.parent_of(2) == 1

    def test_if_join_dominated_by_predicate(self):
        cfg = cfg_of("if (c)\nx = 1;\nelse\ny = 2;\nz = 3;")
        tree = build_dominator_tree(cfg)
        assert tree.parent_of(4) == 1  # join dominated by the if

    def test_rooted_at_entry(self):
        cfg = cfg_of("x = 1;")
        assert build_dominator_tree(cfg).root == cfg.entry_id


class TestPostdominatorTree:
    def test_straight_line(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        tree = build_postdominator_tree(cfg)
        assert tree.root == cfg.exit_id
        assert tree.parent_of(1) == 2
        assert tree.parent_of(2) == cfg.exit_id

    def test_if_branches_postdominated_by_join(self):
        cfg = cfg_of("if (c)\nx = 1;\nelse\ny = 2;\nz = 3;")
        tree = build_postdominator_tree(cfg)
        assert tree.parent_of(2) == 4
        assert tree.parent_of(3) == 4
        assert tree.parent_of(1) == 4

    def test_virtual_edge_makes_exit_entrys_parent(self):
        cfg = cfg_of("x = 1;")
        tree = build_postdominator_tree(cfg)
        assert tree.parent_of(cfg.entry_id) == cfg.exit_id

    def test_without_virtual_edge_first_node_postdominates_entry(self):
        cfg = cfg_of("x = 1;")
        tree = build_postdominator_tree(cfg, virtual_entry_exit_edge=False)
        assert tree.parent_of(cfg.entry_id) == 1

    def test_loop_test_postdominates_body(self):
        cfg = cfg_of("while (c)\nx = 1;\ny = 2;")
        tree = build_postdominator_tree(cfg)
        assert tree.parent_of(2) == 1
        assert tree.parent_of(1) == 3

    def test_strict_raises_when_exit_unreachable(self):
        # `while (1)` with an empty-but-looping body: nodes inside the
        # loop cannot reach EXIT.
        cfg = cfg_of("while (1)\nx = 1;\ny = 2;")
        # This loop never terminates: the false edge exists syntactically
        # (cond is the literal 1) so postdominators are actually fine.
        build_postdominator_tree(cfg)
        # A genuinely inescapable cycle needs a goto.
        cfg2 = cfg_of("L: x = 1;\ngoto L;")
        with pytest.raises(AnalysisError) as info:
            build_postdominator_tree(cfg2)
        assert "cannot reach EXIT" in str(info.value)

    def test_non_strict_drops_trapped_nodes(self):
        cfg = cfg_of("L: x = 1;\ngoto L;")
        tree = build_postdominator_tree(cfg, strict=False)
        assert 1 not in tree
        assert 2 not in tree
        assert cfg.exit_id in tree

    def test_algorithms_agree_on_corpus(self):
        from repro.corpus import PAPER_PROGRAMS

        for program in PAPER_PROGRAMS.values():
            cfg = build_cfg(parse_program(program.source))
            iterative = build_postdominator_tree(cfg, algorithm="iterative")
            tarjan = build_postdominator_tree(cfg, algorithm="lengauer-tarjan")
            assert iterative.as_parent_map() == tarjan.as_parent_map(), (
                program.name
            )

    def test_unknown_algorithm_rejected(self):
        cfg = cfg_of("x = 1;")
        with pytest.raises(ValueError):
            build_postdominator_tree(cfg, algorithm="magic")


class TestPaperFig4b:
    """The postdominator tree of Fig. 3a must match the paper's Fig. 4b."""

    def test_parents(self):
        from repro.corpus import PAPER_PROGRAMS

        cfg = build_cfg(parse_program(PAPER_PROGRAMS["fig3a"].source))
        tree = build_postdominator_tree(cfg)
        expected = {
            1: 2, 2: 3, 3: 14, 4: 5, 5: 13, 6: 7, 7: 13, 8: 9, 9: 13,
            10: 11, 11: 13, 12: 13, 13: 3, 14: 15, 15: 16,
        }
        for node, parent in expected.items():
            assert tree.parent_of(node) == parent, node
