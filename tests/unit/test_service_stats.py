"""Unit tests for the observability counters."""

import threading

import pytest

from repro.service.stats import LatencyHistogram, ServiceStats


class TestLatencyHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        histogram.observe(0.0005)  # <= 0.001
        histogram.observe(0.005)  # <= 0.01
        histogram.observe(0.05)  # <= 0.1
        histogram.observe(5.0)  # overflow
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {
            "le_0.001": 1,
            "le_0.01": 1,
            "le_0.1": 1,
            "le_inf": 1,
        }
        assert snapshot["count"] == 4
        assert snapshot["max_seconds"] == 5.0

    def test_boundary_is_inclusive(self):
        histogram = LatencyHistogram(buckets=(0.01,))
        histogram.observe(0.01)
        assert histogram.snapshot()["buckets"]["le_0.01"] == 1

    def test_mean(self):
        histogram = LatencyHistogram(buckets=(1.0,))
        histogram.observe(0.2)
        histogram.observe(0.4)
        assert histogram.snapshot()["mean_seconds"] == pytest.approx(0.3)

    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_seconds"] == 0.0


class TestServiceStats:
    def test_record_and_snapshot(self):
        stats = ServiceStats()
        stats.record("slice", "agrawal", 0.002)
        stats.record("slice", "agrawal", 0.004, error=True)
        stats.record("compare", None, 0.1)
        snapshot = stats.snapshot()
        assert snapshot["requests"] == {"compare": 1, "slice:agrawal": 2}
        assert snapshot["errors"] == {"slice:agrawal": 1}
        assert snapshot["latency"]["slice:agrawal"]["count"] == 2

    def test_timer_context_manager_records_errors(self):
        stats = ServiceStats()
        with pytest.raises(RuntimeError):
            with stats.time("slice", "lyle"):
                raise RuntimeError("boom")
        snapshot = stats.snapshot()
        assert snapshot["requests"] == {"slice:lyle": 1}
        assert snapshot["errors"] == {"slice:lyle": 1}

    def test_record_phases_lands_in_snapshot(self):
        stats = ServiceStats()
        stats.record_phase("parse", 0.001)
        stats.record_phases({"parse": 0.002, "fig7-traversal": 0.003})
        snapshot = stats.snapshot()
        assert snapshot["phases"]["parse"]["count"] == 2
        assert snapshot["phases"]["fig7-traversal"]["count"] == 1

    def test_snapshot_never_tears_while_writers_spin(self):
        """The consistency contract (module docstring): a snapshot
        taken mid-storm must be internally consistent — every
        ``requests[key]`` equals its ``latency[key].count``, and every
        histogram's buckets sum to its count.  Both invariants would
        tear if ``record`` dropped the lock between the counter
        increment and the histogram observation, or if ``snapshot``
        released it between keys."""
        stats = ServiceStats()
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                stats.record("slice", "agrawal", 0.001)
                stats.record("slice", "agrawal", 0.02, error=True)
                stats.record_phases({"parse": 0.001, "pdg-build": 0.002})

        writers = [threading.Thread(target=spin) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            for _ in range(200):
                snapshot = stats.snapshot()
                for key, count in snapshot["requests"].items():
                    latency = snapshot["latency"][key]
                    assert latency["count"] == count, key
                    assert sum(latency["buckets"].values()) == count, key
                for key, errors in snapshot["errors"].items():
                    assert errors <= snapshot["requests"][key], key
                phases = snapshot["phases"]
                if phases:
                    # record_phases is atomic: both phases observed
                    # under one lock acquisition, so counts match.
                    assert (
                        phases["parse"]["count"]
                        == phases["pdg-build"]["count"]
                    )
                    for phase in phases.values():
                        assert (
                            sum(phase["buckets"].values())
                            == phase["count"]
                        )
        finally:
            stop.set()
            for thread in writers:
                thread.join()

    def test_concurrent_recording_loses_nothing(self):
        stats = ServiceStats()

        def work():
            for _ in range(200):
                stats.record("slice", "agrawal", 0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = stats.snapshot()
        assert snapshot["requests"]["slice:agrawal"] == 1600
        assert snapshot["latency"]["slice:agrawal"]["count"] == 1600
