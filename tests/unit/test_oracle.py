"""Unit tests for the trajectory oracle."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.interp.oracle import (
    TrajectoryMismatch,
    check_slice_correctness,
    criterion_trajectory,
)
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion


class TestTrajectories:
    def test_trajectory_at_write(self):
        analysis = analyze_program(
            "s = 0;\nwhile (!eof()) {\nread(x);\ns = s + x;\n}\nwrite(s);"
        )
        trajectory = criterion_trajectory(
            analysis, SlicingCriterion(6, "s"), inputs=[1, 2, 3]
        )
        assert trajectory == [6]

    def test_trajectory_inside_loop(self):
        analysis = analyze_program(
            "s = 0;\nwhile (!eof()) {\nread(x);\ns = s + x;\n}\nwrite(s);"
        )
        trajectory = criterion_trajectory(
            analysis, SlicingCriterion(4, "s"), inputs=[1, 2, 3]
        )
        # Value of s each time control reaches the assignment.
        assert trajectory == [0, 1, 3]

    def test_initial_env(self):
        analysis = analyze_program("write(c);")
        trajectory = criterion_trajectory(
            analysis, SlicingCriterion(1, "c"), inputs=[], initial_env={"c": 9}
        )
        assert trajectory == [9]


class TestCorrectnessChecking:
    def test_correct_slice_passes(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        result = agrawal_slice(analysis, SlicingCriterion(*entry.criterion))
        checked = check_slice_correctness(result, entry.input_sets)
        assert checked == len(entry.input_sets)

    def test_incorrect_slice_reports_divergence(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        result = conventional_slice(
            analysis, SlicingCriterion(*entry.criterion)
        )
        with pytest.raises(TrajectoryMismatch) as info:
            check_slice_correctness(result, entry.input_sets)
        error = info.value
        assert error.expected != error.actual
        assert "conventional" in str(error)
        assert error.slice_source  # extracted program attached

    def test_mismatch_carries_inputs(self):
        entry = PAPER_PROGRAMS["fig16a"]
        analysis = analyze_program(entry.source)
        from repro.slicing.gallagher import gallagher_slice

        result = gallagher_slice(analysis, SlicingCriterion(*entry.criterion))
        with pytest.raises(TrajectoryMismatch) as info:
            check_slice_correctness(result, entry.input_sets)
        assert info.value.inputs in [list(i) for i in entry.input_sets]
