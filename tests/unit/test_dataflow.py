"""Unit tests for the generic dataflow framework and its instances."""

from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    GenKillProblem,
    solve_dataflow,
)
from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching_defs import (
    Definition,
    compute_reaching_definitions,
)
from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program


def cfg_of(source, **kwargs):
    return build_cfg(parse_program(source), **kwargs)


def node_by_text(cfg, text):
    return next(n for n in cfg.statement_nodes() if n.text == text)


class TestFramework:
    def test_forward_constant_gen(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        problem = GenKillProblem(
            gen=lambda n: frozenset({n}),
            kill=lambda n: frozenset(),
            direction=FORWARD,
        )
        result = solve_dataflow(cfg, problem)
        assert result.in_[2] == {cfg.entry_id, 1}
        assert result.out[2] == {cfg.entry_id, 1, 2}

    def test_backward_direction(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        problem = GenKillProblem(
            gen=lambda n: frozenset({n}),
            kill=lambda n: frozenset(),
            direction=BACKWARD,
        )
        result = solve_dataflow(cfg, problem)
        assert 2 in result.in_[1]
        assert cfg.exit_id in result.in_[2]

    def test_kill_removes(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        problem = GenKillProblem(
            gen=lambda n: frozenset({n}) if n == 1 else frozenset(),
            kill=lambda n: frozenset({1}) if n == 2 else frozenset(),
            direction=FORWARD,
        )
        result = solve_dataflow(cfg, problem)
        assert 1 in result.in_[2]
        assert 1 not in result.out[2]

    def test_loop_reaches_fixed_point(self):
        cfg = cfg_of("while (c)\nx = 1;\ny = 2;")
        problem = GenKillProblem(
            gen=lambda n: frozenset({n}),
            kill=lambda n: frozenset(),
            direction=FORWARD,
        )
        result = solve_dataflow(cfg, problem)
        # The loop test sees its own body's gen through the back edge.
        assert 2 in result.in_[1]


class TestReachingDefinitions:
    def test_simple_def_reaches_use(self):
        cfg = cfg_of("x = 1;\nwrite(x);")
        result = compute_reaching_definitions(cfg)
        assert Definition(1, "x") in result.in_[2]

    def test_redefinition_kills(self):
        cfg = cfg_of("x = 1;\nx = 2;\nwrite(x);")
        result = compute_reaching_definitions(cfg)
        assert Definition(1, "x") not in result.in_[3]
        assert Definition(2, "x") in result.in_[3]

    def test_both_branches_reach_join(self):
        cfg = cfg_of("if (c)\nx = 1;\nelse\nx = 2;\nwrite(x);")
        result = compute_reaching_definitions(cfg)
        reaching = {d for d in result.in_[4] if d.var == "x"}
        assert reaching == {Definition(2, "x"), Definition(3, "x")}

    def test_loop_carried_definition(self):
        cfg = cfg_of("x = 0;\nwhile (c)\nx = x + 1;\nwrite(x);")
        result = compute_reaching_definitions(cfg)
        loop_def = Definition(3, "x")
        assert loop_def in result.in_[3]  # reaches itself around the loop
        assert loop_def in result.in_[4]

    def test_read_defines(self):
        cfg = cfg_of("read(x);\nwrite(x);", chain_io=False)
        result = compute_reaching_definitions(cfg)
        assert Definition(1, "x") in result.in_[2]

    def test_io_chaining_links_reads(self):
        cfg = cfg_of("read(x);\nread(y);")
        result = compute_reaching_definitions(cfg)
        assert Definition(1, "$in") in result.in_[2]


class TestLiveness:
    def test_used_variable_live_before_use(self):
        cfg = cfg_of("x = 1;\nwrite(x);")
        result = compute_liveness(cfg)
        assert "x" in result.in_[2]
        assert "x" in result.out[1]

    def test_dead_after_last_use(self):
        cfg = cfg_of("x = 1;\nwrite(x);\ny = 2;")
        result = compute_liveness(cfg)
        assert "x" not in result.out[2]

    def test_definition_kills_liveness(self):
        cfg = cfg_of("x = 1;\nx = 2;\nwrite(x);")
        result = compute_liveness(cfg)
        assert "x" not in result.in_[1]  # first def is dead

    def test_loop_keeps_variable_live(self):
        cfg = cfg_of("s = 0;\nwhile (c)\ns = s + 1;\nwrite(s);")
        result = compute_liveness(cfg)
        assert "s" in result.in_[2]
        assert "s" in result.out[3]

    def test_condition_variables_live(self):
        cfg = cfg_of("if (c)\nx = 1;")
        result = compute_liveness(cfg)
        assert "c" in result.in_[1]


class TestEngineKnob:
    def test_default_engine_is_bitset(self):
        from repro.analysis.dataflow import (
            ENGINE_BITSET,
            get_dataflow_engine,
        )

        assert get_dataflow_engine() == ENGINE_BITSET

    def test_set_engine_rejects_unknown(self):
        import pytest

        from repro.analysis.dataflow import set_dataflow_engine

        with pytest.raises(ValueError):
            set_dataflow_engine("abacus")

    def test_context_manager_restores(self):
        from repro.analysis.dataflow import (
            dataflow_engine,
            get_dataflow_engine,
        )

        before = get_dataflow_engine()
        with dataflow_engine("sets"):
            assert get_dataflow_engine() == "sets"
        assert get_dataflow_engine() == before

    def test_engines_agree_on_framework_problem(self):
        cfg = cfg_of("x = 1;\nwhile (x) {\nx = x - 1;\n}\nwrite(x);")
        problem = GenKillProblem(
            gen=lambda n: frozenset({n}) if n % 2 else frozenset(),
            kill=lambda n: frozenset({n - 1}),
            direction=FORWARD,
        )
        reference = solve_dataflow(cfg, problem, engine="sets")
        fast = solve_dataflow(cfg, problem, engine="bitset")
        assert reference.in_ == fast.in_
        assert reference.out == fast.out

    def test_custom_transfer_takes_the_sets_path(self):
        """A subclass overriding ``transfer`` is not a pure gen/kill
        problem; the bitset engine must defer to the reference solver
        rather than mis-encode it."""

        class Clamp(GenKillProblem):
            def transfer(self, node_id, value):
                return frozenset(list(sorted(value))[:1])

        cfg = cfg_of("x = 1;\ny = 2;\nwrite(y);")
        problem = Clamp(
            gen=lambda n: frozenset({n}),
            kill=lambda n: frozenset(),
            direction=FORWARD,
        )
        reference = solve_dataflow(cfg, problem, engine="sets")
        fast = solve_dataflow(cfg, problem, engine="bitset")
        assert reference.in_ == fast.in_
        assert reference.out == fast.out
        for node_id, facts in fast.out.items():
            assert len(facts) <= 1
