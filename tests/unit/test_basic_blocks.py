"""Unit tests for the basic-block partition."""

from repro.cfg.basic_blocks import compute_basic_blocks
from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program


def blocks_of(source):
    cfg = build_cfg(parse_program(source))
    return cfg, compute_basic_blocks(cfg)


class TestPartition:
    def test_every_node_assigned(self):
        cfg, by_node = blocks_of("x = 1;\nif (c)\ny = 2;\nz = 3;")
        assert set(by_node) == set(cfg.nodes)

    def test_straight_line_grouped(self):
        cfg, by_node = blocks_of("x = 1;\ny = 2;\nz = 3;")
        assert by_node[1] is by_node[2]
        assert by_node[2] is by_node[3]

    def test_branch_splits_blocks(self):
        cfg, by_node = blocks_of("if (c)\nx = 1;\ny = 2;")
        assert by_node[1] is not by_node[2]
        assert by_node[2] is not by_node[3]

    def test_branch_targets_lead_blocks(self):
        cfg, by_node = blocks_of("if (c)\nx = 1;\ny = 2;")
        assert by_node[2].leader == 2
        assert by_node[3].leader == 3

    def test_label_target_leads_block(self):
        cfg, by_node = blocks_of("goto L;\nL: x = 1;\ny = 2;")
        # The labelled statement has two predecessors (fall + jump)...
        # actually the goto jumps to it and nothing falls in, but the
        # goto itself ends a block.
        assert by_node[2].leader == 2
        assert by_node[2].node_ids == [2, 3]

    def test_jump_ends_block(self):
        cfg, by_node = blocks_of("while (c) {\nx = 1;\nbreak;\n}\ny = 2;")
        break_block = by_node[3]
        assert break_block.node_ids[-1] == 3

    def test_nodes_within_block_are_consecutive_flow(self):
        cfg, by_node = blocks_of("x = 1;\ny = 2;\nz = 3;")
        block = by_node[1]
        for first, second in zip(block.node_ids, block.node_ids[1:]):
            assert second in cfg.succ_ids(first)

    def test_entry_and_exit_isolated(self):
        cfg, by_node = blocks_of("x = 1;")
        assert by_node[cfg.entry_id].node_ids == [cfg.entry_id]
        assert by_node[cfg.exit_id].node_ids[0] == cfg.exit_id

    def test_block_indices_unique(self):
        cfg, by_node = blocks_of("if (c)\nx = 1;\nelse\ny = 2;\nz = 3;")
        indices = {block.index for block in by_node.values()}
        leaders = {block.leader for block in by_node.values()}
        assert len(indices) == len(leaders)
