"""Unit tests for the error hierarchy, source locations, tokens, and
AST helpers."""

import pytest

from repro.lang.ast_nodes import (
    Binary,
    Block,
    Break,
    Call,
    Continue,
    Goto,
    If,
    Num,
    Return,
    Skip,
    Unary,
    Var,
    is_jump,
    walk_statements,
)
from repro.lang.errors import (
    AnalysisError,
    InterpreterError,
    LexError,
    ParseError,
    SlangError,
    SliceError,
    SourceLocation,
    ValidationError,
)
from repro.lang.parser import parse_program
from repro.lang.tokens import Token, TokenKind


class TestSourceLocation:
    def test_str(self):
        assert str(SourceLocation(3, 7)) == "3:7"

    def test_ordering(self):
        assert SourceLocation(1, 9) < SourceLocation(2, 1)
        assert SourceLocation(2, 1) < SourceLocation(2, 5)

    def test_equality_and_hash(self):
        assert SourceLocation(1, 1) == SourceLocation(1, 1)
        assert len({SourceLocation(1, 1), SourceLocation(1, 1)}) == 1


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            LexError,
            ParseError,
            ValidationError,
            AnalysisError,
            SliceError,
            InterpreterError,
        ],
    )
    def test_all_derive_from_slang_error(self, cls):
        assert issubclass(cls, SlangError)

    def test_message_without_location(self):
        error = SlangError("boom")
        assert str(error) == "boom"
        assert error.location is None

    def test_message_with_location(self):
        error = SlangError("boom", SourceLocation(2, 3))
        assert str(error).startswith("2:3: boom")

    def test_excerpt_with_caret(self):
        source = "x = 1;\ny = @;"
        error = SlangError("bad", SourceLocation(2, 5), source)
        text = str(error)
        assert "y = @;" in text
        assert text.splitlines()[-1].strip() == "^"
        assert text.splitlines()[-1].index("^") == 4 + 4  # indent + col-1

    def test_excerpt_out_of_range_line(self):
        error = SlangError("bad", SourceLocation(99, 1), "one line")
        assert str(error) == "99:1: bad"


class TestToken:
    def test_str(self):
        token = Token(TokenKind.IDENT, "abc", SourceLocation(1, 2))
        assert "IDENT" in str(token)
        assert "abc" in str(token)

    def test_int_token_value(self):
        token = Token(TokenKind.INT, "12", SourceLocation(1, 1), value=12)
        assert token.value == 12

    def test_frozen(self):
        token = Token(TokenKind.SEMI, ";", SourceLocation(1, 1))
        with pytest.raises(AttributeError):
            token.text = "!"


class TestAstHelpers:
    def test_is_jump(self):
        assert is_jump(Break())
        assert is_jump(Continue())
        assert is_jump(Return())
        assert is_jump(Goto(target="L"))
        assert not is_jump(Skip())

    def test_walk_statements_lexical_order(self):
        program = parse_program(
            "a = 1;\nif (c) {\nb = 2;\nwhile (d)\ne = 3;\n}\nf = 4;"
        )
        lines = [
            stmt.line
            for top in program.body
            for stmt in walk_statements(top)
            if not isinstance(stmt, Block)
        ]
        assert lines == sorted(lines)

    def test_walk_includes_switch_arms(self):
        program = parse_program(
            "switch (c) { case 1: x = 1; case 2: y = 2; }"
        )
        kinds = [type(s).__name__ for s in program.statements()]
        assert kinds.count("Assign") == 2

    def test_walk_includes_for_header_parts(self):
        program = parse_program("for (i = 0; i < 2; i = i + 1) x = 1;")
        assigns = [
            s for s in program.statements() if type(s).__name__ == "Assign"
        ]
        assert len(assigns) == 3  # init, step, body

    def test_expression_equality_is_structural(self):
        first = Binary("+", Var("x"), Num(1))
        second = Binary("+", Var("x"), Num(1))
        assert first == second
        assert Unary("-", first) == Unary("-", second)
        assert Call("f", (first,)) == Call("f", (second,))

    def test_statement_equality_ignores_line_and_label(self):
        first = parse_program("x = 1;").body[0]
        second = parse_program("\n\nL: x = 1;").body[0]
        assert first == second


class TestIntrinsicsRegistry:
    def test_names_listed(self):
        from repro.interp.intrinsics import DEFAULT_INTRINSICS

        names = DEFAULT_INTRINSICS.names()
        assert {"f1", "f2", "f3", "g1", "g2"} <= set(names)

    def test_with_function_is_copy_on_write(self):
        from repro.interp.intrinsics import DEFAULT_INTRINSICS

        extended = DEFAULT_INTRINSICS.with_function("plus1", lambda x: x + 1)
        assert "plus1" in extended.names()
        assert "plus1" not in DEFAULT_INTRINSICS.names()

    def test_opaque_function_deterministic_and_bounded(self):
        from repro.interp.intrinsics import opaque_function

        value = opaque_function("mystery", [1, 2])
        assert value == opaque_function("mystery", [1, 2])
        assert -1000 <= value <= 1000
        assert value != opaque_function("mystery", [2, 1])
