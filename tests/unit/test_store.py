"""Unit tests for the durable on-disk analysis store (DESIGN.md §13).

The durability contract under test:

* a crash mid-``put`` never leaves a half-written entry visible under
  its real key — only a ``*.tmp.*`` orphan, swept at the next startup;
* a checksum mismatch (bit rot, torn page, injected corruption) is
  **quarantined** — moved aside, counted, never served;
* the footprint bound evicts least-recently-*used* entries (a read
  refreshes recency);
* a second store instance over the same root serves the first one's
  entries byte-identically — the warm-restart property.
"""

import json
import os

import pytest

from repro.service.store import DurableStore, payload_store_key


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "store")


def entry_path(store, key):
    return os.path.join(store.root, "objects", key[:2], key)


class TestContentAddressing:
    def test_key_is_deterministic(self):
        assert payload_store_key("abc", "agrawal", 15, "positives") == (
            payload_store_key("abc", "agrawal", 15, "positives")
        )

    def test_every_component_changes_the_key(self):
        base = payload_store_key("abc", "agrawal", 15, "positives")
        assert payload_store_key("abd", "agrawal", 15, "positives") != base
        assert payload_store_key("abc", "ball-horwitz", 15, "positives") != base
        assert payload_store_key("abc", "agrawal", 16, "positives") != base
        assert payload_store_key("abc", "agrawal", 15, "sum") != base
        assert payload_store_key("abc", "agrawal", 15, "positives", "p") != base


class TestRoundTrip:
    def test_put_get_roundtrip(self, root):
        store = DurableStore(root)
        key = payload_store_key("k", "agrawal", 1, "x")
        assert store.put(key, b"payload bytes")
        assert store.get(key) == b"payload bytes"
        assert store.hits == 1 and store.misses == 0 and store.puts == 1

    def test_missing_key_is_a_miss(self, root):
        store = DurableStore(root)
        assert store.get("0" * 64) is None
        assert store.misses == 1 and store.hits == 0

    def test_json_roundtrip_is_byte_stable(self, root):
        store = DurableStore(root)
        payload = {"nodes": [3, 1, 2], "degraded": False}
        store.put_json("a" * 64, payload)
        assert store.get_json("a" * 64) == payload

    def test_stats_shape(self, root):
        store = DurableStore(root, max_bytes=1024)
        store.put("b" * 64, b"x")
        store.get("b" * 64)
        store.get("c" * 64)
        stats = store.stats()
        assert stats["root"] == root
        assert stats["max_bytes"] == 1024
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bytes"] > 0


class TestAtomicVisibility:
    def test_failed_put_leaves_no_visible_entry(self, root, monkeypatch):
        """A crash at the rename (the last durability step) must not
        make a partial entry readable under the real key."""
        store = DurableStore(root)
        key = "d" * 64

        def refuse(*args, **kwargs):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", refuse)
        assert store.put(key, b"never visible") is False
        monkeypatch.undo()
        assert store.errors == 1
        assert store.get(key) is None
        assert store.entry_count() == 0

    def test_orphan_temp_files_are_swept_at_startup(self, root):
        first = DurableStore(root)
        key = "e" * 64
        first.put(key, b"survivor")
        # A crash mid-write leaves exactly this artefact behind: a temp
        # file next to the final name, never renamed.
        orphan = entry_path(first, key) + ".tmp.123"
        with open(orphan, "wb") as handle:
            handle.write(b"torn half-write")
        second = DurableStore(root)
        assert not os.path.exists(orphan)
        assert second.get(key) == b"survivor"
        assert second.entry_count() == 1

    def test_second_instance_serves_warm_bytes_identically(self, root):
        """The warm-restart property: a fresh process over the same
        root answers from disk, byte-for-byte."""
        payload = json.dumps({"slice": [1, 2, 3]}).encode()
        key = payload_store_key("warm", "agrawal", 2, "y")
        DurableStore(root).put(key, payload)
        restarted = DurableStore(root)
        assert restarted.get(key) == payload
        assert restarted.hits == 1


class TestQuarantine:
    def test_flipped_bit_is_quarantined_not_served(self, root):
        store = DurableStore(root)
        key = "f" * 64
        store.put(key, b"precious result")
        path = entry_path(store, key)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0x01  # rot one payload bit
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert store.get(key) is None
        assert store.quarantined == 1
        assert not os.path.exists(path)
        quarantine = os.path.join(root, "quarantine")
        assert os.listdir(quarantine) == [key]

    def test_truncated_entry_is_quarantined(self, root):
        store = DurableStore(root)
        key = "1" * 64
        store.put(key, b"will be torn")
        path = entry_path(store, key)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.get(key) is None
        assert store.quarantined == 1

    def test_armed_corruption_round_trips_through_quarantine(self, root):
        """The ``store-corruption`` fault end to end: the armed put
        writes a bad entry, the next get refuses to serve it, and a
        clean re-put recovers."""
        store = DurableStore(root)
        key = "2" * 64
        store.arm_corruption()
        store.put(key, b"doomed")
        assert store.get(key) is None
        assert store.quarantined == 1
        store.put(key, b"doomed")
        assert store.get(key) == b"doomed"
        assert store.quarantined == 1

    def test_garbage_json_under_good_checksum_is_quarantined(self, root):
        store = DurableStore(root)
        key = "3" * 64
        store.put(key, b"not json at all")
        assert store.get_json(key) is None
        assert store.quarantined == 1
        assert store.hits == 0


class TestEviction:
    def test_lru_eviction_keeps_recently_used(self, root):
        store = DurableStore(root, max_bytes=400, fsync=False)
        keys = [str(i) * 64 for i in range(4, 9)]
        for i, key in enumerate(keys):
            store.put(key, bytes(120))
            # Pin recency explicitly (the sub-second clock can tie):
            # the first entry stays hot, the rest age in write order.
            stamp = 2_000_000_000 if i == 0 else 1_000_000_000 + i
            try:
                os.utime(entry_path(store, key), (stamp, stamp))
            except FileNotFoundError:
                pass  # already evicted mid-loop; recency no longer matters
        assert store.evictions > 0
        assert store.get(keys[0]) is not None
        assert store.get(keys[1]) is None

    def test_unbounded_store_never_evicts(self, root):
        store = DurableStore(root, max_bytes=0, fsync=False)
        for i in range(10):
            store.put(str(i) * 64, bytes(256))
        assert store.evictions == 0
        assert store.entry_count() == 10
