"""Unit tests for the SL lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Lexer, tokenize
from repro.lang.tokens import KEYWORDS, TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only_yields_only_eof(self):
        assert kinds("   \t\n\r\n  ") == [TokenKind.EOF]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42
        assert token.text == "42"

    def test_zero_literal(self):
        assert tokenize("0")[0].value == 0

    def test_identifier(self):
        token = tokenize("positives")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "positives"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("_v2_x")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "_v2_x"

    @pytest.mark.parametrize("word,kind", sorted(KEYWORDS.items()))
    def test_every_keyword(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        # `iffy` must not lex as `if` + `fy`.
        token = tokenize("iffy")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "iffy"


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.AND),
            ("||", TokenKind.OR),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("=", TokenKind.ASSIGN),
            ("!", TokenKind.NOT),
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("%", TokenKind.PERCENT),
            (";", TokenKind.SEMI),
            (":", TokenKind.COLON),
            (",", TokenKind.COMMA),
            ("(", TokenKind.LPAREN),
            (")", TokenKind.RPAREN),
            ("{", TokenKind.LBRACE),
            ("}", TokenKind.RBRACE),
        ],
    )
    def test_single_operator(self, text, kind):
        assert tokenize(text)[0].kind is kind

    def test_maximal_munch(self):
        # `<=` lexes as one token, not `<` `=`.
        assert kinds("a<=b")[:3] == [
            TokenKind.IDENT,
            TokenKind.LE,
            TokenKind.IDENT,
        ]

    def test_adjacent_comparison_and_assign(self):
        assert kinds("a==b=c")[:5] == [
            TokenKind.IDENT,
            TokenKind.EQ,
            TokenKind.IDENT,
            TokenKind.ASSIGN,
            TokenKind.IDENT,
        ]


class TestComments:
    def test_line_comment(self):
        assert texts("x = 1; // the answer\ny = 2;") == [
            "x", "=", "1", ";", "y", "=", "2", ";",
        ]

    def test_line_comment_at_eof(self):
        assert kinds("// nothing") == [TokenKind.EOF]

    def test_block_comment(self):
        assert texts("x /* ignore\nme */ = 1;") == ["x", "=", "1", ";"]

    def test_block_comment_containing_stars(self):
        assert texts("/* ** * */ x") == ["x"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("x = 1; /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("x = 1;\n  y = 2;")
        x, _, _, _, y = tokens[:5]
        assert (x.location.line, x.location.column) == (1, 1)
        assert (y.location.line, y.location.column) == (2, 3)

    def test_positions_after_comment(self):
        tokens = tokenize("// comment line\nz = 3;")
        assert tokens[0].location.line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("x = 1 @ 2;")
        assert "@" in str(info.value)

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_lone_ampersand(self):
        with pytest.raises(LexError):
            tokenize("a & b")

    def test_lone_pipe(self):
        with pytest.raises(LexError):
            tokenize("a | b")


class TestIterator:
    def test_tokens_generator_terminates_at_eof(self):
        lexer = Lexer("a b c")
        tokens = list(lexer.tokens())
        assert tokens[-1].kind is TokenKind.EOF
        assert len(tokens) == 4
