"""Unit tests for the tracing layer and the Prometheus exposition.

The contracts under test (DESIGN.md §10):

* spans nest correctly and always close — including on the error paths —
  so an exported trace never contains an open (``dur_ns is None``) span;
* with no tracer installed, :func:`trace_span` returns the one shared
  null context manager (no allocation) and :func:`trace_event` is a
  no-op;
* :func:`chrome_trace` emits schema-valid trace-event JSON (complete
  ``"X"`` events with µs timestamps, instant ``"i"`` events) that
  ``json.dumps`` round-trips;
* :func:`render_prometheus` / :func:`parse_prometheus` round-trip a
  stats snapshot exactly (cumulative buckets, ``+Inf``, label escaping).
"""

import json

import pytest

from repro.obs.prom import (
    PROM_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.tracer import (
    Tracer,
    chrome_trace,
    current_tracer,
    phase_totals,
    span_tree,
    summary_table,
    trace_event,
    trace_span,
    use_tracer,
)
from repro.obs.tracer import _NULL_SPAN  # the shared disabled-path singleton
from repro.service.stats import ServiceStats


class TestTracerNesting:
    def test_spans_nest_and_close(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", kind="demo") as outer:
                with trace_span("inner-a"):
                    pass
                with trace_span("inner-b") as inner:
                    inner.set(items=3)
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == [
            "inner-a",
            "inner-b",
        ]
        assert outer.args == {"kind": "demo"}
        assert tracer.roots[0].children[1].args == {"items": 3}
        assert tracer.open_spans == 0
        for span in tracer.walk():
            assert span.dur_ns is not None, span.name

    def test_children_timed_within_parent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
        outer, (inner,) = tracer.roots[0], tracer.roots[0].children
        assert inner.start_ns >= outer.start_ns
        assert (
            inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
        )

    def test_error_path_closes_span_and_records_type(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(ValueError):
                with trace_span("outer"):
                    with trace_span("inner"):
                        raise ValueError("boom")
        outer = tracer.roots[0]
        assert tracer.open_spans == 0
        assert outer.dur_ns is not None
        assert outer.error == "ValueError"
        assert outer.children[0].error == "ValueError"

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer"):
                trace_event("budget-exceeded", reason="rounds", phase="x")
        (event,) = tracer.roots[0].events
        assert event.name == "budget-exceeded"
        assert event.args == {"reason": "rounds", "phase": "x"}

    def test_event_outside_any_span_becomes_root(self):
        tracer = Tracer()
        with use_tracer(tracer):
            trace_event("shed", inflight=9)
        (root,) = tracer.roots
        assert root.name == "shed"
        assert root.dur_ns == 0


class TestDisabledPath:
    def test_trace_span_returns_the_shared_null_singleton(self):
        assert current_tracer() is None
        assert trace_span("anything") is _NULL_SPAN
        assert trace_span("other", attr=1) is _NULL_SPAN

    def test_null_span_is_a_silent_context_manager(self):
        with trace_span("nothing") as span:
            span.set(ignored=True)  # must not raise, must not record

    def test_trace_event_is_a_noop_without_tracer(self):
        trace_event("shed", inflight=1)  # must not raise

    def test_use_tracer_restores_previous_state(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with use_tracer(None):
                assert trace_span("off") is _NULL_SPAN
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestChromeTrace:
    def _traced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("slice", algorithm="agrawal"):
                with trace_span("analyze"):
                    pass
                trace_event("degraded", reason="rounds")
            with pytest.raises(RuntimeError):
                with trace_span("failing"):
                    raise RuntimeError("x")
        return tracer

    def test_schema_valid_json(self):
        trace = chrome_trace(self._traced())
        text = json.dumps(trace)  # must be JSON-serialisable as-is
        parsed = json.loads(text)
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        assert {e["name"] for e in events} >= {
            "slice",
            "analyze",
            "degraded",
            "failing",
        }
        for event in events:
            assert event["cat"] == "slang"
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], float) and event["ts"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
            if event["ph"] == "X":
                assert isinstance(event["dur"], float)
                assert event["dur"] >= 0
            else:
                assert event["s"] == "t"

    def test_error_and_args_exported(self):
        events = chrome_trace(self._traced())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["slice"]["args"]["algorithm"] == "agrawal"
        assert by_name["failing"]["args"]["error"] == "RuntimeError"
        assert by_name["degraded"]["args"]["reason"] == "rounds"

    def test_non_jsonable_args_are_stringified(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("s", obj={1, 2}):
                pass
        (event,) = chrome_trace(tracer)["traceEvents"]
        assert isinstance(event["args"]["obj"], str)
        json.dumps(chrome_trace(tracer))


class TestSpanTree:
    def test_shape_and_empty_key_omission(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", a=1):
                with trace_span("leaf"):
                    trace_event("tick")
        (outer,) = span_tree(tracer)
        assert outer["name"] == "outer"
        assert outer["args"] == {"a": 1}
        (leaf,) = outer["children"]
        # Empty collections are omitted, not emitted as [] / {}.
        assert "children" not in leaf
        assert "args" not in leaf
        assert "events" not in outer
        assert leaf["events"][0]["name"] == "tick"
        assert "args" not in leaf["events"][0]
        assert leaf["dur_us"] >= 0 and leaf["start_us"] >= 0

    def test_error_key(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(KeyError):
                with trace_span("bad"):
                    raise KeyError("k")
        assert span_tree(tracer)[0]["error"] == "KeyError"


class TestAggregates:
    def test_phase_totals_aggregate_by_name(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("round"):
                pass
            with trace_span("round"):
                pass
            with trace_span("other"):
                pass
        totals = phase_totals(tracer)
        assert totals["round"][0] == 2
        assert totals["other"][0] == 1
        assert totals["round"][1] >= 0.0

    def test_summary_table_mentions_every_phase(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("analyze"):
                with trace_span("parse"):
                    pass
        table = summary_table(tracer)
        assert "analyze" in table
        assert "parse" in table
        assert "(wall)" in table


class TestPrometheus:
    def test_content_type(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain")
        assert "0.0.4" in PROM_CONTENT_TYPE

    def _payload(self):
        stats = ServiceStats()
        stats.record("slice", "agrawal", 0.002)
        stats.record("slice", "agrawal", 0.2, error=True)
        stats.record("compare", None, 0.01)
        stats.record_event("degraded")
        stats.record_event("shed", 3)
        stats.record_diagnostics({"SL101": 2})
        stats.record_phases({"parse": 0.001, "fig7-traversal": 0.004})
        payload = stats.snapshot()
        payload["cache"] = {
            "capacity": 8,
            "entries": 1,
            "hits": 10,
            "misses": 2,
            "evictions": 0,
            "hit_rate": 0.8333,
        }
        payload["admission"] = {"inflight": 0, "shed": 3, "max_inflight": 8}
        return payload

    def test_round_trip_reconciles_exactly(self):
        payload = self._payload()
        metrics = parse_prometheus(render_prometheus(payload))
        requests = metrics["slang_requests_total"]
        assert requests[(("algorithm", "agrawal"), ("op", "slice"))] == 2
        assert requests[(("op", "compare"),)] == 1
        assert (
            metrics["slang_errors_total"][
                (("algorithm", "agrawal"), ("op", "slice"))
            ]
            == 1
        )
        events = metrics["slang_events_total"]
        assert events[(("event", "degraded"),)] == 1
        assert events[(("event", "shed"),)] == 3
        assert (
            metrics["slang_diagnostics_total"][(("code", "SL101"),)] == 2
        )
        assert metrics["slang_cache_hits_total"][()] == 10
        assert metrics["slang_cache_misses_total"][()] == 2
        assert metrics["slang_cache_entries"][()] == 1
        assert metrics["slang_inflight_requests"][()] == 0
        assert metrics["slang_shed_total"][()] == 3

    def test_histograms_are_cumulative_and_end_at_count(self):
        payload = self._payload()
        metrics = parse_prometheus(render_prometheus(payload))
        for key, snapshot in payload["latency"].items():
            op, _, algorithm = key.partition(":")
            labels = {"op": op}
            if algorithm:
                labels["algorithm"] = algorithm
            buckets = [
                (dict(label_tuple)["le"], value)
                for label_tuple, value in metrics[
                    "slang_request_duration_seconds_bucket"
                ].items()
                if dict(label_tuple).get("op") == op
                and dict(label_tuple).get("algorithm") == labels.get(
                    "algorithm"
                )
            ]
            ordered = sorted(
                buckets,
                key=lambda item: float("inf")
                if item[0] == "+Inf"
                else float(item[0]),
            )
            values = [value for _, value in ordered]
            assert values == sorted(values), key  # cumulative → monotone
            assert ordered[-1][0] == "+Inf"
            assert values[-1] == snapshot["count"]
            count_key = tuple(sorted(labels.items()))
            assert (
                metrics["slang_request_duration_seconds_count"][count_key]
                == snapshot["count"]
            )

    def test_phase_histograms_exported(self):
        metrics = parse_prometheus(render_prometheus(self._payload()))
        counts = metrics["slang_phase_duration_seconds_count"]
        assert counts[(("phase", "parse"),)] == 1
        assert counts[(("phase", "fig7-traversal"),)] == 1

    def test_label_escaping_round_trips(self):
        stats = ServiceStats()
        stats.record_diagnostics({'odd"code\\with\nnewline': 1})
        payload = stats.snapshot()
        metrics = parse_prometheus(render_prometheus(payload))
        assert (
            metrics["slang_diagnostics_total"][
                (("code", 'odd"code\\with\nnewline'),)
            ]
            == 1
        )


class TestSDGIndexFamily:
    """The ``slang_sdg_index_*`` counters must reconcile with the event
    ledger exactly like the rest of the ``slang_sdg_*`` family — and,
    like it, emit no series at all for events that never fired."""

    PAIRS = (
        ("sdg-index:builds", "slang_sdg_index_builds_total"),
        ("sdg-index:mask-hits", "slang_sdg_index_mask_hits_total"),
        ("sdg-index:pressure-skips", "slang_sdg_index_pressure_skips_total"),
        (
            "sdg-index:incremental-salvages",
            "slang_sdg_index_incremental_salvages_total",
        ),
    )

    def test_counters_reconcile_with_events(self):
        stats = ServiceStats()
        stats.record_event("sdg-index:builds", 1)
        stats.record_event("sdg-index:mask-hits", 7)
        stats.record_event("sdg-index:pressure-skips", 2)
        stats.record_event("sdg-index:incremental-salvages", 3)
        payload = stats.snapshot()
        metrics = parse_prometheus(render_prometheus(payload))
        for event, name in self.PAIRS:
            assert metrics[name][()] == payload["events"][event], name

    def test_absent_events_render_no_series(self):
        metrics = parse_prometheus(render_prometheus(ServiceStats().snapshot()))
        for _, name in self.PAIRS:
            assert name not in metrics, name

    def test_incremental_family_carries_index_fields(self):
        from repro.service.incremental import UnitCache

        cache = UnitCache(capacity=8)
        cache.put_index("k", object())
        cache.stats.record("indexes_salvaged", 4)
        payload = ServiceStats().snapshot()
        payload["incremental"] = {"enabled": True, **cache.snapshot()}
        metrics = parse_prometheus(render_prometheus(payload))
        assert metrics["slang_incremental_indexes_salvaged_total"][()] == 4
        assert metrics["slang_incremental_index_entries"][()] == 1
