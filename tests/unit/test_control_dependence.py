"""Unit tests for Ferrante–Ottenstein–Warren control dependence."""

import pytest

from repro.analysis.control_dependence import compute_control_dependence
from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_program


def cdg_of(source):
    cfg = build_cfg(parse_program(source))
    pdt = build_postdominator_tree(cfg)
    return cfg, compute_control_dependence(cfg, pdt)


class TestBasics:
    def test_then_branch_depends_on_if(self):
        cfg, cdg = cdg_of("if (c)\nx = 1;\ny = 2;")
        assert cdg.parents_of(2) == [1]

    def test_join_does_not_depend_on_if(self):
        cfg, cdg = cdg_of("if (c)\nx = 1;\ny = 2;")
        assert 1 not in cdg.parents_of(3)

    def test_both_branches_depend_with_labels(self):
        cfg, cdg = cdg_of("if (c)\nx = 1;\nelse\ny = 2;")
        assert (1, 2, "true") in set(cdg.edges())
        assert (1, 3, "false") in set(cdg.edges())

    def test_top_level_depends_on_entry(self):
        cfg, cdg = cdg_of("x = 1;\ny = 2;")
        assert cdg.parents_of(1) == [cfg.entry_id]
        assert cdg.parents_of(2) == [cfg.entry_id]

    def test_loop_body_depends_on_loop(self):
        cfg, cdg = cdg_of("while (c)\nx = 1;")
        assert 1 in cdg.parents_of(2)

    def test_loop_predicate_self_dependence(self):
        cfg, cdg = cdg_of("while (c)\nx = 1;")
        assert 1 in cdg.parents_of(1)

    def test_nothing_depends_on_unconditional_jump(self):
        cfg, cdg = cdg_of("while (c) {\nx = 1;\nbreak;\n}")
        break_node = 3
        assert cdg.children_of(break_node) == []

    def test_statement_after_conditional_break_depends_on_its_if(self):
        source = (
            "while (c) {\n"
            "if (d)\n"
            "break;\n"
            "x = 1;\n"
            "}"
        )
        cfg, cdg = cdg_of(source)
        # x = 1 (node 4) runs only when the `if (d)` (node 2) is false.
        assert 2 in cdg.parents_of(4)

    def test_switch_arms_depend_on_switch_with_case_labels(self):
        cfg, cdg = cdg_of(
            "switch (c) {\ncase 1: x = 1;\nbreak;\ncase 2: y = 2;\n}"
        )
        edges = set(cdg.edges())
        assert (1, 2, "case 1") in edges
        assert (1, 4, "case 2") in edges


class TestAccessors:
    def test_children_sorted_dedup(self):
        cfg, cdg = cdg_of("if (c) {\nx = 1;\ny = 2;\n}")
        assert cdg.children_of(1) == [2, 3]

    def test_parent_edges(self):
        cfg, cdg = cdg_of("if (c)\nx = 1;")
        assert cdg.parent_edges_of(2) == [(1, "true")]

    def test_edge_pairs(self):
        cfg, cdg = cdg_of("if (c)\nx = 1;")
        assert (1, 2) in cdg.edge_pairs()

    def test_len_counts_labelled_edges(self):
        cfg, cdg = cdg_of("if (c)\nx = 1;")
        assert len(cdg) == len(list(cdg.edges()))


class TestPreconditions:
    def test_mismatched_tree_rejected(self):
        cfg = build_cfg(parse_program("x = 1;"))
        tree = build_postdominator_tree(cfg, virtual_entry_exit_edge=False)
        with pytest.raises(AnalysisError):
            compute_control_dependence(cfg, tree)

    def test_can_skip_virtual_edge_consistently(self):
        cfg = build_cfg(parse_program("x = 1;"))
        tree = build_postdominator_tree(cfg, virtual_entry_exit_edge=False)
        cdg = compute_control_dependence(
            cfg, tree, include_virtual_entry_edge=False
        )
        # Without the dummy edge nothing is control dependent at all in a
        # straight-line program.
        assert len(cdg) == 0


class TestPaperFig4c:
    """Control dependences of Fig. 3a per the paper's Fig. 4c."""

    def test_key_dependences(self):
        from repro.corpus import PAPER_PROGRAMS

        cfg, cdg = cdg_of(PAPER_PROGRAMS["fig3a"].source)
        pairs = cdg.edge_pairs()
        # Top-level statements hang off the dummy node 0.
        for top in (1, 2, 3, 14, 15):
            assert (0, top) in pairs
        # The loop structure.
        for dependent in (4, 5, 13):
            assert (3, dependent) in pairs
        assert (5, 7) in pairs and (5, 8) in pairs
        assert (9, 11) in pairs and (9, 12) in pairs
        # Nothing depends on the unconditional gotos.
        for jump in (7, 11, 13):
            assert cdg.children_of(jump) == []
