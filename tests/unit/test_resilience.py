"""Unit tests for the resilience primitives (budgets, admission,
backoff) in :mod:`repro.service.resilience`."""

import threading
import time

import pytest

from repro.service.resilience import (
    AdmissionGate,
    Budget,
    BudgetExceededError,
    BudgetSpec,
    EngineLimits,
    OverloadedError,
    PayloadTooLargeError,
    RetryPolicy,
    budget_round,
    budget_tick,
    current_budget,
    use_budget,
)


class TestBudget:
    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        for _ in range(100):
            budget.tick("x")
            budget.tick_round("x")
        budget.check_nodes(10**9, "x")
        assert budget.remaining_seconds() is None

    def test_deadline_raises_with_reason_and_phase(self):
        budget = Budget(deadline_seconds=0.0)
        time.sleep(0.005)
        with pytest.raises(BudgetExceededError) as info:
            budget.tick("fig7-traversal")
        assert info.value.reason == "deadline"
        assert info.value.phase == "fig7-traversal"

    def test_traversal_cap(self):
        budget = Budget(max_traversals=2)
        budget.tick_round("a")
        budget.tick_round("a")
        with pytest.raises(BudgetExceededError) as info:
            budget.tick_round("a")
        assert info.value.reason == "traversals"
        assert budget.rounds == 3

    def test_node_cap(self):
        budget = Budget(max_nodes=10)
        budget.check_nodes(10, "dataflow")
        with pytest.raises(BudgetExceededError) as info:
            budget.check_nodes(11, "dataflow")
        assert info.value.reason == "nodes"

    def test_exhaust_traversals_stops_next_round_only(self):
        """After exhaustion the *next* round raises, but plain ticks
        (zero-round algorithms like Fig. 13) still pass."""
        budget = Budget(deadline_seconds=60.0)
        budget.exhaust_traversals()
        budget.tick("fig13-jump")  # still fine
        with pytest.raises(BudgetExceededError) as info:
            budget.tick_round("fig7-traversal")
        assert info.value.reason == "traversals"

    def test_exhaust_traversals_mid_iteration(self):
        budget = Budget(max_traversals=100)
        budget.tick_round("a")
        budget.tick_round("a")
        budget.exhaust_traversals()
        assert budget.max_traversals == 2
        with pytest.raises(BudgetExceededError):
            budget.tick_round("a")

    def test_remaining_seconds_clamps_at_zero(self):
        budget = Budget(deadline_seconds=0.0)
        time.sleep(0.002)
        assert budget.remaining_seconds() == 0.0
        assert budget.elapsed_seconds() > 0.0


class TestBudgetContext:
    def test_default_is_none_and_helpers_are_noops(self):
        assert current_budget() is None
        budget_tick("x")
        budget_round("x")

    def test_use_budget_installs_and_restores(self):
        budget = Budget(max_traversals=1)
        with use_budget(budget):
            assert current_budget() is budget
            budget_round("x")
            with pytest.raises(BudgetExceededError):
                budget_round("x")
        assert current_budget() is None

    def test_threads_do_not_inherit_budget(self):
        seen = []
        with use_budget(Budget(max_traversals=0)):
            thread = threading.Thread(
                target=lambda: seen.append(current_budget())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestBudgetSpec:
    def test_from_dict_roundtrip(self):
        spec = BudgetSpec.from_dict(
            {"deadline_ms": 250, "max_traversals": 3, "max_nodes": 100}
        )
        assert spec.deadline_ms == 250
        assert spec.max_traversals == 3
        assert spec.to_dict() == {
            "deadline_ms": 250,
            "max_traversals": 3,
            "max_nodes": 100,
        }

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown budget field"):
            BudgetSpec.from_dict({"deadline": 5})

    @pytest.mark.parametrize(
        "payload",
        [
            {"deadline_ms": "fast"},
            {"max_traversals": True},
            {"max_nodes": -1},
        ],
    )
    def test_from_dict_rejects_bad_values(self, payload):
        with pytest.raises(ValueError):
            BudgetSpec.from_dict(payload)

    def test_client_can_only_tighten(self):
        limits = EngineLimits(deadline_seconds=1.0, max_traversals=10)
        budget = limits.budget_for(
            BudgetSpec(deadline_ms=5000, max_traversals=3, max_nodes=50)
        )
        # Client deadline (5s) is looser than the engine's (1s): engine
        # wins.  Client traversal cap (3) is tighter: client wins.
        assert budget.deadline is not None
        assert budget.deadline - budget.started <= 1.01
        assert budget.max_traversals == 3
        assert budget.max_nodes == 50

    def test_budget_for_without_spec_uses_engine_defaults(self):
        budget = EngineLimits().budget_for(None)
        assert budget.deadline is None
        assert budget.max_traversals is None
        assert budget.max_nodes is None


class TestEngineLimits:
    def test_degrade_policy_validated(self):
        with pytest.raises(ValueError, match="degrade"):
            EngineLimits(degrade="maybe")

    def test_admit_source(self):
        limits = EngineLimits(max_source_bytes=10)
        limits.admit_source("x" * 10)
        with pytest.raises(PayloadTooLargeError):
            limits.admit_source("x" * 11)
        EngineLimits().admit_source("x" * 10**6)  # unlimited


class TestAdmissionGate:
    def test_sheds_at_capacity(self):
        gate = AdmissionGate(max_inflight=1, retry_after=2.5)
        with gate.admit():
            with pytest.raises(OverloadedError) as info:
                with gate.admit():
                    pass
            assert info.value.retry_after == 2.5
        assert gate.snapshot() == {
            "inflight": 0,
            "max_inflight": 1,
            "shed": 1,
        }
        # Slot freed: admits again.
        with gate.admit():
            assert gate.inflight == 1

    def test_unbounded_gate_counts_but_never_sheds(self):
        gate = AdmissionGate()
        with gate.admit():
            with gate.admit():
                assert gate.inflight == 2
        assert gate.snapshot()["shed"] == 0

    def test_releases_slot_on_exception(self):
        gate = AdmissionGate(max_inflight=1)
        with pytest.raises(RuntimeError):
            with gate.admit():
                raise RuntimeError("boom")
        assert gate.inflight == 0


class TestRetryPolicy:
    def test_delay_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_seconds=0.1,
            multiplier=2.0,
            max_backoff_seconds=0.3,
            jitter=0.0,
        )
        rng = policy.rng()
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(2, rng) == pytest.approx(0.3)  # capped
        assert policy.delay(10, rng) == pytest.approx(0.3)

    def test_jitter_shrinks_within_bounds_and_is_seeded(self):
        policy = RetryPolicy(backoff_seconds=1.0, jitter=0.5, seed=42)
        delays_a = [policy.delay(0, policy.rng()) for _ in range(5)]
        delays_b = [policy.delay(0, policy.rng()) for _ in range(5)]
        assert delays_a == delays_b  # same seed, same schedule
        for delay in delays_a:
            assert 0.5 <= delay <= 1.0

    def test_retry_after_is_a_floor_not_a_target(self):
        """The server-sent Retry-After clamps the delay from below,
        after jitter: a backoff already above the floor is untouched
        (the exponential curve keeps spreading retries), one below it
        is lifted exactly to the floor (never hammer earlier than the
        server asked)."""
        policy = RetryPolicy(
            backoff_seconds=0.1, multiplier=2.0, jitter=0.0
        )
        rng = policy.rng()
        # Floor above the curve: every early attempt waits the floor.
        assert policy.delay(0, rng, floor=2.0) == pytest.approx(2.0)
        assert policy.delay(1, rng, floor=2.0) == pytest.approx(2.0)
        # Curve above the floor: the floor is inert.
        assert policy.delay(5, rng, floor=2.0) == pytest.approx(3.2)
        # No floor given behaves exactly as before.
        assert policy.delay(0, rng) == pytest.approx(0.1)

    def test_floor_applies_after_jitter(self):
        """Jitter only ever *shrinks* the backoff, so it must not be
        able to dip a delay below the server's floor — the floor is
        applied to the post-jitter value.  Pinned with a full-shrink
        jitter draw: jitter=1.0 can take the base arbitrarily close to
        zero, yet the delay never drops under the floor."""
        policy = RetryPolicy(backoff_seconds=1.0, jitter=1.0, seed=7)
        rng = policy.rng()
        delays = [policy.delay(0, rng, floor=0.75) for _ in range(50)]
        assert all(delay >= 0.75 for delay in delays)
        # The same draws without the floor do dip below it, proving the
        # clamp (and not a lucky rng) is what holds the line.
        bare = [policy.delay(0, policy.rng()) for _ in range(50)]
        assert any(delay < 0.75 for delay in bare)
