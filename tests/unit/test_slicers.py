"""Unit tests for slicer-level behaviours: guards, pruning, registry."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.lang.errors import SliceError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.conservative import conservative_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import (
    ALGORITHMS,
    algorithm_names,
    get_algorithm,
)
from repro.slicing.structured import (
    exit_diverting_predicates,
    structured_slice,
)
from repro.slicing import slice_program


class TestAgrawalOptions:
    def test_invalid_drive_tree(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        with pytest.raises(SliceError):
            agrawal_slice(
                analysis, SlicingCriterion(2, "x"), drive_tree="sideways"
            )

    def test_drive_trees_agree_on_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            analysis = analyze_program(entry.source)
            criterion = SlicingCriterion(*entry.criterion)
            pdt_driven = agrawal_slice(analysis, criterion)
            lst_driven = agrawal_slice(
                analysis, criterion, drive_tree="lexical"
            )
            assert pdt_driven.same_statements_as(lst_driven), entry.name

    def test_prune_is_noop_on_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            analysis = analyze_program(entry.source)
            criterion = SlicingCriterion(*entry.criterion)
            plain = agrawal_slice(analysis, criterion)
            pruned = agrawal_slice(analysis, criterion, prune_redundant=True)
            assert plain.same_statements_as(pruned), entry.name

    def test_pruned_restores_bh_equality_on_e2_example(self):
        # The erratum-E2 counterexample: a no-op continue at the end of a
        # while body, with an all-branches-return region after the loop.
        source = (
            "read(p);\n"
            "if (p > 0) {\n"
            "v = q - r;\n"
            "while (!eof()) {\n"
            "read(q);\n"
            "continue;\n"
            "}\n"
            "if (q < r)\n"
            "return 1;\n"
            "else\n"
            "return 2;\n"
            "}\n"
            "write(v);"
        )
        analysis = analyze_program(source)
        criterion = SlicingCriterion(13, "v")
        plain = agrawal_slice(analysis, criterion)
        pruned = agrawal_slice(analysis, criterion, prune_redundant=True)
        bh = ball_horwitz_slice(analysis, criterion)
        assert pruned.same_statements_as(bh)
        extras = set(plain.statement_nodes()) - set(bh.statement_nodes())
        for node_id in extras:
            assert analysis.cfg.nodes[node_id].is_jump

    def test_traversal_count_for_fig10(self):
        entry = PAPER_PROGRAMS["fig10a"]
        analysis = analyze_program(entry.source)
        result = agrawal_slice(analysis, SlicingCriterion(*entry.criterion))
        assert result.traversals == 2

    def test_explain_narrates_the_papers_walkthrough(self):
        entry = PAPER_PROGRAMS["fig10a"]
        analysis = analyze_program(entry.source)
        log = []
        agrawal_slice(
            analysis, SlicingCriterion(*entry.criterion), explain=log
        )
        text = "\n".join(log)
        # The §3 narration: node 4 skipped in traversal 1 (npd == nls ==
        # 9), nodes 7 and 2 included, node 4 included in traversal 2.
        assert "traversal 1: jump 4" in text and "9: skip" in text
        assert "traversal 1: jump 7" in text
        assert "closure adds [1]" in text
        assert "traversal 2: jump 4" in text
        assert "label L6" in text and "node 7" in text
        assert "2 productive traversal(s)" in text

    def test_explain_records_skips_and_final_slice(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        log = []
        result = agrawal_slice(
            analysis, SlicingCriterion(*entry.criterion), explain=log
        )
        text = "\n".join(log)
        assert "jump 11" in text and "skip" in text
        assert f"final slice after 1 productive traversal(s)" in text
        assert str(result.statement_nodes()) in text


class TestStructuredGuards:
    def test_unstructured_program_refused(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        with pytest.raises(SliceError):
            structured_slice(analysis, SlicingCriterion(15, "positives"))
        with pytest.raises(SliceError):
            conservative_slice(analysis, SlicingCriterion(15, "positives"))

    def test_force_overrides(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        result = structured_slice(
            analysis, SlicingCriterion(15, "positives"), force=True
        )
        assert result.notes

    def test_dead_code_refused(self):
        analysis = analyze_program("return;\nwrite(x);")
        with pytest.raises(SliceError) as info:
            structured_slice(analysis, SlicingCriterion(2, "x"))
        assert "unreachable" in str(info.value)

    def test_exit_diverting_predicate_detected(self):
        source = (
            "read(p);\n"
            "if (p) {\n"
            "if (p > 1)\n"
            "return 1;\n"
            "else\n"
            "return 2;\n"
            "}\n"
            "write(x);"
        )
        analysis = analyze_program(source)
        diverting = exit_diverting_predicates(analysis)
        assert diverting  # the inner if: both branches return
        with pytest.raises(SliceError) as info:
            structured_slice(analysis, SlicingCriterion(8, "x"))
        assert "E1" in str(info.value)

    def test_e1_counterexample_agrawal_vs_forced_structured(self):
        # The erratum-E1 program: Fig. 12 under-slices when forced.
        source = (
            "read(p);\n"
            "read(q);\n"
            "if (p) {\n"
            "if (q)\n"
            "return 1;\n"
            "return 2;\n"
            "}\n"
            "write(x);"
        )
        analysis = analyze_program(source)
        criterion = SlicingCriterion(8, "x")
        general = agrawal_slice(analysis, criterion)
        forced = structured_slice(analysis, criterion, force=True)
        returns = {
            n.id for n in analysis.cfg.jump_nodes()
        }
        assert returns & set(general.statement_nodes())
        assert not returns & set(forced.statement_nodes())

    def test_e4_property2_counterexample(self):
        # Erratum E4 (EXPERIMENTS.md): structured program, no dead code,
        # no exit-diverting predicate — yet the as-published Figs. 12/13
        # drop `goto L13`, whose only control parent is outside the
        # slice.  The repair pass restores it; force=True shows the
        # published behaviour.
        source = (
            "read(v3);\n"
            "if (4 != v3) goto L9;\n"
            "if (v3) goto L13;\n"
            "goto L13;\n"
            "L9: v1 = 1;\n"
            "L13: write(v1);"
        )
        analysis = analyze_program(source)
        assert exit_diverting_predicates(analysis) == []
        assert not analysis.cfg.unreachable_statements()
        criterion = SlicingCriterion(6, "v1")
        goto_node = 4
        for slicer in (structured_slice, conservative_slice):
            published = slicer(analysis, criterion, force=True)
            assert goto_node not in published.statement_nodes()
            repaired = slicer(analysis, criterion)
            assert goto_node in repaired.statement_nodes()
            assert any("E4" in note for note in repaired.notes)

    def test_benign_trailing_divergence_allowed(self):
        # An if whose branches both return but with nothing after it is
        # not exit-diverting (its lexical successor is EXIT).
        source = "read(p);\nif (p)\nreturn 1;\nelse\nreturn 2;"
        analysis = analyze_program(source)
        assert exit_diverting_predicates(analysis) == []


class TestRegistry:
    def test_all_algorithms_registered(self):
        expected = {
            "conventional", "agrawal", "agrawal-lst", "structured",
            "conservative", "ball-horwitz", "lyle", "gallagher", "jiang",
            "weiser", "interprocedural",
        }
        assert set(ALGORITHMS) == expected
        assert algorithm_names() == sorted(expected)

    def test_get_algorithm(self):
        assert get_algorithm("agrawal") is ALGORITHMS["agrawal"]

    def test_unknown_name(self):
        with pytest.raises(ValueError) as info:
            get_algorithm("quantum")
        assert "quantum" in str(info.value)

    def test_slice_program_convenience(self):
        entry = PAPER_PROGRAMS["fig3a"]
        result = slice_program(
            entry.source, line=15, var="positives", algorithm="agrawal"
        )
        assert result.statement_nodes() == [2, 3, 4, 5, 7, 8, 13, 15]

    def test_slice_program_accepts_analysis(self):
        entry = PAPER_PROGRAMS["fig3a"]
        analysis = analyze_program(entry.source)
        first = slice_program(analysis, 15, "positives")
        second = slice_program(analysis, 15, "positives")
        assert first.analysis is second.analysis
