"""Unit tests for the slice well-formedness verifier (SL2xx).

The checker re-derives every structure it audits against (Lengauer–
Tarjan postdominators, syntactic LST, fresh dataflow), so these tests
exercise it as a black box: hand it correct slices (must be clean) and
deliberately damaged node sets (must produce the right violation code).
"""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.lint.slice_check import (
    ALL_CONDITIONS,
    CLOSURE_CONDITIONS,
    SliceChecker,
    conditions_for,
    verify_result,
    verify_slice,
)
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import algorithm_names

#: Fig. 3(a): the paper's canonical goto example.
FIG3 = PAPER_PROGRAMS["fig3a"]


def fig3_result(slicer=agrawal_slice):
    analysis = analyze_program(FIG3.source)
    line, var = FIG3.criterion
    return slicer(analysis, SlicingCriterion(line, var))


class TestConditionProfiles:
    def test_agrawal_family_gets_the_full_audit(self):
        for name in ("agrawal", "agrawal-lst", "structured", "conservative"):
            assert conditions_for(name) == ALL_CONDITIONS

    def test_baselines_get_closure_only(self):
        for name in ("conventional", "weiser", "gallagher", "jiang"):
            assert conditions_for(name) == CLOSURE_CONDITIONS

    def test_other_correct_algorithms_get_closure_only(self):
        # Lyle and Ball-Horwitz are correct by arguments that do not
        # imply Agrawal's npd/nls test (it is sufficient, not necessary).
        assert conditions_for("lyle") == CLOSURE_CONDITIONS
        assert conditions_for("ball-horwitz") == CLOSURE_CONDITIONS

    def test_unknown_names_get_closure_only(self):
        assert conditions_for("ad-hoc") == CLOSURE_CONDITIONS

    def test_every_registered_algorithm_has_a_profile(self):
        for name in algorithm_names():
            assert conditions_for(name) in (ALL_CONDITIONS, CLOSURE_CONDITIONS)


class TestVerifier:
    def test_agrawal_slice_of_fig3_is_clean(self):
        assert verify_result(fig3_result()) == []

    def test_conventional_slice_violates_the_jump_condition(self):
        # The paper's motivating deficiency: the conventional closure
        # drops the goto, which the full audit must flag as SL204 —
        # while the closure profile (its contract) stays clean.
        result = fig3_result(conventional_slice)
        full = verify_result(result, conditions=ALL_CONDITIONS)
        assert {d.code for d in full} == {"SL204"}
        assert verify_result(result) == []

    def test_dropping_the_criterion_is_sl201(self):
        result = fig3_result()
        nodes = set(result.nodes) - {result.resolved.node_id}
        found = verify_slice(
            result.analysis, nodes, criterion_node=result.resolved.node_id
        )
        assert "SL201" in {d.code for d in found}

    def test_dropping_a_data_parent_is_sl202(self):
        result = fig3_result()
        analysis = result.analysis
        # Remove a definition some slice member depends on.
        checker = SliceChecker(analysis)
        nodes = set(result.nodes)
        victim = None
        for member in nodes:
            parents = checker._data_parents.get(member, set()) & nodes
            parents.discard(member)
            if parents:
                victim = next(iter(parents))
                break
        assert victim is not None
        nodes.discard(victim)
        found = verify_slice(
            analysis,
            nodes,
            criterion_node=result.resolved.node_id,
            conditions=("data",),
            checker=checker,
        )
        assert found
        assert all(d.code == "SL202" for d in found)

    def test_dropping_a_control_parent_is_sl203(self):
        source = "read(x);\nif (x > 0) {\n  x = 1;\n}\nwrite(x);\n"
        analysis = analyze_program(source)
        result = agrawal_slice(analysis, SlicingCriterion(5, "x"))
        (predicate,) = [
            n.id for n in analysis.cfg.statement_nodes() if n.line == 2
        ]
        nodes = set(result.nodes) - {predicate}
        found = verify_slice(
            analysis, nodes, conditions=("control",)
        )
        assert found
        assert all(d.code == "SL203" for d in found)

    def test_unknown_condition_is_rejected(self):
        result = fig3_result()
        with pytest.raises(ValueError):
            verify_result(result, conditions=("criterion", "bogus"))

    def test_violations_are_error_diagnostics(self):
        result = fig3_result(conventional_slice)
        for diag in verify_result(result, conditions=ALL_CONDITIONS):
            assert diag.severity.value == "error"
            assert diag.line > 0
            assert diag.rule

    def test_one_checker_verifies_many_algorithms(self):
        analysis = analyze_program(FIG3.source)
        line, var = FIG3.criterion
        checker = SliceChecker(analysis)
        criterion = SlicingCriterion(line, var)
        from repro.slicing.registry import get_algorithm

        for name in ("agrawal", "agrawal-lst", "lyle", "ball-horwitz"):
            result = get_algorithm(name)(analysis, criterion)
            assert verify_result(result, checker=checker) == [], name


class TestCorpusSweep:
    def test_canonical_criteria_verify_clean_for_all_algorithms(self):
        from repro.analysis.lexical import is_structured_program
        from repro.lang.errors import SliceError
        from repro.slicing.registry import get_algorithm

        for entry in PAPER_PROGRAMS.values():
            analysis = analyze_program(entry.source)
            checker = SliceChecker(analysis)
            line, var = entry.criterion
            criterion = SlicingCriterion(line, var)
            for name in algorithm_names():
                try:
                    result = get_algorithm(name)(analysis, criterion)
                except SliceError:
                    # Structured-only algorithms refusing unstructured
                    # programs is the expected capability gate.
                    assert not is_structured_program(
                        analysis.cfg, analysis.lst
                    ), (entry.name, name)
                    continue
                assert verify_result(result, checker=checker) == [], (
                    entry.name,
                    name,
                )
