"""Unit tests for the whole-SDG closure index lifecycle: build
structure (edge partitions, binding triples, jump schedule), the
encode/decode mask layer, the enablement knob at both levels,
memoization and invalidation on SDG mutation, budget-pressure deferral,
and unit-cache salvage across equal-digest rebuilds."""

import pytest

from repro.lang.ast_nodes import MAIN_UNIT
from repro.pdg.builder import analyze_program
from repro.pdg.closure import (
    MIN_BUILD_HEADROOM_SECONDS,
    closure_index_enabled,
    closure_index,
)
from repro.sdg.builder import sdg_for_analysis
from repro.sdg.closure import (
    SDGClosureIndex,
    build_sdg_closure_index,
    ensure_sdg_index,
    sdg_closure_index,
    sdg_index_enabled,
)
from repro.service.incremental import UnitCache, incremental, units_digest
from repro.service.resilience import Budget, use_budget

COMBINE = """\
read(x);
read(y);
call combine(x, y, s);
call combine(y, y, t);
write(s);
write(t);

proc combine(a, b, r) {
    r = a * b;
    if (a > b) {
        return;
    }
    r = r + a;
}
"""


def _sdg(source=COMBINE):
    with sdg_closure_index(False):
        return sdg_for_analysis(analyze_program(source))


class TestBuildStructure:
    def test_layout_matches_the_sdg(self):
        sdg = _sdg()
        index = build_sdg_closure_index(sdg)
        assert set(index.unit_ranges) == set(sdg.procs)
        for unit, info in sdg.procs.items():
            assert index.unit_ranges[unit] == (info.offset, info.size)
        assert index.vertex_count == sum(
            info.size for info in sdg.procs.values()
        )
        assert index.signature and len(index.signature) == len(sdg.procs)

    def test_binding_triples_cover_every_bound_formal_in(self):
        sdg = _sdg()
        index = build_sdg_closure_index(sdg)
        expected = sum(
            sum(
                1
                for param_index in sdg.procs[site.callee].formal_in
                if param_index in site.actual_in
            )
            for unit in sdg.procs
            for site in sdg.procs[unit].sites
        )
        assert len(index.bindings) == expected > 0
        for f_in_bit, call_bit, ai_bit in index.bindings:
            # Single-bit masks, all distinct roles.
            for bit in (f_in_bit, call_bit, ai_bit):
                assert bit and bit & (bit - 1) == 0
            assert f_in_bit != ai_bit

    def test_jump_schedule_is_the_pdt_preorder_restriction(self):
        sdg = _sdg()
        index = build_sdg_closure_index(sdg)
        for unit, info in sdg.procs.items():
            cfg = info.analysis.cfg
            expected = tuple(
                node_id
                for node_id in info.analysis.pdt.preorder()
                if node_id in cfg.nodes and cfg.nodes[node_id].is_jump
            )
            assert index.jump_preorder[unit] == expected
        # COMBINE's return is a jump; the schedule must not be empty
        # everywhere or the optimization would be untested.
        assert any(index.jump_preorder.values())

    def test_encode_decode_roundtrip(self):
        sdg = _sdg()
        index = build_sdg_closure_index(sdg)
        per_unit = {
            MAIN_UNIT: {1, 3},
            "combine": {0, 2},
        }
        mask = index.encode(per_unit)
        decoded = index.decode(mask)
        assert decoded[MAIN_UNIT] == {1, 3}
        assert decoded["combine"] == {0, 2}
        # decode keys every unit, empty ones included.
        assert set(decoded) == set(sdg.procs)

    def test_closure_masks_are_reflexive_and_monotone(self):
        sdg = _sdg()
        index = build_sdg_closure_index(sdg)
        for side in (index.ascend, index.descend):
            for bit_index in range(index.vertex_count):
                seed = 1 << bit_index
                closed = side.closure_mask(seed)
                assert closed & seed == seed
                # Closing a closed mask is a fixed point.
                assert side.closure_mask(closed) == closed


class TestKnob:
    def test_defers_to_the_process_wide_knob(self):
        assert closure_index_enabled()
        assert sdg_index_enabled()
        with closure_index(False):
            assert not sdg_index_enabled()
        assert sdg_index_enabled()

    def test_sdg_override_beats_the_global_knob(self):
        with closure_index(False):
            with sdg_closure_index(True):
                assert sdg_index_enabled()
            assert not sdg_index_enabled()
        with sdg_closure_index(False):
            assert closure_index_enabled()
            assert not sdg_index_enabled()

    def test_none_restores_deference(self):
        with sdg_closure_index(False):
            with sdg_closure_index(None):
                assert sdg_index_enabled() == closure_index_enabled()
            assert not sdg_index_enabled()

    def test_override_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with sdg_closure_index(False):
                raise RuntimeError("boom")
        assert sdg_index_enabled() == closure_index_enabled()

    def test_disabled_knob_returns_no_index(self):
        sdg = _sdg()
        with sdg_closure_index(False):
            index, events = ensure_sdg_index(sdg)
        assert index is None
        assert events == {}
        assert getattr(sdg, "_closure_index", None) is None


class TestLifecycle:
    def test_build_memoizes_on_the_sdg(self):
        sdg = _sdg()
        with sdg_closure_index(True):
            first, events = ensure_sdg_index(sdg)
            assert events == {"builds": 1}
            second, events = ensure_sdg_index(sdg)
        assert second is first
        assert events == {}

    def test_mutation_invalidates(self):
        sdg = _sdg()
        with sdg_closure_index(True):
            first, _ = ensure_sdg_index(sdg)
            # Grow one stitched local graph: the signature snapshot no
            # longer matches, so the memoized index must be discarded.
            info = sdg.procs[MAIN_UNIT]
            fresh = max(info.local.nodes) + 1
            info.local.add_edge(fresh, min(info.local.nodes), "data")
            second, events = ensure_sdg_index(sdg)
        assert second is not first
        assert events == {"builds": 1}
        assert second.signature != first.signature

    def test_pressure_defers_the_build(self):
        sdg = _sdg()
        tight = MIN_BUILD_HEADROOM_SECONDS / 10
        with sdg_closure_index(True):
            with use_budget(Budget(deadline_seconds=tight)):
                index, events = ensure_sdg_index(sdg)
            assert index is None
            assert events == {"pressure_skips": 1}
            # Once the pressure clears the build proceeds.
            index, events = ensure_sdg_index(sdg)
        assert isinstance(index, SDGClosureIndex)
        assert events == {"builds": 1}

    def test_memoized_index_served_even_under_pressure(self):
        sdg = _sdg()
        tight = MIN_BUILD_HEADROOM_SECONDS / 10
        with sdg_closure_index(True):
            built, _ = ensure_sdg_index(sdg)
            with use_budget(Budget(deadline_seconds=tight)):
                index, events = ensure_sdg_index(sdg)
        assert index is built
        assert events == {}


class TestSalvage:
    def _wire(self, sdg, analysis, cache):
        """Attach the incremental bookkeeping the engine's incremental
        path records: the unit cache, the digest vector, and the
        per-unit formal-dependence pairs."""
        analysis._unit_cache = cache
        analysis._unit_digests = {
            unit: f"digest-{unit}" for unit in sdg.procs
        }
        sdg._unit_pairs = {
            unit: frozenset({(0, 0)}) for unit in sdg.procs
        }

    def test_equal_digests_salvage_the_index(self):
        cache = UnitCache(capacity=8)
        first_analysis = analyze_program(COMBINE)
        second_analysis = analyze_program(COMBINE)
        with sdg_closure_index(False):
            first_sdg = sdg_for_analysis(first_analysis)
            second_sdg = sdg_for_analysis(second_analysis)
        self._wire(first_sdg, first_analysis, cache)
        self._wire(second_sdg, second_analysis, cache)
        with incremental(True), sdg_closure_index(True):
            built, events = ensure_sdg_index(first_sdg, first_analysis)
            assert events == {"builds": 1}
            salvaged, events = ensure_sdg_index(second_sdg, second_analysis)
        assert events == {"salvages": 1}
        assert salvaged is built  # same immutable object, replayed
        assert cache.stats.snapshot()["indexes_salvaged"] == 1

    def test_changed_digest_misses(self):
        cache = UnitCache(capacity=8)
        first_analysis = analyze_program(COMBINE)
        second_analysis = analyze_program(COMBINE)
        with sdg_closure_index(False):
            first_sdg = sdg_for_analysis(first_analysis)
            second_sdg = sdg_for_analysis(second_analysis)
        self._wire(first_sdg, first_analysis, cache)
        self._wire(second_sdg, second_analysis, cache)
        second_analysis._unit_digests = dict(second_analysis._unit_digests)
        second_analysis._unit_digests[MAIN_UNIT] = "digest-edited"
        with incremental(True), sdg_closure_index(True):
            _, events = ensure_sdg_index(first_sdg, first_analysis)
            assert events == {"builds": 1}
            _, events = ensure_sdg_index(second_sdg, second_analysis)
        assert events == {"builds": 1}
        assert cache.stats.snapshot()["indexes_salvaged"] == 0

    def test_incremental_off_never_touches_the_cache(self):
        cache = UnitCache(capacity=8)
        analysis = analyze_program(COMBINE)
        with sdg_closure_index(False):
            sdg = sdg_for_analysis(analysis)
        self._wire(sdg, analysis, cache)
        with incremental(False), sdg_closure_index(True):
            index, events = ensure_sdg_index(sdg, analysis)
        assert index is not None
        assert events == {"builds": 1}
        assert cache.snapshot()["index_entries"] == 0

    def test_units_digest_feeds_the_key(self):
        # Sanity: the digest vector actually distinguishes programs —
        # guards against the key silently ignoring its inputs.
        assert units_digest({"main": "a"}) != units_digest({"main": "b"})
