"""Unit tests for the service protocol: parsing, round-tripping,
error mapping, and capability discovery."""

import json

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.lang.errors import ParseError, SliceError
from repro.pdg.builder import analyze_program
from repro.service.protocol import (
    PROTOCOL_VERSION,
    CompareRequest,
    GraphRequest,
    MetricsRequest,
    ProtocolError,
    SliceRequest,
    capabilities_payload,
    dump_json,
    error_envelope,
    error_payload,
    ok_envelope,
    request_from_dict,
    request_from_json,
    request_to_dict,
    slice_result_payload,
)
from repro.slicing.registry import (
    CORRECT_GENERAL,
    CORRECT_STRUCTURED,
    algorithm_capability,
    algorithm_metadata,
    algorithm_names,
    get_algorithm,
)
from repro.slicing.criterion import SlicingCriterion

FIG3A = PAPER_PROGRAMS["fig3a"].source


class TestRequestParsing:
    def test_slice_round_trip(self):
        request = SliceRequest(
            source=FIG3A, line=15, var="positives", algorithm="lyle", id="r1"
        )
        again = request_from_dict(request_to_dict(request))
        assert again == request

    def test_round_trip_every_op(self):
        requests = [
            SliceRequest(source="x = 1;", line=1, var="x"),
            CompareRequest(source="x = 1;", line=1, var="x", id="c"),
            GraphRequest(source="x = 1;", kind="pdt"),
            MetricsRequest(source="x = 1;", algorithm="weiser"),
        ]
        for request in requests:
            assert request_from_dict(request_to_dict(request)) == request

    def test_op_defaults_to_slice(self):
        request = request_from_dict(
            {"source": "x = 1;", "line": 1, "var": "x"}
        )
        assert isinstance(request, SliceRequest)

    def test_from_json(self):
        text = json.dumps(
            {"op": "compare", "source": "x = 1;", "line": 1, "var": "x"}
        )
        assert isinstance(request_from_json(text), CompareRequest)

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "slice", "line": 1, "var": "x"},  # missing source
            {"op": "slice", "source": "x;", "var": "x"},  # missing line
            {"op": "slice", "source": "x;", "line": 1},  # missing var
            {"op": "slice", "source": "x;", "line": "1", "var": "x"},
            {"op": "slice", "source": "x;", "line": True, "var": "x"},
            {"op": "nope", "source": "x;"},
            "not an object",
        ],
    )
    def test_malformed_requests_raise_protocol_error(self, payload):
        with pytest.raises(ProtocolError):
            request_from_dict(payload)

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            request_from_json("{not json")

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            request_from_dict(
                {
                    "op": "slice",
                    "source": "x;",
                    "line": 1,
                    "var": "x",
                    "version": PROTOCOL_VERSION + 1,
                }
            )


class TestSlicePayload:
    def test_matches_slice_result(self):
        analysis = analyze_program(FIG3A)
        result = get_algorithm("agrawal")(
            analysis, SlicingCriterion(line=15, var="positives")
        )
        payload = slice_result_payload(result)
        assert payload["algorithm"] == "agrawal"
        assert payload["criterion"] == {"line": 15, "var": "positives"}
        assert payload["nodes"] == result.statement_nodes()
        assert payload["lines"] == result.lines()
        assert payload["size"] == len(result.statement_nodes())
        assert payload["traversals"] == result.traversals
        assert payload["label_map"] == result.label_map

    def test_payload_is_json_serialisable_with_stable_bytes(self):
        analysis = analyze_program(FIG3A)
        result = get_algorithm("agrawal")(
            analysis, SlicingCriterion(line=15, var="positives")
        )
        envelope = ok_envelope("slice", slice_result_payload(result))
        once = dump_json(envelope)
        twice = dump_json(json.loads(once))
        assert once == twice


class TestErrorMapping:
    def test_slice_error_code(self):
        payload = error_payload(SliceError("no statement at line 99"))
        assert payload["code"] == "slice-error"
        assert "line 99" in payload["message"]

    def test_parse_error_carries_location(self):
        with pytest.raises(ParseError) as info:
            analyze_program("x = ;")
        payload = error_payload(info.value)
        assert payload["code"] == "parse-error"
        assert payload["location"]["line"] == 1

    def test_value_error_is_bad_request(self):
        assert error_payload(ValueError("unknown"))["code"] == "bad-request"

    def test_protocol_error_code(self):
        assert error_payload(ProtocolError("nope"))["code"] == "protocol-error"

    def test_unexpected_exception_is_internal(self):
        assert error_payload(RuntimeError("boom"))["code"] == "internal-error"

    def test_error_envelope_shape(self):
        envelope = error_envelope("slice", SliceError("nope"), "id-7")
        assert envelope["ok"] is False
        assert envelope["op"] == "slice"
        assert envelope["id"] == "id-7"
        assert envelope["version"] == PROTOCOL_VERSION


class TestCapabilities:
    def test_every_algorithm_is_classified(self):
        metadata = algorithm_metadata()
        assert sorted(metadata) == algorithm_names()
        for name in CORRECT_GENERAL:
            assert metadata[name] == "correct-general"
        for name in CORRECT_STRUCTURED:
            assert metadata[name] == "structured-only"
        assert metadata["conventional"] == "baseline"

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError):
            algorithm_capability("nope")

    def test_capabilities_payload(self):
        payload = capabilities_payload()
        assert payload["version"] == PROTOCOL_VERSION
        names = [entry["name"] for entry in payload["algorithms"]]
        assert names == algorithm_names()
        assert all("capability" in entry for entry in payload["algorithms"])
