"""Unit tests for the slice-based cohesion metrics."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.lang.errors import SliceError
from repro.metrics import output_criteria, slice_based_metrics
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion


class TestOutputCriteria:
    def test_one_per_variable_write(self):
        analysis = analyze_program("x = 1;\nwrite(x);\nwrite(x + 1);")
        criteria = output_criteria(analysis)
        # write(x+1) is not a plain-variable write.
        assert criteria == [SlicingCriterion(line=2, var="x")]

    def test_fig3_has_two_outputs(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        criteria = output_criteria(analysis)
        assert [(c.line, c.var) for c in criteria] == [
            (14, "sum"),
            (15, "positives"),
        ]


class TestMetrics:
    def test_single_output_program_is_maximally_cohesive(self):
        analysis = analyze_program("read(x);\ny = x + 1;\nwrite(y);")
        metrics = slice_based_metrics(analysis)
        assert metrics.tightness == 1.0
        assert metrics.coverage == 1.0
        assert metrics.overlap == 1.0

    def test_two_independent_computations_have_low_tightness(self):
        analysis = analyze_program(
            "read(a);\nread(b);\nx = a * 2;\ny = b * 3;\nwrite(x);\nwrite(y);"
        )
        metrics = slice_based_metrics(analysis)
        # The two slices share only the read chain ($in links reads);
        # neither contains the other's computation.
        assert metrics.tightness < metrics.coverage
        assert metrics.min_coverage < 1.0

    def test_fig3_metrics_are_sane(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        metrics = slice_based_metrics(analysis)
        assert len(metrics.criteria) == 2
        assert 0.0 < metrics.tightness <= metrics.coverage <= 1.0
        assert metrics.min_coverage <= metrics.max_coverage
        assert 0.0 < metrics.overlap <= 1.0

    def test_explicit_criteria(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        metrics = slice_based_metrics(
            analysis, criteria=[SlicingCriterion(15, "positives")]
        )
        assert metrics.slice_sizes == (8,)  # Fig. 3-c's slice

    def test_algorithm_choice_matters_for_jump_programs(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        with_jumps = slice_based_metrics(analysis, algorithm="agrawal")
        without = slice_based_metrics(analysis, algorithm="conventional")
        # Jump-blind slices are smaller, deflating coverage — the
        # metrics inherit the paper's correctness point.
        assert without.coverage < with_jumps.coverage

    def test_no_outputs_raises(self):
        analysis = analyze_program("x = 1;")
        with pytest.raises(SliceError):
            slice_based_metrics(analysis)

    def test_describe(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        text = slice_based_metrics(analysis).describe()
        assert "tightness=" in text
        assert "program size: 2 statements" in text
