"""Unit tests for the pretty-printer, including the re-parse round trip."""

import pytest

from repro.lang.ast_nodes import Binary, Num, Unary, Var
from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty, pretty_expr


def roundtrip(source):
    """pretty(parse(source)) must re-parse to the same canonical text."""
    first = pretty(parse_program(source))
    second = pretty(parse_program(first))
    assert first == second
    return first


class TestExpressions:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2 * 3", "1 + 2 * 3"),
            ("(1 + 2) * 3", "(1 + 2) * 3"),
            ("10 - 4 - 3", "10 - 4 - 3"),
            ("10 - (4 - 3)", "10 - (4 - 3)"),
            ("a || b && c", "a || b && c"),
            ("(a || b) && c", "(a || b) && c"),
            ("!eof()", "!eof()"),
            ("!(a < b)", "!(a < b)"),
            ("-x + y", "-x + y"),
            ("-(x + y)", "-(x + y)"),
            ("f(a, b + 1)", "f(a, b + 1)"),
            ("a % b / c", "a % b / c"),
            ("a == b != c", "a == b != c"),
        ],
    )
    def test_minimal_parentheses(self, source, expected):
        assert pretty_expr(parse_expression(source)) == expected

    def test_expression_roundtrip_structure(self):
        source = "a + (b - c) * -d % f(g(), 2) <= h || !i && j"
        expr = parse_expression(source)
        assert parse_expression(pretty_expr(expr)) == expr

    def test_double_unary_minus_does_not_lex_as_decrement(self):
        expr = Unary(op="-", operand=Unary(op="-", operand=Var("x")))
        text = pretty_expr(expr)
        assert parse_expression(text) == expr


class TestStatements:
    def test_conditional_goto_prints_on_one_line(self):
        text = pretty(parse_program("L3: if (eof()) goto L14;"))
        assert text == "L3: if (eof()) goto L14;\n"

    def test_if_else(self):
        text = roundtrip("if (x > 0) y = 1; else y = 2;")
        assert "else" in text

    def test_while_with_block(self):
        text = roundtrip("while (!eof()) { read(x); s = s + x; }")
        assert text.startswith("while (!eof())")

    def test_do_while(self):
        roundtrip("do { read(x); } while (!eof());")

    def test_for(self):
        text = roundtrip("for (i = 0; i < 3; i = i + 1) s = s + i;")
        assert "for (i = 0; i < 3; i = i + 1)" in text

    def test_for_empty_clauses(self):
        text = roundtrip("for (;;) break;")
        assert "for (; ; )" in text

    def test_switch(self):
        text = roundtrip(
            "switch (c) { case 1: x = 1; break; case 2: default: y = 2; }"
        )
        assert "case 1:" in text
        assert "default:" in text

    def test_labels_preserved(self):
        text = roundtrip("L8: positives = positives + 1;")
        assert text.startswith("L8: ")

    def test_labelled_skip(self):
        assert pretty(parse_program("L14: ;")) == "L14: ;\n"

    def test_return_forms(self):
        assert "return;" in roundtrip("return;")
        assert "return x + 1;" in roundtrip("return x + 1;")

    def test_empty_program(self):
        assert pretty(parse_program("")) == ""


class TestCorpusRoundtrip:
    def test_every_paper_program_roundtrips(self):
        from repro.corpus import PAPER_PROGRAMS

        for program in PAPER_PROGRAMS.values():
            roundtrip(program.source)


class TestErrors:
    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            pretty(42)
