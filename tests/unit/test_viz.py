"""Unit tests for graph rendering."""

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.viz.dot import (
    ascii_tree,
    cdg_to_dot,
    cfg_to_dot,
    ddg_to_dot,
    pdg_to_dot,
    render_all,
    tree_to_dot,
)


def analysis_fig3():
    return analyze_program(PAPER_PROGRAMS["fig3a"].source)


class TestDot:
    def test_cfg_dot_contains_all_nodes_and_edges(self):
        analysis = analysis_fig3()
        dot = cfg_to_dot(analysis.cfg)
        assert dot.startswith("digraph flowgraph {")
        assert dot.rstrip().endswith("}")
        for node in analysis.cfg.sorted_nodes():
            assert f"n{node.id} [" in dot
        assert "n3 -> n14" in dot  # the fused goto edge

    def test_highlighting_marks_slice(self):
        analysis = analysis_fig3()
        result = agrawal_slice(analysis, SlicingCriterion(15, "positives"))
        dot = cfg_to_dot(analysis.cfg, highlight=result.statement_nodes())
        assert "fillcolor=lightgrey" in dot

    def test_jump_nodes_drawn_thick(self):
        dot = cfg_to_dot(analysis_fig3().cfg)
        assert "penwidth=2.5" in dot

    def test_tree_dot(self):
        analysis = analysis_fig3()
        dot = tree_to_dot(analysis.pdt, analysis.cfg, "pdt")
        assert "digraph pdt {" in dot
        assert "n3 -> n13" in dot  # ipdom(13) = 3

    def test_cdg_dot_labels_branches(self):
        dot = cdg_to_dot(analysis_fig3())
        assert 'label="true"' in dot or 'label="false"' in dot

    def test_ddg_dot_labels_variables(self):
        dot = ddg_to_dot(analysis_fig3())
        assert 'label="positives"' in dot

    def test_pdg_dot_styles_edge_kinds(self):
        analysis = analysis_fig3()
        dot = pdg_to_dot(analysis.pdg, analysis.cfg)
        assert "style=solid" in dot
        assert "style=dashed" in dot

    def test_quoting(self):
        analysis = analyze_program('x = 1;')
        dot = cfg_to_dot(analysis.cfg)
        assert '"' in dot

    def test_render_all_keys(self):
        graphs = render_all(analysis_fig3())
        assert set(graphs) == {
            "flowgraph",
            "postdominator-tree",
            "control-dependence",
            "lexical-successor-tree",
            "data-dependence",
            "pdg",
        }


class TestAsciiTree:
    def test_root_first(self):
        analysis = analysis_fig3()
        text = ascii_tree(analysis.pdt, analysis.cfg)
        assert text.splitlines()[0] == "EXIT"

    def test_all_nodes_present(self):
        analysis = analysis_fig3()
        text = ascii_tree(analysis.pdt, analysis.cfg)
        for node in analysis.cfg.statement_nodes():
            assert f"{node.id}: " in text

    def test_highlight_star(self):
        analysis = analysis_fig3()
        text = ascii_tree(analysis.pdt, analysis.cfg, highlight=[15])
        assert "write(positives)*" in text

    def test_without_cfg_uses_ids(self):
        analysis = analysis_fig3()
        text = ascii_tree(analysis.pdt)
        assert text.splitlines()[0] == str(analysis.cfg.exit_id)
