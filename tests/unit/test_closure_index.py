"""Unit tests for the condensed-PDG closure index.

Covers the raw index (Tarjan condensation + mask closure on hand-built
graphs), the lazy wiring on :class:`ProgramDependenceGraph` (build,
invalidation on mutation, enablement knob, budget-pressure skip), and
the prewarm path of the analysis cache.  Whole-registry identity over
random programs lives in ``tests/property/test_engine_differential.py``.
"""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import analyze_program
from repro.pdg.closure import (
    MIN_BUILD_HEADROOM_SECONDS,
    build_closure_index,
    closure_index,
    closure_index_enabled,
    index_build_allowed,
    set_closure_index_enabled,
)
from repro.pdg.graph import ProgramDependenceGraph
from repro.service.cache import AnalysisCache
from repro.service.resilience import Budget, use_budget

FIG3A = PAPER_PROGRAMS["fig3a"].source


def index_for(edges, nodes=()):
    """Build an index from ``dependent <- supplier`` edge pairs."""
    suppliers = {}
    node_ids = set(nodes)
    for supplier, dependent in edges:
        suppliers.setdefault(dependent, []).append(supplier)
        node_ids.update((supplier, dependent))
    return build_closure_index(
        sorted(node_ids), lambda n: suppliers.get(n, [])
    )


def bfs_closure(edges, seeds, nodes=()):
    suppliers = {}
    for supplier, dependent in edges:
        suppliers.setdefault(dependent, []).append(supplier)
    seen = set(seeds)
    frontier = list(seeds)
    while frontier:
        for supplier in suppliers.get(frontier.pop(), []):
            if supplier not in seen:
                seen.add(supplier)
                frontier.append(supplier)
    return frozenset(seen)


class TestRawIndex:
    def test_chain(self):
        edges = [(1, 2), (2, 3), (3, 4)]
        index = index_for(edges)
        assert index.backward_closure([4]) == {1, 2, 3, 4}
        assert index.backward_closure([2]) == {1, 2}
        assert index.backward_closure([1]) == {1}

    def test_diamond(self):
        edges = [(1, 2), (1, 3), (2, 4), (3, 4)]
        index = index_for(edges)
        assert index.backward_closure([4]) == {1, 2, 3, 4}
        assert index.backward_closure([2, 3]) == {1, 2, 3}

    def test_cycle_collapses_to_one_component(self):
        # 1 <-> 2 form an SCC; 3 depends on the cycle.
        edges = [(1, 2), (2, 1), (2, 3)]
        index = index_for(edges)
        assert index.component_count == 2
        assert index.backward_closure([3]) == {1, 2, 3}
        assert index.backward_closure([1]) == {1, 2}

    def test_self_loop(self):
        edges = [(5, 5), (5, 6)]
        index = index_for(edges)
        assert index.component_count == 2
        assert index.backward_closure([6]) == {5, 6}

    def test_multiple_seeds_union(self):
        edges = [(1, 2), (3, 4)]
        index = index_for(edges)
        assert index.backward_closure([2, 4]) == {1, 2, 3, 4}

    def test_unknown_seeds_contribute_themselves(self):
        index = index_for([(1, 2)])
        assert index.backward_closure([99]) == {99}
        assert index.backward_closure([2, 99]) == {1, 2, 99}

    def test_empty_seeds(self):
        index = index_for([(1, 2)])
        assert index.backward_closure([]) == frozenset()

    def test_isolated_nodes(self):
        index = index_for([], nodes=[7, 8])
        assert index.component_count == 2
        assert index.backward_closure([7]) == {7}

    def test_matches_bfs_on_tangled_graph(self):
        # Two interlocking cycles plus DAG fan-in.
        edges = [
            (1, 2), (2, 3), (3, 1),        # cycle A
            (4, 5), (5, 4),                # cycle B
            (3, 5), (0, 1), (0, 4), (5, 6),
        ]
        index = index_for(edges)
        for seeds in ([6], [5], [3], [1, 4], [0], [2, 6]):
            assert index.backward_closure(seeds) == bfs_closure(
                edges, seeds
            ), seeds


class TestPdgWiring:
    def pdg_with_chain(self):
        pdg = ProgramDependenceGraph()
        pdg.add_edge(1, 2, "data")
        pdg.add_edge(2, 3, "control")
        return pdg

    def test_lazy_build_and_reuse(self):
        pdg = self.pdg_with_chain()
        assert pdg._closure_index is None
        first = pdg.ensure_closure_index()
        assert first is not None
        assert pdg.ensure_closure_index() is first

    def test_backward_closure_uses_index(self):
        pdg = self.pdg_with_chain()
        assert pdg.backward_closure([3]) == {1, 2, 3}
        assert pdg._closure_index is not None

    def test_add_edge_invalidates(self):
        pdg = self.pdg_with_chain()
        pdg.ensure_closure_index()
        pdg.add_edge(0, 1, "data")
        assert pdg._closure_index is None
        assert pdg.backward_closure([3]) == {0, 1, 2, 3}

    def test_duplicate_edge_keeps_index(self):
        pdg = self.pdg_with_chain()
        index = pdg.ensure_closure_index()
        pdg.add_edge(1, 2, "data")  # already present: no mutation
        assert pdg._closure_index is index

    def test_add_node_invalidates(self):
        pdg = self.pdg_with_chain()
        pdg.ensure_closure_index()
        pdg.add_node(42)
        assert pdg._closure_index is None
        assert pdg.backward_closure([42]) == {42}

    def test_disabled_knob_falls_back_to_bfs(self):
        pdg = self.pdg_with_chain()
        with closure_index(False):
            assert not closure_index_enabled()
            assert pdg.ensure_closure_index() is None
            assert pdg.backward_closure([3]) == {1, 2, 3}
            assert pdg._closure_index is None
        assert closure_index_enabled()

    def test_set_enabled_roundtrip(self):
        set_closure_index_enabled(False)
        try:
            assert not closure_index_enabled()
        finally:
            set_closure_index_enabled(True)
        assert closure_index_enabled()


class TestBudgetPressure:
    def test_allowed_without_budget(self):
        assert index_build_allowed()

    def test_allowed_with_roomy_deadline(self):
        with use_budget(Budget(deadline_seconds=60.0)):
            assert index_build_allowed()

    def test_allowed_with_no_deadline_dimension(self):
        with use_budget(Budget(max_nodes=10_000)):
            assert index_build_allowed()

    def test_skipped_near_the_deadline(self):
        tight = MIN_BUILD_HEADROOM_SECONDS / 10
        with use_budget(Budget(deadline_seconds=tight)):
            assert not index_build_allowed()

    def test_build_deferred_but_query_answered(self):
        pdg = ProgramDependenceGraph()
        pdg.add_edge(1, 2, "data")
        tight = MIN_BUILD_HEADROOM_SECONDS / 10
        with use_budget(Budget(deadline_seconds=tight)):
            assert pdg.ensure_closure_index() is None
            assert pdg.backward_closure([2]) == {1, 2}
        # Pressure gone: the next query builds the index.
        assert pdg.backward_closure([2]) == {1, 2}
        assert pdg._closure_index is not None


class TestPrewarm:
    def test_prewarm_builds_the_index(self):
        cache = AnalysisCache(capacity=2, prewarm=True)
        analysis = cache.get_or_build(FIG3A)
        assert analysis.pdg._closure_index is not None

    def test_index_agrees_with_bfs_on_real_pdg(self):
        analysis = analyze_program(FIG3A)
        pdg = analysis.pdg
        for node in sorted(pdg.nodes):
            with closure_index(False):
                reference = pdg.backward_closure([node])
            with closure_index(True):
                fast = pdg.backward_closure([node])
            assert reference == fast
