"""Unit tests for the random program generators."""

import random

import pytest

from repro.analysis.lexical import is_structured_program
from repro.cfg.builder import build_cfg
from repro.gen.generator import (
    GeneratorConfig,
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.interp.interpreter import run_program
from repro.lang.ast_nodes import Write
from repro.lang.validate import check_program


class TestStructuredGenerator:
    @pytest.mark.parametrize("seed", range(20))
    def test_generated_programs_are_valid(self, seed):
        program = realize(generate_structured(random.Random(seed)))
        assert check_program(program) == []

    @pytest.mark.parametrize("seed", range(20))
    def test_generated_programs_are_structured(self, seed):
        program = realize(generate_structured(random.Random(seed)))
        cfg = build_cfg(program)
        assert is_structured_program(cfg)

    @pytest.mark.parametrize("seed", range(20))
    def test_generated_programs_terminate(self, seed):
        rng = random.Random(seed)
        program = realize(generate_structured(rng))
        inputs = [rng.randint(-9, 9) for _ in range(6)]
        result = run_program(program, inputs, step_limit=500_000)
        assert result.steps > 0

    def test_ends_with_write_per_variable(self):
        config = GeneratorConfig(num_vars=3)
        program = generate_structured(random.Random(0), config)
        tail = program.body[-3:]
        assert all(isinstance(stmt, Write) for stmt in tail)

    def test_determinism(self):
        from repro.lang.pretty import pretty

        first = pretty(generate_structured(random.Random(99)))
        second = pretty(generate_structured(random.Random(99)))
        assert first == second


class TestUnstructuredGenerator:
    @pytest.mark.parametrize("seed", range(20))
    def test_generated_programs_are_valid(self, seed):
        program = realize(generate_unstructured(random.Random(seed)))
        assert check_program(program) == []

    @pytest.mark.parametrize("seed", range(20))
    def test_every_node_reaches_exit(self, seed):
        # Unconditional jumps are forward-only, so postdominators always
        # exist; build_postdominator_tree(strict=True) would raise if not.
        from repro.analysis.postdominance import build_postdominator_tree

        program = realize(generate_unstructured(random.Random(seed)))
        cfg = build_cfg(program)
        build_postdominator_tree(cfg)

    @pytest.mark.parametrize("seed", range(20))
    def test_no_dead_code(self, seed):
        program = realize(generate_unstructured(random.Random(seed)))
        cfg = build_cfg(program)
        assert cfg.unreachable_statements() == []

    def test_contains_gotos(self):
        found = 0
        for seed in range(10):
            program = realize(generate_unstructured(random.Random(seed)))
            cfg = build_cfg(program)
            found += len(cfg.jump_nodes())
        assert found > 0

    def test_flat_length_respected(self):
        config = GeneratorConfig(flat_length=8, num_vars=2)
        program = generate_unstructured(random.Random(1), config)
        assert len(program.body) == 8 + 2


class TestCriterionPicker:
    def test_picks_a_write_line(self):
        rng = random.Random(3)
        program = realize(generate_structured(rng))
        line, var = random_criterion(rng, program)
        stmt_lines = {stmt.line for stmt in program.statements()}
        assert line in stmt_lines
        assert var.startswith("v") or var.startswith("i")

    def test_raises_without_writes(self):
        from repro.lang.parser import parse_program

        with pytest.raises(ValueError):
            random_criterion(random.Random(0), parse_program("x = 1;"))


class TestRealize:
    def test_lines_assigned(self):
        program = realize(generate_structured(random.Random(5)))
        assert all(stmt.line > 0 for stmt in program.statements())
