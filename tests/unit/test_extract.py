"""Unit tests for slice extraction."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.interp.interpreter import run_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conservative import conservative_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_slice, extract_source
from repro.slicing.structured import structured_slice


def sliced_source(source, line, var, slicer=agrawal_slice):
    analysis = analyze_program(source)
    result = slicer(analysis, SlicingCriterion(line, var))
    return extract_source(result), result


class TestBasics:
    def test_extracted_source_is_valid_sl(self):
        text, _ = sliced_source("x = 1;\ny = 2;\nwrite(x);", 3, "x")
        validate_program(parse_program(text))

    def test_irrelevant_statement_dropped(self):
        text, _ = sliced_source("x = 1;\ny = 2;\nwrite(x);", 3, "x")
        assert "y = 2" not in text
        assert "x = 1" in text

    def test_compound_with_no_retained_content_dropped(self):
        text, _ = sliced_source(
            "x = 1;\nif (c)\ny = 2;\nwrite(x);", 4, "x"
        )
        assert "if" not in text

    def test_else_branch_dropped_when_empty(self):
        source = "read(c);\nif (c)\nx = 1;\nelse\ny = 2;\nwrite(x);"
        text, _ = sliced_source(source, 6, "x")
        assert "else" not in text

    def test_then_branch_becomes_skip_when_else_retained(self):
        source = "read(c);\nif (c)\ny = 2;\nelse\nx = 1;\nwrite(x);"
        text, _ = sliced_source(source, 6, "x")
        assert "else" in text
        # The then side is an empty statement.
        parsed = parse_program(text)
        if_stmt = parsed.body[1]
        from repro.lang.ast_nodes import Skip

        assert isinstance(if_stmt.then_branch, Skip)

    def test_stmt_map_tracks_criterion(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        result = agrawal_slice(analysis, SlicingCriterion(2, "x"))
        extracted = extract_slice(result)
        original = analysis.cfg.nodes[2].stmt
        assert extracted.find(original) is not None
        assert extracted.find(original) is not original


class TestLabels:
    def test_needed_label_kept(self):
        text, _ = sliced_source(PAPER_PROGRAMS["fig3a"].source, 15, "positives")
        assert "L8:" in text
        assert "L3:" in text

    def test_dangling_label_emitted_as_skip(self):
        text, _ = sliced_source(PAPER_PROGRAMS["fig3a"].source, 15, "positives")
        assert "L14: ;" in text

    def test_unreferenced_label_dropped(self):
        source = "L1: x = 1;\nwrite(x);"
        text, _ = sliced_source(source, 2, "x")
        assert "L1" not in text

    def test_fig10_labels_on_reassociated_nodes(self):
        text, _ = sliced_source(PAPER_PROGRAMS["fig10a"].source, 9, "y")
        lines = text.splitlines()
        l6_index = lines.index("L6: ;")
        goto_l3_index = next(
            i for i, t in enumerate(lines) if t.strip() == "goto L3;"
        )
        assert l6_index < goto_l3_index


class TestSwitchExtraction:
    def test_fig14_structured_slice_keeps_case_labels(self):
        text, _ = sliced_source(
            PAPER_PROGRAMS["fig14a"].source, 9, "y", structured_slice
        )
        assert "case 1:" in text
        assert "case 2:" in text
        assert "case 3:" not in text

    def test_dropped_arm_disappears_entirely(self):
        text, _ = sliced_source(
            PAPER_PROGRAMS["fig14a"].source, 9, "y", structured_slice
        )
        assert "z = 33" not in text
        assert "x = 11" not in text

    def test_conservative_keeps_case3_break(self):
        text, _ = sliced_source(
            PAPER_PROGRAMS["fig14a"].source, 9, "y", conservative_slice
        )
        assert "case 3:" in text

    def test_fully_dropped_switch_hoists_postdominating_tail(self):
        source = (
            "read(c);\n"
            "switch (c) {\n"
            "case 1: x = 1;\n"
            "default: y = 2;\n"
            "}\n"
            "write(y);"
        )
        # y = 2 runs on every path through the switch (case 1 falls
        # through), so the slice keeps y = 2 but not the switch.
        analysis = analyze_program(source)
        result = agrawal_slice(analysis, SlicingCriterion(6, "y"))
        assert analysis.cfg.node_of(
            analysis.program.body[1]
        ) not in result.nodes
        text = extract_source(result)
        assert "switch" not in text
        assert "y = 2" in text
        # And the extraction runs correctly.
        outputs = run_program(parse_program(text)).outputs
        assert outputs == [2]


class TestSemanticsOfExtraction:
    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_extracted_corpus_slices_parse_and_validate(self, name):
        entry = PAPER_PROGRAMS[name]
        text, _ = sliced_source(entry.source, *entry.criterion)
        validate_program(parse_program(text))

    def test_extraction_of_full_slice_is_whole_program(self):
        source = "read(x);\nwrite(x);"
        analysis = analyze_program(source)
        result = conventional_slice(analysis, SlicingCriterion(2, "x"))
        assert pretty(parse_program(source)) == extract_source(result)
