"""Unit tests for the CFG interpreter."""

import pytest

from repro.interp.interpreter import Interpreter, run_program, run_source
from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry
from repro.cfg.builder import build_cfg
from repro.lang.errors import InterpreterError
from repro.lang.parser import parse_program


class TestBasics:
    def test_straight_line(self):
        result = run_source("x = 2;\ny = x * 3;\nwrite(y);")
        assert result.outputs == [6]
        assert result.env["y"] == 6

    def test_uninitialised_reads_as_zero(self):
        assert run_source("write(q);").outputs == [0]

    def test_if_true_branch(self):
        result = run_source("x = 5;\nif (x > 0)\nwrite(1);\nelse\nwrite(2);")
        assert result.outputs == [1]

    def test_if_false_branch(self):
        result = run_source("x = -5;\nif (x > 0)\nwrite(1);\nelse\nwrite(2);")
        assert result.outputs == [2]

    def test_while_loop(self):
        result = run_source(
            "i = 0;\ns = 0;\nwhile (i < 4) {\ns = s + i;\ni = i + 1;\n}\n"
            "write(s);"
        )
        assert result.outputs == [6]

    def test_do_while_runs_at_least_once(self):
        result = run_source("do\nwrite(1);\nwhile (0);")
        assert result.outputs == [1]

    def test_for_loop(self):
        result = run_source(
            "s = 0;\nfor (i = 0; i < 3; i = i + 1)\ns = s + i;\nwrite(s);"
        )
        assert result.outputs == [3]

    def test_break(self):
        result = run_source(
            "i = 0;\nwhile (1) {\nif (i == 3)\nbreak;\ni = i + 1;\n}\n"
            "write(i);"
        )
        assert result.outputs == [3]

    def test_continue(self):
        result = run_source(
            "s = 0;\nfor (i = 0; i < 5; i = i + 1) {\n"
            "if (i % 2 == 0)\ncontinue;\ns = s + i;\n}\nwrite(s);"
        )
        assert result.outputs == [4]

    def test_return_value(self):
        result = run_source("return 42;\nwrite(1);")
        assert result.returned == 42
        assert result.outputs == []

    def test_goto(self):
        result = run_source("goto L;\nwrite(1);\nL: write(2);")
        assert result.outputs == [2]

    def test_conditional_goto_loop(self):
        source = (
            "i = 0;\n"
            "L: i = i + 1;\n"
            "if (i < 3) goto L;\n"
            "write(i);"
        )
        assert run_source(source).outputs == [3]


class TestSwitch:
    SOURCE = (
        "switch (c) {\n"
        "case 1: write(10);\n"
        "break;\n"
        "case 2: write(20);\n"
        "case 3: write(30);\n"
        "break;\n"
        "default: write(99);\n"
        "}"
    )

    def test_matching_case(self):
        result = run_program(
            parse_program(self.SOURCE), initial_env={"c": 1}
        )
        assert result.outputs == [10]

    def test_fall_through(self):
        result = run_program(
            parse_program(self.SOURCE), initial_env={"c": 2}
        )
        assert result.outputs == [20, 30]

    def test_default(self):
        result = run_program(
            parse_program(self.SOURCE), initial_env={"c": 7}
        )
        assert result.outputs == [99]

    def test_no_default_skips(self):
        source = "switch (c) { case 1: write(1); }\nwrite(0);"
        result = run_program(parse_program(source), initial_env={"c": 5})
        assert result.outputs == [0]


class TestIO:
    def test_read_consumes_stream(self):
        result = run_source("read(a);\nread(b);\nwrite(a + b);", inputs=[3, 4])
        assert result.outputs == [7]

    def test_eof_flips_after_last_read(self):
        source = (
            "n = 0;\nwhile (!eof()) {\nread(x);\nn = n + 1;\n}\nwrite(n);"
        )
        assert run_source(source, inputs=[5, 6, 7]).outputs == [3]

    def test_eof_true_on_empty_input(self):
        assert run_source("write(eof());").outputs == [1]

    def test_read_past_end_yields_zero(self):
        result = run_source("read(a);\nwrite(a);", inputs=[])
        assert result.outputs == [0]


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("7 / 2", 3),
            ("-7 / 2", -3),  # C truncation toward zero
            ("7 % 2", 1),
            ("-7 % 2", -1),  # sign of dividend
            ("7 / 0", 0),  # totalised
            ("7 % 0", 0),
            ("3 < 4", 1),
            ("4 <= 4", 1),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("1 && 0", 0),
            ("1 || 0", 1),
            ("!3", 0),
            ("!0", 1),
            ("-(2 + 3)", -5),
        ],
    )
    def test_expression(self, expr, expected):
        assert run_source(f"write({expr});").outputs == [expected]


class TestIntrinsics:
    def test_default_paper_functions(self):
        assert run_source("write(f1(3));").outputs == [7]
        assert run_source("write(f2(3));").outputs == [9]
        assert run_source("write(f3(3));").outputs == [0]

    def test_unknown_intrinsic_is_deterministic(self):
        first = run_source("write(mystery(4));").outputs
        second = run_source("write(mystery(4));").outputs
        assert first == second

    def test_custom_registry(self):
        registry = DEFAULT_INTRINSICS.with_function("twice", lambda x: 2 * x)
        result = run_source("write(twice(21));", intrinsics=registry)
        assert result.outputs == [42]

    def test_eof_cannot_be_registered(self):
        with pytest.raises(InterpreterError):
            IntrinsicRegistry({"eof": lambda: 1})

    def test_wrong_arity_reported(self):
        with pytest.raises(InterpreterError):
            run_source("write(min(1));")


class TestLimitsAndWatches:
    def test_step_limit(self):
        with pytest.raises(InterpreterError) as info:
            run_source("L: goto M;\nM: goto L;", step_limit=100)
        assert "step limit" in str(info.value)

    def test_watch_records_trajectory(self):
        program = parse_program(
            "s = 0;\nfor (i = 0; i < 3; i = i + 1)\ns = s + 10;\nwrite(s);"
        )
        cfg = build_cfg(program)
        body = next(n for n in cfg.statement_nodes() if n.text == "s = s + 10")
        interp = Interpreter(cfg)
        result = interp.run(watch={body.id: "s"})
        # Value of s each time control REACHES the statement (before it
        # executes).
        assert result.trajectories[body.id] == [0, 10, 20]

    def test_watch_on_unexecuted_node_is_empty(self):
        program = parse_program("if (0)\nx = 1;")
        cfg = build_cfg(program)
        interp = Interpreter(cfg)
        result = interp.run(watch={2: "x"})
        assert result.trajectories[2] == []

    def test_steps_counted(self):
        result = run_source("x = 1;\ny = 2;")
        assert result.steps == 3  # entry + two statements
