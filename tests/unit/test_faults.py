"""Unit tests for the deterministic fault-injection plans in
:mod:`repro.service.faults`."""

import json
import time

import pytest

from repro.service.faults import FaultPlan, FaultRule, InjectedFaultError
from repro.service.resilience import Budget, BudgetExceededError


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="error", rate=1.5)
        with pytest.raises(ValueError, match="seconds"):
            FaultRule(kind="latency", seconds=-1)

    def test_matching(self):
        rule = FaultRule(kind="error", op="slice", algorithm="agrawal")
        assert rule.matches("slice", "agrawal")
        assert not rule.matches("slice", "conservative")
        assert not rule.matches("compare", "agrawal")
        assert FaultRule(kind="error").matches("anything", None)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault rule field"):
            FaultRule.from_dict({"kind": "error", "when": "always"})
        with pytest.raises(ValueError, match="missing required"):
            FaultRule.from_dict({"op": "slice"})


class TestFaultPlan:
    def test_from_dict_validation(self):
        with pytest.raises(ValueError, match="fault plan"):
            FaultPlan.from_dict({"rules": "all"})
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_dict({"rules": [], "seed": "x"})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"seed": 3, "rules": [{"kind": "error", "first_n": 1}]}
            )
        )
        plan = FaultPlan.from_json_file(str(path))
        assert plan.seed == 3
        assert plan.rules[0].kind == "error"

    def test_first_n_schedule(self):
        plan = FaultPlan([FaultRule(kind="error", first_n=2)])
        budget = Budget()
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                plan.apply("slice", "agrawal", budget)
        plan.apply("slice", "agrawal", budget)  # third call passes
        snapshot = plan.snapshot()
        assert snapshot["rules"][0]["seen"] == 3
        assert snapshot["rules"][0]["fired"] == 2

    def test_every_schedule(self):
        plan = FaultPlan([FaultRule(kind="error", every=3)])
        budget = Budget()
        outcomes = []
        for _ in range(6):
            try:
                plan.apply("slice", None, budget)
                outcomes.append("ok")
            except InjectedFaultError:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "ok", "ok", "fault"]

    def test_rate_schedule_is_seeded(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(kind="error", rate=0.5)], seed=seed
            )
            outcomes = []
            for _ in range(20):
                try:
                    plan.apply("slice", None, Budget())
                    outcomes.append(0)
                except InjectedFaultError:
                    outcomes.append(1)
            return outcomes

        assert run(7) == run(7)  # deterministic per seed
        assert 0 < sum(run(7)) < 20  # actually mixes

    def test_non_matching_requests_untouched(self):
        plan = FaultPlan([FaultRule(kind="error", op="slice")])
        plan.apply("compare", None, Budget())
        assert plan.snapshot()["rules"][0]["seen"] == 0

    def test_latency_capped_at_remaining_deadline(self):
        plan = FaultPlan([FaultRule(kind="latency", seconds=30.0)])
        budget = Budget(deadline_seconds=0.05)
        start = time.monotonic()
        # The sleep is capped at the remaining deadline, after which the
        # post-sleep tick notices the deadline has passed.
        with pytest.raises(BudgetExceededError) as info:
            plan.apply("slice", None, budget)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # nowhere near the 30s the rule asked for
        assert info.value.phase == "fault-latency"

    def test_exhaust_budget_trips_next_round(self):
        plan = FaultPlan([FaultRule(kind="exhaust-budget")])
        budget = Budget(deadline_seconds=60.0)
        plan.apply("slice", "agrawal", budget)
        budget.tick("fig13-jump")  # zero-round algorithms still pass
        with pytest.raises(BudgetExceededError):
            budget.tick_round("fig7-traversal")

    def test_composed_rules_latency_then_error(self):
        plan = FaultPlan(
            [
                FaultRule(kind="latency", seconds=0.01),
                FaultRule(kind="error", message="crash"),
            ]
        )
        start = time.monotonic()
        with pytest.raises(InjectedFaultError, match="crash"):
            plan.apply("slice", None, Budget())
        assert time.monotonic() - start >= 0.01

    def test_worker_crash_degrades_to_error_outside_a_cluster(self):
        """``worker-crash`` only ``os._exit``\\ s when the host opted in
        (``allow_process_exit``, set by cluster workers); everywhere
        else — unit tests, the single-process server — it degrades to a
        structured injected error instead of killing the interpreter."""
        plan = FaultPlan([FaultRule(kind="worker-crash", first_n=1)])
        assert plan.allow_process_exit is False
        with pytest.raises(InjectedFaultError):
            plan.apply("slice", None, Budget())
        plan.apply("slice", None, Budget())  # schedule spent

    def test_store_corruption_arms_the_engines_store(self):
        class FakeStore:
            armed = 0

            def arm_corruption(self, count=1):
                self.armed += count

        class FakeEngine:
            store = FakeStore()

        engine = FakeEngine()
        plan = FaultPlan([FaultRule(kind="store-corruption", first_n=1)])
        plan.apply("slice", None, Budget(), engine=engine)
        assert engine.store.armed == 1
        # Without a store (or an engine) the rule is inert, not fatal.
        plan = FaultPlan([FaultRule(kind="store-corruption", first_n=1)])
        plan.apply("slice", None, Budget())
