"""Unit tests for PDG construction and the ProgramAnalysis bundle."""

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import (
    analyze_program,
    build_augmented_pdg,
    build_pdg,
)
from repro.pdg.graph import CONTROL, DATA, ProgramDependenceGraph
from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program


class TestGraphStructure:
    def test_add_edge_and_queries(self):
        pdg = ProgramDependenceGraph()
        pdg.add_edge(1, 2, CONTROL, "true")
        pdg.add_edge(3, 2, DATA, "x")
        assert pdg.dependences_of(2) == [1, 3]
        assert pdg.control_parents_of(2) == [1]
        assert pdg.data_parents_of(2) == [3]
        assert pdg.dependents_of(1) == [2]

    def test_duplicate_edges_deduped(self):
        pdg = ProgramDependenceGraph()
        pdg.add_edge(1, 2, DATA, "x")
        pdg.add_edge(1, 2, DATA, "x")
        assert len(pdg) == 1

    def test_backward_closure(self):
        pdg = ProgramDependenceGraph()
        pdg.add_edge(1, 2, CONTROL, "")
        pdg.add_edge(2, 3, DATA, "x")
        pdg.add_edge(4, 4, DATA, "y")  # unrelated self-loop
        assert pdg.backward_closure([3]) == {1, 2, 3}

    def test_forward_closure(self):
        pdg = ProgramDependenceGraph()
        pdg.add_edge(1, 2, CONTROL, "")
        pdg.add_edge(2, 3, DATA, "x")
        assert pdg.forward_closure([1]) == {1, 2, 3}

    def test_closure_includes_seeds(self):
        pdg = ProgramDependenceGraph()
        pdg.add_node(5)
        assert pdg.backward_closure([5]) == {5}


class TestBuilders:
    def test_pdg_merges_control_and_data(self):
        analysis = analyze_program("x = 1;\nif (x)\ny = 2;")
        pdg = analysis.pdg
        assert 1 in pdg.data_parents_of(2)
        assert 2 in pdg.control_parents_of(3)

    def test_build_pdg_from_cfg_alone(self):
        cfg = build_cfg(parse_program("x = 1;\nwrite(x);"))
        pdg = build_pdg(cfg)
        assert 1 in pdg.data_parents_of(2)

    def test_augmented_pdg_has_jump_control_edges(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        augmented = analysis.augmented_pdg
        # In the augmented PDG statements are control dependent on the
        # unconditional jumps (pseudo-predicates); in the plain PDG they
        # never are.
        jump_children = augmented.dependents_of(13)
        assert jump_children, "goto 13 controls nothing in augmented PDG?"
        assert analysis.pdg.dependents_of(13) == []

    def test_augmented_pdg_shares_data_dependence(self):
        analysis = analyze_program(PAPER_PROGRAMS["fig3a"].source)
        plain_data = {
            (s, d)
            for s, d, kind, _ in analysis.pdg.edges()
            if kind == DATA
        }
        augmented_data = {
            (s, d)
            for s, d, kind, _ in analysis.augmented_pdg.edges()
            if kind == DATA
        }
        assert plain_data == augmented_data

    def test_augmented_artifacts_cached(self):
        analysis = analyze_program("x = 1;")
        assert analysis.augmented_cfg is analysis.augmented_cfg
        assert analysis.augmented_pdg is analysis.augmented_pdg


class TestProgramAnalysis:
    def test_accepts_source_or_ast(self):
        source = "x = 1;"
        from_source = analyze_program(source)
        from_ast = analyze_program(parse_program(source))
        assert len(from_source.cfg) == len(from_ast.cfg)

    def test_node_text(self):
        analysis = analyze_program("x = 1;")
        assert analysis.node_text(1) == "x = 1"

    def test_lines_of(self):
        analysis = analyze_program("x = 1;\ny = 2;")
        assert analysis.lines_of([1, 2]) == {1: 1, 2: 2}

    def test_reaching_defs_of(self):
        analysis = analyze_program("x = 1;\nif (c)\nx = 2;\nwrite(x);")
        assert analysis.reaching_defs_of(4, "x") == [1, 3]

    def test_reaching_defs_of_unknown_var_empty(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        assert analysis.reaching_defs_of(2, "zzz") == []

    def test_dominator_algorithm_selectable(self):
        first = analyze_program("x = 1;", dominator_algorithm="iterative")
        second = analyze_program(
            "x = 1;", dominator_algorithm="lengauer-tarjan"
        )
        assert first.pdt.as_parent_map() == second.pdt.as_parent_map()

    def test_invalid_dominator_algorithm(self):
        with pytest.raises(ValueError):
            analyze_program("x = 1;", dominator_algorithm="nope")


class TestReachingDefsIndex:
    def test_index_matches_linear_scan_on_corpus(self):
        """The per-(node, var) index answers exactly what the old
        linear scan over ``reaching.in_`` answered."""
        for name in sorted(PAPER_PROGRAMS):
            analysis = analyze_program(PAPER_PROGRAMS[name].source)
            for node in analysis.cfg.sorted_nodes():
                for var in sorted(node.uses | node.defs):
                    expected = sorted(
                        d.node
                        for d in analysis.reaching.in_[node.id]
                        if d.var == var
                    )
                    assert (
                        analysis.reaching_defs_of(node.id, var)
                        == expected
                    ), (name, node.id, var)

    def test_result_lists_are_not_aliased(self):
        analysis = analyze_program("x = 1;\nwrite(x);")
        first = analysis.reaching_defs_of(2, "x")
        first.append(999)
        assert analysis.reaching_defs_of(2, "x") == [1]
