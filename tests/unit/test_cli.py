"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.corpus import PAPER_PROGRAMS


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "fig3a.sl"
    path.write_text(PAPER_PROGRAMS["fig3a"].source)
    return str(path)


@pytest.fixture
def fig5_file(tmp_path):
    path = tmp_path / "fig5a.sl"
    path.write_text(PAPER_PROGRAMS["fig5a"].source)
    return str(path)


class TestParse:
    def test_pretty_prints(self, fig3_file, capsys):
        assert main(["parse", fig3_file]) == 0
        out = capsys.readouterr().out
        assert "L3: if (eof()) goto L14;" in out

    def test_invalid_program_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.sl"
        path.write_text("goto nowhere;")
        assert main(["parse", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["parse", "/no/such/file.sl"]) == 1


class TestRun:
    def test_outputs_printed(self, fig3_file, capsys):
        assert main(["run", fig3_file, "--input", "3,-1,4"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        # sum = f3(3) + f1(-1) + f2(4) = 0 - 1 + 16 = 15; positives = 2.
        assert out == ["15", "2"]

    def test_env_bindings(self, tmp_path, capsys):
        path = tmp_path / "env.sl"
        path.write_text("write(c + 1);")
        assert main(["run", str(path), "--env", "c=41"]) == 0
        assert capsys.readouterr().out.strip() == "42"


class TestSlice:
    def test_extracted_source(self, fig3_file, capsys):
        code = main(
            ["slice", fig3_file, "--line", "15", "--var", "positives"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "positives = positives + 1" in out
        assert "sum = sum + f1(x)" not in out
        assert "L14: ;" in out

    def test_json_mode_emits_protocol_envelope(self, fig3_file, capsys):
        import json

        code = main(
            [
                "slice",
                fig3_file,
                "--line",
                "15",
                "--var",
                "positives",
                "--json",
            ]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True and envelope["op"] == "slice"
        result = envelope["result"]
        assert result["criterion"] == {"line": 15, "var": "positives"}
        assert result["size"] == len(result["nodes"])

    def test_json_and_explain_are_exclusive(self, fig3_file, capsys):
        code = main(
            [
                "slice",
                fig3_file,
                "--line",
                "15",
                "--var",
                "positives",
                "--json",
                "--explain",
            ]
        )
        assert code == 2

    def test_nodes_listing(self, fig3_file, capsys):
        code = main(
            [
                "slice", fig3_file, "--line", "15", "--var", "positives",
                "--nodes",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slice by agrawal" in out

    def test_algorithm_selection(self, fig5_file, capsys):
        code = main(
            [
                "slice", fig5_file, "--line", "14", "--var", "positives",
                "--algorithm", "conservative",
            ]
        )
        assert code == 0
        assert "continue" in capsys.readouterr().out

    def test_bad_line_reports_error(self, fig3_file, capsys):
        code = main(["slice", fig3_file, "--line", "99", "--var", "x"])
        assert code == 1
        assert "no statement at line 99" in capsys.readouterr().err

    def test_explain_flag(self, fig3_file, capsys):
        code = main(
            [
                "slice", fig3_file, "--line", "15", "--var", "positives",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# conventional slice" in out
        assert "INCLUDE" in out
        assert "positives = positives + 1" in out  # extraction follows

    def test_explain_requires_agrawal(self, fig3_file, capsys):
        code = main(
            [
                "slice", fig3_file, "--line", "15", "--var", "positives",
                "--explain", "--algorithm", "lyle",
            ]
        )
        assert code == 2


class TestCompare:
    def test_lists_every_algorithm(self, fig3_file, capsys):
        code = main(
            ["compare", fig3_file, "--line", "15", "--var", "positives"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("conventional", "agrawal", "ball-horwitz", "lyle"):
            assert name in out
        # Structured algorithms refuse unstructured input, visibly.
        assert "refused" in out

    def test_json_mode_emits_protocol_envelope(self, fig3_file, capsys):
        import json

        code = main(
            [
                "compare",
                fig3_file,
                "--line",
                "15",
                "--var",
                "positives",
                "--json",
            ]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True and envelope["op"] == "compare"
        rows = {
            row["name"]: row for row in envelope["result"]["algorithms"]
        }
        assert rows["agrawal"]["ok"] is True
        assert rows["structured"]["ok"] is False
        assert rows["structured"]["error"]["code"] == "slice-error"


class TestDynamic:
    def test_dynamic_slice_listing(self, fig3_file, capsys):
        code = main(
            [
                "dynamic", fig3_file, "--line", "15", "--var", "positives",
                "--input", "3,-1,4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic slice" in out
        assert "positives = positives + 1" in out
        assert "trace:" in out

    def test_dynamic_never_executed(self, tmp_path, capsys):
        path = tmp_path / "dead.sl"
        path.write_text("if (0)\nx = 1;\nwrite(x);")
        code = main(
            ["dynamic", str(path), "--line", "2", "--var", "x"]
        )
        assert code == 1
        assert "never executed" in capsys.readouterr().err


class TestPyslice:
    def test_python_file_sliced(self, tmp_path, capsys):
        path = tmp_path / "prog.py"
        path.write_text(
            "count = 0\n"
            "total = 0\n"
            "while not eof():\n"
            "    x = read()\n"
            "    if x <= 0:\n"
            "        continue\n"
            "    count += 1\n"
            "print(count)\n"
        )
        code = main(["pyslice", str(path), "--line", "8", "--var", "count"])
        assert code == 0
        out = capsys.readouterr().out
        assert ">    6         continue" in out
        assert out.splitlines()[1].startswith(" ")  # total = 0 excluded


class TestCheck:
    def test_text_report(self, fig3_file, capsys):
        assert main(["check", fig3_file]) == 0
        out = capsys.readouterr().out
        assert "SL105" in out
        assert "1 diagnostic" in out

    def test_json_envelope(self, fig3_file, capsys):
        import json

        assert main(["check", fig3_file, "--format", "json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True and envelope["op"] == "check"
        assert envelope["result"]["counts"] == {"SL105": 1}

    def test_clean_program(self, tmp_path, capsys):
        path = tmp_path / "clean.sl"
        path.write_text("read(x);\nwrite(x);\n")
        assert main(["check", str(path)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_error_findings_set_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.sl"
        path.write_text("goto nowhere;\n")
        assert main(["check", str(path)]) == 1
        assert "SL003" in capsys.readouterr().out

    def test_syntax_error_is_a_diagnostic_not_a_crash(self, tmp_path, capsys):
        path = tmp_path / "syntax.sl"
        path.write_text("read(")
        assert main(["check", str(path)]) == 1
        assert "SL001" in capsys.readouterr().out

    def test_select_and_ignore_flags(self, fig3_file, capsys):
        assert main(["check", fig3_file, "--ignore", "SL105"]) == 0
        assert "no diagnostics" in capsys.readouterr().out
        assert main(["check", fig3_file, "--select", "SL2,SL105"]) == 0
        assert "SL105" in capsys.readouterr().out


class TestGraph:
    def test_dot_output(self, fig3_file, capsys):
        assert main(["graph", fig3_file, "--kind", "pdt"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_ascii_tree(self, fig3_file, capsys):
        assert main(["graph", fig3_file, "--kind", "pdt", "--ascii"]) == 0
        assert "EXIT" in capsys.readouterr().out

    def test_ascii_cfg(self, fig3_file, capsys):
        assert main(["graph", fig3_file, "--kind", "cfg", "--ascii"]) == 0
        assert "ENTRY" in capsys.readouterr().out

    def test_ascii_unsupported_kind(self, fig3_file, capsys):
        assert main(["graph", fig3_file, "--kind", "pdg", "--ascii"]) == 2

    def test_highlighted_graph(self, fig3_file, capsys):
        code = main(
            [
                "graph", fig3_file, "--kind", "cfg",
                "--line", "15", "--var", "positives",
            ]
        )
        assert code == 0
        assert "lightgrey" in capsys.readouterr().out


class TestClosureIndexFlag:
    def test_off_disables_the_index_for_the_run(self, fig3_file, capsys):
        from repro.pdg.closure import closure_index_enabled

        code = main(
            [
                "slice",
                fig3_file,
                "--line",
                "9",
                "--var",
                "z",
                "--closure-index",
                "off",
            ]
        )
        assert code == 0
        capsys.readouterr()
        # The knob is applied for the invocation; restore the default
        # for the rest of the suite.
        assert not closure_index_enabled()
        from repro.pdg.closure import set_closure_index_enabled

        set_closure_index_enabled(True)

    def test_on_is_the_default(self, fig3_file, capsys):
        from repro.pdg.closure import closure_index_enabled

        code = main(["slice", fig3_file, "--line", "9", "--var", "z"])
        assert code == 0
        capsys.readouterr()
        assert closure_index_enabled()

    def test_rejects_unknown_value(self, fig3_file, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "slice",
                    fig3_file,
                    "--line",
                    "9",
                    "--var",
                    "z",
                    "--closure-index",
                    "maybe",
                ]
            )
