"""Unit tests for the ControlFlowGraph structure itself."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph, EdgeLabel, NodeKind
from repro.lang.parser import parse_program


def cfg_of(source):
    return build_cfg(parse_program(source))


class TestConstructionPrimitives:
    def test_new_node_ids_are_dense(self):
        cfg = ControlFlowGraph()
        a = cfg.new_node(NodeKind.ENTRY)
        b = cfg.new_node(NodeKind.EXIT)
        assert (a.id, b.id) == (0, 1)

    def test_add_edge_unknown_node_rejected(self):
        cfg = ControlFlowGraph()
        cfg.new_node(NodeKind.ENTRY)
        with pytest.raises(KeyError):
            cfg.add_edge(0, 99, EdgeLabel.FALL)

    def test_parallel_edges_allowed(self):
        cfg = ControlFlowGraph()
        cfg.new_node(NodeKind.ENTRY)
        cfg.new_node(NodeKind.EXIT)
        cfg.add_edge(0, 1, "case 1")
        cfg.add_edge(0, 1, "case 2")
        assert len(cfg.successors(0)) == 2


class TestQueries:
    def test_successors_and_predecessors(self):
        cfg = cfg_of("if (c)\nx = 1;\ny = 2;")
        assert set(cfg.succ_ids(1)) == {2, 3}
        assert set(cfg.pred_ids(3)) == {1, 2}

    def test_edges_iteration_complete(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        assert len(list(cfg.edges())) == 3

    def test_statement_nodes_excludes_entry_exit(self):
        cfg = cfg_of("x = 1;")
        kinds = {node.kind for node in cfg.statement_nodes()}
        assert NodeKind.ENTRY not in kinds
        assert NodeKind.EXIT not in kinds

    def test_jump_nodes_in_order(self):
        cfg = cfg_of("while (c) {\nbreak;\n}\nreturn;")
        assert [n.kind for n in cfg.jump_nodes()] == [
            NodeKind.BREAK,
            NodeKind.RETURN,
        ]

    def test_node_of_and_entry_of(self):
        program = parse_program("while (c)\nx = 1;")
        cfg = build_cfg(program)
        loop = program.body[0]
        assert cfg.node_of(loop) == 1
        assert cfg.entry_of(loop) == 1
        assert cfg.has_node_for(loop)

    def test_block_has_no_node_but_has_entry(self):
        program = parse_program("{ x = 1; }")
        cfg = build_cfg(program)
        block = program.body[0]
        assert not cfg.has_node_for(block)
        assert cfg.entry_of(block) == 1

    def test_label_entry(self):
        cfg = cfg_of("goto L;\nL: x = 1;")
        assert cfg.label_entry["L"] == 2

    def test_len(self):
        cfg = cfg_of("x = 1;")
        assert len(cfg) == 3


class TestReachability:
    def test_reachable_from_entry(self):
        cfg = cfg_of("if (c)\nreturn;\nx = 1;")
        reachable = cfg.reachable_from(cfg.entry_id)
        assert set(range(len(cfg))) == set(reachable)

    def test_reaches(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        assert cfg.reaches(1, 2)
        assert not cfg.reaches(2, 1)

    def test_reachable_is_inclusive(self):
        cfg = cfg_of("x = 1;")
        assert 1 in cfg.reachable_from(1)


class TestInterop:
    def test_to_networkx(self):
        graph = cfg_of("if (c)\nx = 1;").to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.has_edge(1, 2)

    def test_describe_mentions_every_node(self):
        cfg = cfg_of("x = 1;\ny = 2;")
        text = cfg.describe()
        assert "x = 1" in text and "y = 2" in text
        assert "ENTRY" in text and "EXIT" in text
