"""Unit tests for the Ball–Horwitz augmented CFG."""

from repro.cfg.augmented import NOT_TAKEN, build_augmented_cfg
from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.corpus import PAPER_PROGRAMS
from repro.lang.parser import parse_program


def both(source):
    cfg = build_cfg(parse_program(source))
    return cfg, build_augmented_cfg(cfg)


class TestAugmentation:
    def test_goto_gets_not_taken_edge_to_lexical_successor(self):
        cfg, aug = both("goto L;\nx = 1;\nL: y = 2;")
        goto_id = 1
        labels = {label for _, label in aug.successors(goto_id)}
        assert NOT_TAKEN in labels
        targets = dict(
            (label, dst) for dst, label in aug.successors(goto_id)
        )
        assert targets[NOT_TAKEN] == 2  # the next statement, not L

    def test_break_gets_not_taken_edge(self):
        cfg, aug = both("while (c) {\nbreak;\nx = 1;\n}")
        break_id = 2
        targets = dict(
            (label, dst) for dst, label in aug.successors(break_id)
        )
        assert targets[NOT_TAKEN] == 3

    def test_return_not_taken_edge(self):
        cfg, aug = both("return;\nx = 1;")
        targets = dict((label, dst) for dst, label in aug.successors(1))
        assert targets[NOT_TAKEN] == 2

    def test_base_graph_untouched(self):
        cfg, aug = both("goto L;\nL: x = 1;")
        base_edges = list(cfg.edges())
        assert all(label != NOT_TAKEN for _, _, label in base_edges)

    def test_non_jump_nodes_unchanged(self):
        cfg, aug = both("x = 1;\ny = 2;")
        assert list(aug.edges()) == list(cfg.edges())

    def test_conditional_goto_not_augmented(self):
        # CONDGOTO is already a branch; only unconditional jumps get the
        # pseudo-edge.
        cfg, aug = both("if (c) goto L;\nL: x = 1;")
        condgoto = aug.nodes[1]
        assert condgoto.kind is NodeKind.CONDGOTO
        labels = {label for _, label in aug.successors(1)}
        assert NOT_TAKEN not in labels

    def test_every_jump_becomes_a_multi_successor_node(self):
        for name, entry in sorted(PAPER_PROGRAMS.items()):
            cfg, aug = both(entry.source)
            for jump in cfg.jump_nodes():
                assert len(aug.succ_ids(jump.id)) >= 2, (name, jump.id)

    def test_shared_metadata_copied(self):
        cfg, aug = both("goto L;\nL: x = 1;")
        assert aug.entry_id == cfg.entry_id
        assert aug.exit_id == cfg.exit_id
        assert aug.label_entry == cfg.label_entry
        assert aug.lexical_parent == cfg.lexical_parent
