"""Unit tests for the bitset analysis kernels.

Each kernel's fixed point is checked against the corresponding
set-based reference implementation on the full paper corpus (the
engine-level identity over random programs lives in
``tests/property/test_engine_differential.py``).
"""

import pytest

from repro.analysis.bitset import (
    BitUniverse,
    definite_assignment,
    node_universe,
    reverse_postorder,
    reverse_reachable,
    solve_gen_kill_bitset,
)
from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching_defs import compute_reaching_definitions
from repro.corpus import PAPER_PROGRAMS
from repro.lint.rules import _definite_assignment_sets
from repro.pdg.builder import analyze_program

CORPUS = sorted(PAPER_PROGRAMS)


@pytest.fixture(scope="module")
def corpus_cfgs():
    return {
        name: analyze_program(PAPER_PROGRAMS[name].source).cfg
        for name in CORPUS
    }


class TestBitUniverse:
    def test_bits_follow_construction_order(self):
        universe = BitUniverse(["a", "b", "c"])
        assert universe.bit("a") == 1
        assert universe.bit("b") == 2
        assert universe.bit("c") == 4

    def test_duplicates_keep_first_position(self):
        universe = BitUniverse(["a", "b", "a", "c", "b"])
        assert len(universe) == 3
        assert universe.bit("c") == 4

    def test_unknown_fact_raises(self):
        universe = BitUniverse(["a"])
        with pytest.raises(KeyError):
            universe.bit("zzz")
        assert "zzz" not in universe
        assert "a" in universe

    def test_mask_of_and_full_mask(self):
        universe = BitUniverse("abcd")
        assert universe.mask_of("bd") == 0b1010
        assert universe.full_mask == 0b1111
        assert BitUniverse([]).full_mask == 0

    def test_decode_roundtrip(self):
        facts = ["x", "y", "z", "w"]
        universe = BitUniverse(facts)
        for subset in (
            set(),
            {"x"},
            {"y", "w"},
            {"x", "y", "z", "w"},
        ):
            assert universe.decode(universe.mask_of(subset)) == subset

    def test_node_universe_sorts_ids(self):
        universe = node_universe([9, 2, 5])
        assert universe.bit(2) == 1
        assert universe.bit(5) == 2
        assert universe.bit(9) == 4


class TestReversePostorder:
    @pytest.mark.parametrize("name", CORPUS)
    @pytest.mark.parametrize("forward", [True, False])
    def test_is_a_permutation_of_the_cfg(self, corpus_cfgs, name, forward):
        cfg = corpus_cfgs[name]
        order = reverse_postorder(cfg, forward=forward)
        assert sorted(order) == sorted(cfg.nodes)
        assert len(order) == len(set(order))

    @pytest.mark.parametrize("name", CORPUS)
    def test_forward_order_starts_at_entry(self, corpus_cfgs, name):
        cfg = corpus_cfgs[name]
        assert reverse_postorder(cfg, forward=True)[0] == cfg.entry_id

    @pytest.mark.parametrize("name", CORPUS)
    def test_backward_order_starts_at_exit(self, corpus_cfgs, name):
        cfg = corpus_cfgs[name]
        assert reverse_postorder(cfg, forward=False)[0] == cfg.exit_id


class TestGenKillSolver:
    """The raw solver against the set-based dataflow framework, via the
    two problems the service actually runs."""

    @pytest.mark.parametrize("name", CORPUS)
    def test_reaching_definitions_match(self, corpus_cfgs, name):
        cfg = corpus_cfgs[name]
        reference = compute_reaching_definitions(cfg, engine="sets")
        fast = compute_reaching_definitions(cfg, engine="bitset")
        assert reference.in_ == fast.in_
        assert reference.out == fast.out

    @pytest.mark.parametrize("name", CORPUS)
    def test_liveness_matches(self, corpus_cfgs, name):
        cfg = corpus_cfgs[name]
        reference = compute_liveness(cfg, engine="sets")
        fast = compute_liveness(cfg, engine="bitset")
        assert reference.in_ == fast.in_
        assert reference.out == fast.out

    def test_kill_wins_over_inherited_facts(self, corpus_cfgs):
        """Direct solver call: a fact killed on the only path does not
        survive, and gen resurrects it downstream of the kill."""
        cfg = corpus_cfgs["fig3a"]
        universe = BitUniverse(["d1"])
        entry = cfg.entry_id
        order = reverse_postorder(cfg, forward=True)
        first, second = order[1], order[2]
        gen = {entry: universe.bit("d1")}
        kill = {first: universe.bit("d1")}
        before, after = solve_gen_kill_bitset(
            cfg, universe, gen, kill, forward=True
        )
        assert after[entry] == universe.bit("d1")
        assert after[first] == 0
        assert before[second] in (0, universe.bit("d1"))


class TestDefiniteAssignment:
    @pytest.mark.parametrize("name", CORPUS)
    def test_matches_set_reference(self, corpus_cfgs, name):
        cfg = corpus_cfgs[name]
        reachable = cfg.reachable_from(cfg.entry_id)
        assert definite_assignment(cfg, reachable) == (
            _definite_assignment_sets(cfg, reachable)
        )


class TestReverseReachable:
    @pytest.mark.parametrize("name", CORPUS)
    def test_matches_reverse_dfs(self, corpus_cfgs, name):
        cfg = corpus_cfgs[name]
        seen = {cfg.exit_id}
        stack = [cfg.exit_id]
        while stack:
            current = stack.pop()
            for pred in cfg.pred_ids(current):
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        assert reverse_reachable(cfg, cfg.exit_id) == frozenset(seen)

    @pytest.mark.parametrize("name", CORPUS)
    def test_non_exit_target(self, corpus_cfgs, name):
        """Reverse reachability to an arbitrary statement node."""
        cfg = corpus_cfgs[name]
        target = min(node.id for node in cfg.statement_nodes())
        seen = {target}
        stack = [target]
        while stack:
            current = stack.pop()
            for pred in cfg.pred_ids(current):
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        assert reverse_reachable(cfg, target) == frozenset(seen)
