"""Shared fixtures: cached analyses of the paper corpus."""

from __future__ import annotations

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.pdg.builder import ProgramAnalysis, analyze_program

_ANALYSIS_CACHE = {}


def corpus_analysis(name: str) -> ProgramAnalysis:
    """Analyze a corpus program once per test session."""
    if name not in _ANALYSIS_CACHE:
        _ANALYSIS_CACHE[name] = analyze_program(PAPER_PROGRAMS[name].source)
    return _ANALYSIS_CACHE[name]


@pytest.fixture
def analyze():
    """Function fixture: source text -> ProgramAnalysis."""
    return analyze_program


@pytest.fixture(params=sorted(PAPER_PROGRAMS))
def corpus_entry(request):
    """Parametrised over every paper program: (PaperProgram, analysis)."""
    program = PAPER_PROGRAMS[request.param]
    return program, corpus_analysis(request.param)
