"""Differential properties of the whole-SDG closure index.

The index-backed interprocedural slicer (``repro.sdg.closure``) must be
**observationally identical** to the two-pass reference worklist — the
index is a pure evaluation-strategy change, never an algorithm change:

* **node-for-node identity** — same per-unit slice sets, same jump-round
  traversal counters, same re-associated label maps, byte-identical
  protocol payloads, across the paper corpus, pinned structured /
  unstructured / multi-procedure fleets (recursion included), and the
  two recorded trigger geometries (seed 98, seed 15182) whose jump
  interactions broke earlier passes;
* **degeneracy** — on a single-procedure program the indexed slicer must
  still reduce to exactly Agrawal's Fig. 7 algorithm: same statement
  nodes, same traversal count, same ``label_map``.

Both configurations run over the *same* analysis: the knob is consulted
per slice, so the reference run never touches the index and the indexed
run builds it lazily on the shared SDG.
"""

import random

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import (
    GeneratorConfig,
    generate_interprocedural,
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.lang.errors import SlangError
from repro.pdg.builder import analyze_program
from repro.sdg.closure import sdg_closure_index
from repro.sdg.slicer import interprocedural_slice
from repro.service.protocol import slice_result_payload
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion

#: Same pinned fleets as test_sdg_differential.py, so a divergence here
#: reproduces against the exact programs the two-pass suite covers.
STRUCTURED_SEEDS = range(3100, 3113)
UNSTRUCTURED_SEEDS = range(7100, 7113)
MULTIPROC_SEEDS = range(9100, 9130)


def _assert_indexed_identical(analysis, criterion):
    """Reference (index off) and indexed runs must agree on everything
    the protocol can observe; errors must be the same error."""
    with sdg_closure_index(False):
        try:
            reference = interprocedural_slice(analysis, criterion)
        except SlangError as error:
            with sdg_closure_index(True), pytest.raises(type(error)):
                interprocedural_slice(analysis, criterion)
            return
    with sdg_closure_index(True):
        indexed = interprocedural_slice(analysis, criterion)

    ref = reference.sdg_result
    new = indexed.sdg_result
    assert not ref.index_used
    assert new.index_used
    assert ref.per_proc == new.per_proc
    assert ref.traversals == new.traversals
    assert ref.label_maps == new.label_maps
    assert slice_result_payload(
        ref.as_slice_result()
    ) == slice_result_payload(new.as_slice_result())


def _assert_degenerate_identity(analysis, criterion):
    try:
        reference = agrawal_slice(analysis, criterion)
    except SlangError as error:
        with sdg_closure_index(True), pytest.raises(type(error)):
            interprocedural_slice(analysis, criterion)
        return
    with sdg_closure_index(True):
        via_index = interprocedural_slice(analysis, criterion)
    assert via_index.statement_nodes() == reference.statement_nodes()
    assert via_index.traversals == reference.traversals
    assert via_index.label_map == reference.label_map


class TestCorpusIdentity:
    def test_paper_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            analysis = analyze_program(entry.source)
            criterion = SlicingCriterion(*entry.criterion)
            _assert_indexed_identical(analysis, criterion)
            _assert_degenerate_identity(analysis, criterion)


class TestFleetIdentity:
    @pytest.mark.parametrize("seed", STRUCTURED_SEEDS)
    def test_structured_fleet(self, seed):
        rng = random.Random(seed)
        program = realize(generate_structured(rng))
        line, var = random_criterion(rng, program)
        analysis = analyze_program(program)
        criterion = SlicingCriterion(line=line, var=var)
        _assert_indexed_identical(analysis, criterion)
        _assert_degenerate_identity(analysis, criterion)

    @pytest.mark.parametrize("seed", UNSTRUCTURED_SEEDS)
    def test_unstructured_fleet(self, seed):
        rng = random.Random(seed)
        program = realize(generate_unstructured(rng))
        line, var = random_criterion(rng, program)
        analysis = analyze_program(program)
        criterion = SlicingCriterion(line=line, var=var)
        _assert_indexed_identical(analysis, criterion)
        _assert_degenerate_identity(analysis, criterion)

    @pytest.mark.parametrize("seed", MULTIPROC_SEEDS)
    def test_multiproc_fleet(self, seed):
        """Multi-procedure programs, recursion on every fifth seed —
        the geometries where ascent/descent/binding completion and the
        summary edges actually carry weight."""
        rng = random.Random(seed)
        config = GeneratorConfig(allow_recursion=(seed % 5 == 0))
        program = realize(generate_interprocedural(rng, config))
        assert program.procs, "generator must emit procedures"
        line, var = random_criterion(rng, program)
        _assert_indexed_identical(
            analyze_program(program), SlicingCriterion(line=line, var=var)
        )


class TestTriggerGeometries:
    """The two recorded jump-interaction counterexamples (ROADMAP,
    EXPERIMENTS.md E4/E6).  Both are order-sensitivity traps for the
    jump rounds; the index precomputes the jump *schedule*, so these pin
    that the schedule — and with it every npd-vs-nls verdict — is
    unchanged."""

    def test_seed98_redundant_break_geometry(self):
        program = realize(generate_structured(random.Random(98), None))
        line, var = random_criterion(random.Random(0), program)
        assert (line, var) == (63, "v3")
        analysis = analyze_program(program)
        criterion = SlicingCriterion(line=line, var=var)
        _assert_indexed_identical(analysis, criterion)
        _assert_degenerate_identity(analysis, criterion)

    def test_seed15182_switch_break_geometry(self):
        program = realize(generate_structured(random.Random(15182), None))
        line, var = random_criterion(random.Random(0), program)
        assert (line, var) == (30, "v3")
        analysis = analyze_program(program)
        criterion = SlicingCriterion(line=line, var=var)
        _assert_indexed_identical(analysis, criterion)
        _assert_degenerate_identity(analysis, criterion)
        # The historical extra (the switch-nested break, node 10) must
        # stay out of the indexed slice exactly as it does in Fig. 7.
        with sdg_closure_index(True):
            indexed = interprocedural_slice(analysis, criterion)
        assert 10 not in set(indexed.statement_nodes())


class TestAllCriteriaSweep:
    """Exhaustive identity on one multi-procedure program: every
    ``(line, var, proc)`` the program admits, not just sampled ones."""

    def test_every_criterion_matches(self):
        from repro.lang.ast_nodes import MAIN_UNIT
        from repro.sdg.builder import sdg_for_analysis

        rng = random.Random(4207)
        config = GeneratorConfig(
            num_procs=4, max_stmts=6, allow_recursion=True
        )
        program = realize(generate_interprocedural(rng, config))
        analysis = analyze_program(program)
        with sdg_closure_index(False):
            sdg = sdg_for_analysis(analysis)
        checked = 0
        for unit, info in sdg.procs.items():
            proc = None if unit == MAIN_UNIT else unit
            for node in info.analysis.cfg.statement_nodes():
                for var in sorted(node.defs | node.uses):
                    _assert_indexed_identical(
                        analysis,
                        SlicingCriterion(line=node.line, var=var, proc=proc),
                    )
                    checked += 1
        assert checked > 20
