"""Differential properties of the interprocedural slicer.

Two claims gate the SDG subsystem:

* **degeneracy** — on a single-procedure program the SDG *is* the main
  unit's PDG and the two-pass slicer must reduce to exactly Agrawal's
  Fig. 7 algorithm: same statement nodes, same traversal count, same
  re-associated labels.  Checked over the paper corpus plus a pinned
  fleet of generated programs, structured and goto-ridden.
* **well-formedness across calls** — on multi-procedure programs every
  slice must satisfy the paper's correctness conditions per unit *and*
  the SL205 call-site consistency conditions (an actual node without
  its call, a retained call without its callee, a retained procedure
  without a retained call site are all bugs).  Checked over a pinned
  fleet of generated multi-procedure programs, recursion included.
"""

import random

import pytest

from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import (
    GeneratorConfig,
    generate_interprocedural,
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.lang.errors import SlangError, UnreachableCriterionError
from repro.lang.parser import parse_program
from repro.lint.slice_check import verify_interprocedural
from repro.pdg.builder import analyze_program
from repro.sdg.slicer import interprocedural_slice
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_interprocedural_source

#: Pinned seeds — at least 25 per fleet, so a regression reproduces.
STRUCTURED_SEEDS = range(3100, 3113)
UNSTRUCTURED_SEEDS = range(7100, 7113)
MULTIPROC_SEEDS = range(9100, 9130)


def _assert_degenerate_identity(analysis, criterion):
    try:
        reference = agrawal_slice(analysis, criterion)
    except SlangError as error:
        with pytest.raises(type(error)):
            interprocedural_slice(analysis, criterion)
        return
    via_sdg = interprocedural_slice(analysis, criterion)
    assert via_sdg.statement_nodes() == reference.statement_nodes()
    assert via_sdg.traversals == reference.traversals
    assert via_sdg.label_map == reference.label_map


class TestDegeneracy:
    def test_paper_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            analysis = analyze_program(entry.source)
            criterion = SlicingCriterion(*entry.criterion)
            _assert_degenerate_identity(analysis, criterion)

    @pytest.mark.parametrize("seed", STRUCTURED_SEEDS)
    def test_structured_fleet(self, seed):
        rng = random.Random(seed)
        program = realize(generate_structured(rng))
        line, var = random_criterion(rng, program)
        _assert_degenerate_identity(
            analyze_program(program), SlicingCriterion(line=line, var=var)
        )

    @pytest.mark.parametrize("seed", UNSTRUCTURED_SEEDS)
    def test_unstructured_fleet(self, seed):
        rng = random.Random(seed)
        program = realize(generate_unstructured(rng))
        line, var = random_criterion(rng, program)
        _assert_degenerate_identity(
            analyze_program(program), SlicingCriterion(line=line, var=var)
        )


class TestMultiProcWellFormedness:
    @pytest.mark.parametrize("seed", MULTIPROC_SEEDS)
    def test_generated_fleet_verifies_clean(self, seed):
        rng = random.Random(seed)
        config = GeneratorConfig(allow_recursion=(seed % 5 == 0))
        program = realize(generate_interprocedural(rng, config))
        assert program.procs, "generator must emit procedures"
        analysis = analyze_program(program)
        line, var = random_criterion(rng, program)
        try:
            result = interprocedural_slice(
                analysis, SlicingCriterion(line=line, var=var)
            )
        except UnreachableCriterionError:
            # The generator's fallback can pick a dead write; the
            # rejection is the correct answer for it.
            return
        diagnostics = verify_interprocedural(result.sdg_result)
        assert diagnostics == [], (
            f"seed {seed}: {[str(d) for d in diagnostics]}"
        )
        # The extracted slice must itself be valid SL.
        sliced = extract_interprocedural_source(result.sdg_result)
        reparsed = parse_program(sliced)
        assert len(reparsed.procs) <= len(program.procs)

    def test_slice_is_subset_of_program(self):
        rng = random.Random(9001)
        program = realize(generate_interprocedural(rng))
        analysis = analyze_program(program)
        line, var = random_criterion(rng, program)
        result = interprocedural_slice(
            analysis, SlicingCriterion(line=line, var=var)
        )
        sdg_result = result.sdg_result
        for unit in sdg_result.units():
            cfg = sdg_result.sdg.procs[unit].analysis.cfg
            for node_id in sdg_result.statement_nodes(unit):
                assert node_id in cfg.nodes
