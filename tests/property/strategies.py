"""Hypothesis strategies for SL programs and expressions.

Two layers:

* genuinely recursive strategies (:func:`expressions`,
  :func:`statement_blocks`) that build arbitrary ASTs — used by the
  parser/printer round-trip properties;
* seeded bridges to the :mod:`repro.gen` generators
  (:func:`structured_programs`, :func:`unstructured_programs`) — used by
  the algorithm-level properties, where the generators' termination and
  liveness guarantees matter.  Hypothesis shrinks the seed, which in
  practice walks towards smaller generated programs.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.gen.generator import (
    GeneratorConfig,
    generate_structured,
    generate_unstructured,
    realize,
)
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DoWhile,
    For,
    If,
    Num,
    Program,
    Read,
    Return,
    Skip,
    Switch,
    SwitchCase,
    Unary,
    Var,
    While,
    Write,
)

_NAMES = st.sampled_from(["x", "y", "z", "total", "n0", "_tmp"])
_OPS = st.sampled_from(["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"])


def expressions(max_depth: int = 4):
    """Arbitrary SL expressions."""
    base = st.one_of(
        st.integers(min_value=0, max_value=999).map(Num),
        _NAMES.map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(_OPS, children, children).map(
                lambda t: Binary(op=t[0], left=t[1], right=t[2])
            ),
            st.tuples(st.sampled_from(["-", "!"]), children).map(
                lambda t: Unary(op=t[0], operand=t[1])
            ),
            st.tuples(
                st.sampled_from(["f1", "g2", "max"]),
                st.lists(children, min_size=0, max_size=2),
            ).map(lambda t: Call(name=t[0], args=tuple(t[1]))),
        )

    return st.recursive(base, extend, max_leaves=2 ** max_depth)


def _simple_statements():
    return st.one_of(
        st.tuples(_NAMES, expressions(2)).map(
            lambda t: Assign(target=t[0], value=t[1])
        ),
        _NAMES.map(lambda name: Read(target=name)),
        expressions(2).map(lambda e: Write(value=e)),
        st.just(Skip()),
    )


def statements(max_depth: int = 3, in_loop: bool = False):
    """Arbitrary (syntactically valid) SL statements.

    Jump placement honours the validator's rules: break/continue only
    under a loop or switch.  Goto is excluded (labels need whole-program
    coordination; the seeded generator covers gotos).
    """
    simple = _simple_statements()
    if in_loop:
        simple = st.one_of(
            simple,
            st.just(Break()),
            st.just(Continue()),
            expressions(1).map(lambda e: Return(value=e)),
        )
    if max_depth <= 0:
        return simple

    inner = statements(max_depth - 1, in_loop)
    loop_inner = statements(max_depth - 1, True)
    block = st.lists(inner, min_size=0, max_size=3).map(
        lambda items: Block(stmts=items)
    )
    loop_block = st.lists(loop_inner, min_size=0, max_size=3).map(
        lambda items: Block(stmts=items)
    )
    compound = st.one_of(
        st.tuples(expressions(2), block, st.none() | block).map(
            lambda t: If(cond=t[0], then_branch=t[1], else_branch=t[2])
        ),
        st.tuples(expressions(2), loop_block).map(
            lambda t: While(cond=t[0], body=t[1])
        ),
        st.tuples(loop_block, expressions(2)).map(
            lambda t: DoWhile(body=t[0], cond=t[1])
        ),
        st.tuples(expressions(2), loop_block).map(
            lambda t: For(
                init=Assign(target="i", value=Num(0)),
                cond=t[0],
                step=Assign(
                    target="i", value=Binary("+", Var("i"), Num(1))
                ),
                body=t[1],
            )
        ),
        st.tuples(
            expressions(1),
            st.lists(
                st.tuples(
                    st.integers(min_value=-3, max_value=6),
                    st.lists(inner, min_size=1, max_size=2),
                ),
                min_size=1,
                max_size=3,
                unique_by=lambda arm: arm[0],
            ),
        ).map(
            lambda t: Switch(
                subject=t[0],
                cases=[
                    SwitchCase(matches=[value], stmts=list(stmts))
                    for value, stmts in t[1]
                ],
            )
        ),
    )
    return st.one_of(simple, compound)


def programs(max_depth: int = 3):
    """Arbitrary goto-free SL programs."""
    return st.lists(statements(max_depth), min_size=1, max_size=6).map(
        lambda body: Program(body=body)
    )


def structured_programs(**config_kwargs):
    """Seed-driven terminating structured programs."""
    config = GeneratorConfig(**config_kwargs) if config_kwargs else None
    return st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda seed: realize(
            generate_structured(random.Random(seed), config)
        )
    )


def unstructured_programs(**config_kwargs):
    """Seed-driven flat goto programs (dead-code free, EXIT-reaching)."""
    config = GeneratorConfig(**config_kwargs) if config_kwargs else None
    return st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda seed: realize(
            generate_unstructured(random.Random(seed), config)
        )
    )


def assume_live(analysis, line: int) -> None:
    """``assume()`` that *line* is a statically reachable criterion.

    ``resolve_criterion`` rejects dead criteria with
    :class:`~repro.lang.errors.UnreachableCriterionError`; properties
    that exercise slicer *output* (not the rejection itself) call this
    to discard such examples.
    """
    from hypothesis import assume

    dead = {n.line for n in analysis.cfg.unreachable_statements()}
    assume(line not in dead)


def input_streams():
    return st.lists(
        st.integers(min_value=-9, max_value=9), min_size=0, max_size=10
    )
