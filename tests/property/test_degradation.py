"""Soundness of the engine's budget-exhaustion degradation target.

When the engine degrades an over-budget exact slice to the Fig. 13
conservative slicer, the acceptance bar is: wherever the exact
algorithm *would* have completed, the degraded slice must contain it
(the paper: Fig. 13's slice "may be larger but is never wrong").  The
engine-level path is exercised by the fault-injection integration
tests; this property pins the underlying algorithmic containment on
random structured programs, plus the end-to-end engine property that a
degraded response is a superset of the exact response for the same
request.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gen.generator import random_criterion
from repro.lang.errors import SliceError
from repro.lang.pretty import pretty
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conservative import conservative_slice
from repro.slicing.criterion import SlicingCriterion
from tests.property.strategies import assume_live, structured_programs


def stmts(result):
    return set(result.statement_nodes())


class TestDegradationSoundness:
    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_conservative_contains_agrawal(self, program, salt):
        """Fig. 13 (the degradation target) ⊇ Fig. 7 (the exact
        algorithm it stands in for) on structured programs."""
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        criterion = SlicingCriterion(line, var)
        try:
            exact = agrawal_slice(analysis, criterion)
            degraded = conservative_slice(analysis, criterion)
        except SliceError:
            assume(False)
        assert stmts(exact) <= stmts(degraded)

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_engine_degraded_superset_of_exact(self, program, salt):
        """End to end: under forced budget exhaustion the engine's
        ``degraded: true`` slice contains the slice an unbudgeted
        engine returns for the identical request."""
        from repro.service.engine import SlicingEngine
        from repro.service.faults import FaultPlan
        from repro.service.resilience import EngineLimits

        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        request = {
            "op": "slice",
            "source": pretty(program),
            "line": line,
            "var": var,
            "algorithm": "agrawal",
        }
        with SlicingEngine(workers=1) as exact_engine:
            exact_response = exact_engine.handle_payload(request)
        assume(exact_response["ok"])
        plan = FaultPlan.from_dict(
            {"rules": [{"kind": "exhaust-budget", "every": 1}]}
        )
        with SlicingEngine(
            workers=1, limits=EngineLimits(), faults=plan
        ) as degraded_engine:
            degraded_response = degraded_engine.handle_payload(request)
        if not degraded_response["ok"]:
            # Fig. 13 refused (e.g. an exit-diverting predicate): the
            # engine must surface the original budget error.
            assert (
                degraded_response["error"]["code"] == "budget-exceeded"
            )
            return
        result = degraded_response["result"]
        assert result["degraded"] is True
        assert result["degraded_from"] == "agrawal"
        assert set(exact_response["result"]["nodes"]) <= set(
            result["nodes"]
        )
