"""Differential properties of incremental re-slicing (DESIGN.md §14).

The incremental layer is pure acceleration: an edit-trace served by a
persistent :class:`~repro.service.cache.AnalysisCache` (whose unit
cache salvages untouched procedures' analyses and stitched SDG graphs)
must produce slice payloads **byte-identical** to a cold, monolithic
recompute of each edited program — nodes, lines, ``label_map``,
``traversals``, notes, per-procedure breakdowns, and the
``summary_edges`` count all included, since :func:`slice_result_payload`
is the protocol surface clients actually see.

Edit model: each step perturbs one random assignment's right-hand side
(wrapping it in ``+ k``), re-renders the canonical source, and
re-slices a fresh random criterion.  The mutation preserves the line
layout, so every *other* unit's fingerprint is unchanged — the trace
exercises exactly the salvage paths (and the counters prove reuse
actually happened, so these tests cannot silently pass through the
cold path).
"""

import random

import pytest

from repro.gen.generator import (
    GeneratorConfig,
    generate_interprocedural,
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.lang.ast_nodes import Assign, Binary, Num, Program
from repro.lang.errors import SliceError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.pdg.builder import analyze_program
from repro.service.cache import AnalysisCache
from repro.service.incremental import UnitCache, incremental
from repro.service.protocol import slice_result_payload
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import get_algorithm

EDITS_PER_TRACE = 4


def mutate_one_assignment(program: Program, rng: random.Random) -> str:
    """Wrap one random assignment's RHS in ``(... + k)`` in place and
    return the re-rendered source.  Line layout is preserved, so only
    the edited unit's fingerprint changes."""
    assigns = [
        stmt
        for stmt in program.all_statements()
        if isinstance(stmt, Assign)
    ]
    if not assigns:
        # Degenerate generated program (writes only): nothing to edit,
        # the trace step re-slices the unchanged source instead.
        return pretty(program)
    target = rng.choice(assigns)
    target.value = Binary(op="+", left=target.value, right=Num(rng.randint(1, 9)))
    return pretty(program)


def fresh_payload(source: str, criterion: SlicingCriterion, algorithm: str):
    """The reference answer: a cold monolithic build, incremental off.

    Returns either the payload dict or ``("error", message)`` — a
    criterion the slicers reject (e.g. a statically dead write) must be
    rejected identically by both paths."""
    with incremental(False):
        analysis = analyze_program(source)
        try:
            result = get_algorithm(algorithm)(analysis, criterion)
        except SliceError as exc:
            return ("error", str(exc))
        return slice_result_payload(result)


def run_trace(seed: int, make_program, algorithm: str) -> None:
    rng = random.Random(seed)
    program = make_program(rng)
    cache = AnalysisCache(capacity=8, unit_cache=UnitCache())
    source = pretty(program)
    # One criterion is pinned across the whole trace: a recurring query
    # under edit churn is exactly the shape the slice-result salvage
    # tier answers, so every step checks it against a cold recompute.
    pinned = random_criterion(random.Random(seed), parse_program(source))
    for step in range(EDITS_PER_TRACE):
        program = parse_program(source)
        line, var = random_criterion(random.Random(seed * 101 + step), program)
        analysis = cache.get_or_build(source)
        for criterion in (
            SlicingCriterion(line=line, var=var),
            SlicingCriterion(line=pinned[0], var=pinned[1]),
        ):
            try:
                got = slice_result_payload(
                    get_algorithm(algorithm)(analysis, criterion)
                )
            except SliceError as exc:
                got = ("error", str(exc))
            want = fresh_payload(source, criterion, algorithm)
            assert got == want, (
                f"seed {seed} step {step} criterion "
                f"({criterion.line}, {criterion.var!r}): incremental "
                "payload diverged from cold recompute"
            )
        source = mutate_one_assignment(program, rng)
    stats = cache.unit_cache.stats.snapshot()
    if len(program.procs) >= 2:
        # Multi-proc traces must actually salvage untouched units —
        # otherwise this suite would silently test the cold path twice.
        assert stats["units_reused"] > 0, stats


class TestSingleUnitTraces:
    @pytest.mark.parametrize("seed", range(6))
    def test_structured_edit_trace(self, seed):
        run_trace(
            seed,
            lambda rng: realize(generate_structured(rng, None)),
            "agrawal",
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_unstructured_edit_trace(self, seed):
        run_trace(
            seed,
            lambda rng: realize(generate_unstructured(rng, None)),
            "agrawal",
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_conventional_edit_trace(self, seed):
        run_trace(
            seed,
            lambda rng: realize(generate_structured(rng, None)),
            "conventional",
        )


class TestMultiProcTraces:
    @pytest.mark.parametrize("seed", range(6))
    def test_interprocedural_edit_trace(self, seed):
        run_trace(
            seed,
            lambda rng: generate_interprocedural(rng),
            "interprocedural",
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_recursive_edit_trace(self, seed):
        config = GeneratorConfig(allow_recursion=True)
        run_trace(
            seed,
            lambda rng: generate_interprocedural(rng, config),
            "interprocedural",
        )


class TestFormattingInvariance:
    def test_comment_edit_salvages_everything(self):
        """A same-line comment edit changes the source hash but no unit
        fingerprint: the whole analysis is salvaged and the payload is
        identical."""
        source = pretty(generate_interprocedural(random.Random(7)))
        program = parse_program(source)  # realizes line numbers
        line, var = random_criterion(random.Random(0), program)
        criterion = SlicingCriterion(line=line, var=var)
        cache = AnalysisCache(capacity=8, unit_cache=UnitCache())
        first = cache.get_or_build(source)
        got_first = slice_result_payload(
            get_algorithm("interprocedural")(first, criterion)
        )
        lines = source.splitlines()
        lines[0] += "  // reviewed"
        edited = "\n".join(lines) + "\n"
        second = cache.get_or_build(edited)
        assert second is not first  # a different program object...
        assert second.cfg is first.cfg  # ...sharing the salvaged CFG
        assert second.pdg is first.pdg
        got_second = slice_result_payload(
            get_algorithm("interprocedural")(second, criterion)
        )
        assert got_second == got_first
        stats = cache.unit_cache.stats.snapshot()
        assert stats["units_reused"] >= 1
        assert stats["units_built"] == len(list(program.units()))
        # No unit changed, so the recorded slice replays verbatim.
        assert stats["slices_salvaged"] >= 1

    def test_shells_never_share_mutable_slots(self):
        """The salvaged shell starts with empty memo/SDG/content-key
        slots — a stale slice memo or SDG can never leak across
        programs."""
        source = pretty(generate_interprocedural(random.Random(11)))
        program = parse_program(source)
        cache = AnalysisCache(capacity=8, unit_cache=UnitCache())
        first = cache.get_or_build(source)
        line, var = random_criterion(random.Random(0), program)
        get_algorithm("interprocedural")(
            first, SlicingCriterion(line=line, var=var)
        )
        first._slice_memo = object()
        lines = source.splitlines()
        lines[0] += "  // edited"
        second = cache.get_or_build("\n".join(lines) + "\n")
        assert second._slice_memo is None
        assert getattr(second, "_sdg", None) is None
        assert second._content_key != first._content_key
