"""Property: the pretty-printer and parser are mutual inverses."""

from hypothesis import given, settings

from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty, pretty_expr
from tests.property.strategies import (
    expressions,
    programs,
    structured_programs,
    unstructured_programs,
)


class TestExpressionRoundtrip:
    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_parse_of_pretty_is_identity(self, expr):
        assert parse_expression(pretty_expr(expr)) == expr


class TestProgramRoundtrip:
    @given(programs())
    @settings(max_examples=100, deadline=None)
    def test_pretty_is_canonical_fixed_point(self, program):
        text = pretty(program)
        assert pretty(parse_program(text)) == text

    @given(structured_programs())
    @settings(max_examples=50, deadline=None)
    def test_structured_generator_programs(self, program):
        text = pretty(program)
        assert pretty(parse_program(text)) == text

    @given(unstructured_programs())
    @settings(max_examples=50, deadline=None)
    def test_goto_programs(self, program):
        text = pretty(program)
        assert pretty(parse_program(text)) == text
