"""Properties of the analysis substrate on random programs:

* the two dominator algorithms agree (and match networkx);
* the two LST constructions agree;
* CFG well-formedness invariants hold;
* §4 Property 1: structured programs have no jump conflicting pairs.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lexical import (
    build_lst,
    build_lst_syntactic,
    is_structured_program,
    jump_conflicting_pairs,
)
from repro.analysis.postdominance import build_postdominator_tree
from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


class TestDominatorAgreement:
    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_iterative_equals_lengauer_tarjan(self, program):
        cfg = build_cfg(program)
        iterative = build_postdominator_tree(cfg, algorithm="iterative")
        tarjan = build_postdominator_tree(cfg, algorithm="lengauer-tarjan")
        assert iterative.as_parent_map() == tarjan.as_parent_map()

    @given(EITHER)
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_on_reverse_graph(self, program):
        cfg = build_cfg(program)
        graph = nx.DiGraph()
        graph.add_nodes_from(cfg.nodes)
        for src, dst, _ in cfg.edges():
            graph.add_edge(dst, src)  # reversed
        graph.add_edge(cfg.exit_id, cfg.entry_id)  # virtual edge, reversed
        reference = dict(nx.immediate_dominators(graph, cfg.exit_id))
        reference[cfg.exit_id] = cfg.exit_id
        tree = build_postdominator_tree(cfg)
        ours = tree.as_parent_map()
        ours[cfg.exit_id] = cfg.exit_id
        assert ours == reference


class TestLstAgreement:
    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_wired_equals_syntactic(self, program):
        cfg = build_cfg(program)
        assert (
            build_lst(cfg).as_parent_map()
            == build_lst_syntactic(program, cfg).as_parent_map()
        )

    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_lst_covers_every_statement_node(self, program):
        cfg = build_cfg(program)
        lst = build_lst(cfg)
        for node in cfg.statement_nodes():
            assert node.id in lst


class TestCfgInvariants:
    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_predicates_have_two_labelled_successors(self, program):
        cfg = build_cfg(program)
        for node in cfg.statement_nodes():
            if node.kind in (NodeKind.PREDICATE, NodeKind.CONDGOTO):
                labels = sorted(label for _, label in cfg.successors(node.id))
                assert labels == ["false", "true"]

    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_jumps_have_exactly_one_successor(self, program):
        cfg = build_cfg(program)
        for node in cfg.jump_nodes():
            assert len(cfg.succ_ids(node.id)) == 1

    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_exit_has_no_successors_entry_no_predecessors(self, program):
        cfg = build_cfg(program)
        assert cfg.succ_ids(cfg.exit_id) == []
        assert cfg.pred_ids(cfg.entry_id) == []


class TestStructuredProperties:
    @given(structured_programs())
    @settings(max_examples=60, deadline=None)
    def test_generator_output_is_structured(self, program):
        cfg = build_cfg(program)
        assert is_structured_program(cfg)

    @given(structured_programs())
    @settings(max_examples=60, deadline=None)
    def test_property_1_no_conflicting_jump_pairs(self, program):
        """§4 Property 1, the single-traversal precondition."""
        cfg = build_cfg(program)
        pdt = build_postdominator_tree(cfg)
        lst = build_lst(cfg)
        assert jump_conflicting_pairs(cfg, pdt, lst) == []

    @given(unstructured_programs())
    @settings(max_examples=60, deadline=None)
    def test_unstructured_generator_keeps_exit_reachable(self, program):
        cfg = build_cfg(program)
        build_postdominator_tree(cfg)  # strict; raises if violated
        assert cfg.unreachable_statements() == []
