"""The slice well-formedness verifier as a property-test oracle.

Two layers:

* a deterministic sweep — every registry algorithm over the corpus plus
  200+ generated programs (structured and goto-ridden), each audited
  against its condition profile (:func:`repro.lint.conditions_for`).
  Zero violations is an acceptance gate for the whole registry: the
  Agrawal/structured algorithms must pass the full audit including the
  §3 jump condition, everything else the dependence-closure conditions.
* a hypothesis property — random program × random criterion, verifier
  as the oracle for the correct-general algorithms.

The verifier re-derives all of its structures independently
(Lengauer–Tarjan postdominators, syntactic LST, fresh dataflow), so
agreement here is two implementations arriving at the same answer, not
one implementation checking itself.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import PAPER_PROGRAMS
from repro.corpus.extras import EXTRA_PROGRAMS
from repro.gen.generator import (
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.lang.errors import SliceError, UnreachableCriterionError
from repro.lint.slice_check import SliceChecker, verify_result
from repro.metrics import output_criteria
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import (
    CORRECT_STRUCTURED,
    algorithm_names,
    get_algorithm,
)
from tests.property.strategies import (
    assume_live,
    structured_programs,
    unstructured_programs,
)

#: The deterministic generated fleet: 140 structured + 80 unstructured
#: programs on pinned seeds (plus the corpus = 229 programs total).
STRUCTURED_SEEDS = range(1000, 1140)
UNSTRUCTURED_SEEDS = range(5000, 5080)


def iter_programs():
    for name in sorted(PAPER_PROGRAMS):
        yield f"corpus:{name}", PAPER_PROGRAMS[name].source
    for name in sorted(EXTRA_PROGRAMS):
        yield f"extra:{name}", EXTRA_PROGRAMS[name].source
    for seed in STRUCTURED_SEEDS:
        yield f"gen-s:{seed}", realize(
            generate_structured(random.Random(seed), None)
        )
    for seed in UNSTRUCTURED_SEEDS:
        yield f"gen-u:{seed}", realize(
            generate_unstructured(random.Random(seed), None)
        )


def audit_program(name, source):
    """Verify every algorithm on up to two output criteria; return
    (checked, refused) counts and raise on any violation."""
    analysis = analyze_program(source)
    checker = SliceChecker(analysis)
    checked = refused = 0
    for criterion in output_criteria(analysis)[:2]:
        for algorithm in algorithm_names():
            try:
                result = get_algorithm(algorithm)(analysis, criterion)
            except UnreachableCriterionError:  # pragma: no cover
                pytest.fail(
                    f"{name}: output_criteria yielded a dead criterion "
                    f"{criterion}"
                )
            except SliceError:
                # Only the structured-only pair carries preconditions
                # (unstructured jumps, dead code, exit-diverting
                # predicates — pinned individually by the unit tests).
                assert algorithm in CORRECT_STRUCTURED, (name, algorithm)
                refused += 1
                continue
            violations = verify_result(result, checker=checker)
            assert violations == [], (
                name,
                algorithm,
                criterion,
                [d.format() for d in violations],
            )
            checked += 1
    return checked, refused


class TestRegistrySweep:
    def test_all_algorithms_verify_clean_on_the_fleet(self):
        programs = list(iter_programs())
        assert len(programs) >= 200
        total_checked = total_refused = 0
        for name, source in programs:
            checked, refused = audit_program(name, source)
            total_checked += checked
            total_refused += refused
        # Every program contributes at least one verified slice, and the
        # structured-only refusals happen (the fleet has goto programs).
        assert total_checked > len(programs)
        assert total_refused > 0


class TestVerifierAsOracle:
    @given(
        st.one_of(structured_programs(), unstructured_programs()),
        st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_correct_general_algorithms_verify_clean(self, program, salt):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        checker = SliceChecker(analysis)
        criterion = SlicingCriterion(line, var)
        for algorithm in ("agrawal", "agrawal-lst", "lyle", "ball-horwitz"):
            result = get_algorithm(algorithm)(analysis, criterion)
            assert verify_result(result, checker=checker) == [], algorithm

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_structured_algorithms_verify_clean_when_accepted(
        self, program, salt
    ):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        checker = SliceChecker(analysis)
        criterion = SlicingCriterion(line, var)
        for algorithm in ("structured", "conservative"):
            try:
                result = get_algorithm(algorithm)(analysis, criterion)
            except SliceError:
                # Precondition refusal (unstructured jumps, dead code,
                # or an exit-diverting predicate — erratum E1).
                continue
            assert verify_result(result, checker=checker) == [], algorithm
