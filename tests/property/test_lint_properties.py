"""Properties of the lint engine over generated programs.

The ``repro.gen`` generators advertise structural guarantees — valid,
terminating, dead-code-minimised output — and the lint engine is an
independent reimplementation of exactly those checks, so each generator
guarantee becomes a "lint-clean modulo allowed codes" property:

* any generated program parses and validates (no SL0xx ever);
* the generators only emit labels for gotos they placed (no SL104);
* structured output contains no unstructured jump (no SL105) and
  unstructured output is where SL105 *may* legitimately appear;
* every generated program can reach EXIT (no SL107 — postdominators
  must exist, or no slicer could run).

Value-level findings (SL101/SL102/SL103/SL106/SL108) are allowed: the
generators pick operands randomly, so a constant predicate, a dead
store, or a never-read temporary is expected noise, not a bug.
"""

from hypothesis import given, settings

from repro.lint.rules import run_lint
from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

#: Codes the generators may legitimately produce (value-level noise).
ALLOWED_VALUE_CODES = {"SL101", "SL102", "SL103", "SL106", "SL108"}

#: Codes that would indicate a generator (or lint) bug on any output.
FORBIDDEN_ALWAYS = {
    "SL001", "SL002", "SL003", "SL004", "SL005", "SL006",  # front end
    "SL104",  # unused label
    "SL107",  # EXIT unreachable — generators guarantee termination paths
}


class TestGeneratedProgramsLintClean:
    @given(structured_programs())
    @settings(max_examples=120, deadline=None)
    def test_structured_output(self, program):
        report = run_lint(program)
        codes = {d.code for d in report.diagnostics}
        assert not codes & FORBIDDEN_ALWAYS, report.format_text()
        # Structured programs must contain no unstructured jump.
        assert codes <= ALLOWED_VALUE_CODES, report.format_text()
        assert not report.has_errors

    @given(unstructured_programs())
    @settings(max_examples=120, deadline=None)
    def test_unstructured_output(self, program):
        report = run_lint(program)
        codes = {d.code for d in report.diagnostics}
        assert not codes & FORBIDDEN_ALWAYS, report.format_text()
        # SL105 is informational and expected here; nothing else new.
        assert codes <= ALLOWED_VALUE_CODES | {"SL105"}, report.format_text()
        assert not report.has_errors

    @given(unstructured_programs())
    @settings(max_examples=60, deadline=None)
    def test_select_ignore_partition(self, program):
        # select=X and ignore=X partition the full report exactly.
        full = run_lint(program).diagnostics
        kept = run_lint(program, select=["SL105"]).diagnostics
        dropped = run_lint(program, ignore=["SL105"]).diagnostics
        assert len(kept) + len(dropped) == len(full)
        assert all(d.code == "SL105" for d in kept)
        assert all(d.code != "SL105" for d in dropped)
