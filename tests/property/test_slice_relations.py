"""Cross-algorithm ordering properties.

The lattice the paper's comparisons imply, checked on random programs:

    conventional ⊆ agrawal ⊆ lyle          (general programs*)
    structured ⊆ conservative              (structured programs)
    conventional ⊆ structured              (structured programs)

(*) Lyle's containment is asserted on structured programs only — the
literal reconstruction has degenerate unstructured cases (finding E3).
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gen.generator import random_criterion
from repro.lang.errors import SliceError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conservative import conservative_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.lyle import lyle_slice
from repro.slicing.structured import structured_slice
from tests.property.strategies import (
    assume_live,
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


def stmts(result):
    return set(result.statement_nodes())


class TestOrdering:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_conventional_within_agrawal(self, program, salt):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        criterion = SlicingCriterion(line, var)
        assert stmts(conventional_slice(analysis, criterion)) <= stmts(
            agrawal_slice(analysis, criterion)
        )

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_conventional_within_lyle(self, program, salt):
        # The strongest containment the literal Lyle reconstruction
        # supports in general.  It does NOT always contain Agrawal's
        # slice: a `return` that *prevents* control from reaching the
        # criterion never lies "between S and loc", so the §5
        # behavioural description under-determines a sound algorithm
        # (finding E3 in EXPERIMENTS.md); the paper's own hedge is
        # "except in certain degenerate cases".
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        criterion = SlicingCriterion(line, var)
        assert stmts(conventional_slice(analysis, criterion)) <= stmts(
            lyle_slice(analysis, criterion)
        )

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_conventional_within_structured_within_conservative(
        self, program, salt
    ):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        criterion = SlicingCriterion(line, var)
        try:
            simplified = structured_slice(analysis, criterion)
            conservative = conservative_slice(analysis, criterion)
        except SliceError:
            assume(False)
        conventional = conventional_slice(analysis, criterion)
        assert stmts(conventional) <= stmts(simplified)
        assert stmts(simplified) <= stmts(conservative)

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_agrawal_only_ever_adds_jumps_and_their_closure(
        self, program, salt
    ):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        criterion = SlicingCriterion(line, var)
        base = stmts(conventional_slice(analysis, criterion))
        full = agrawal_slice(analysis, criterion)
        extras = stmts(full) - base
        jumps = {n for n in extras if analysis.cfg.nodes[n].is_jump}
        closure = set()
        for jump in jumps:
            closure |= analysis.pdg.backward_closure([jump])
        assert extras <= jumps | closure

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_criterion_node_always_in_slice(self, program, salt):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        result = agrawal_slice(analysis, SlicingCriterion(line, var))
        assert result.resolved.node_id in result.nodes
