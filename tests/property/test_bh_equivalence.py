"""Property C1: Agrawal's Fig. 7 algorithm is equivalent to Ball–Horwitz.

The paper claims exact statement-set equality.  Property-based testing
refined that claim (erratum E2, EXPERIMENTS.md): because the paper leaves
the *sibling order* of the pre-order traversal unspecified, the raw
algorithm can retain jumps that are redundant at the fixed point.  The
relationship that actually holds — and is asserted here on hundreds of
random programs — is:

* ``ball_horwitz ⊆ agrawal`` (never misses);
* every extra node is a transiently-added unconditional jump or part of
  one's dependence closure, and the extra jumps are removable *as a
  group* by iterated application of the paper's own §3 omission
  criterion (one at a time, re-evaluating after each removal — one extra
  break can be another's nearest lexical successor);
* with ``prune_redundant=True`` (which performs exactly that iteration)
  the two are exactly equal.

Programs with unreachable code are excluded: there the two algorithms
legitimately disagree (the augmented graph makes dead code reachable),
though both remain sound.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gen.generator import random_criterion
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.criterion import SlicingCriterion
from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


def pick_criterion(program, salt):
    line, var = random_criterion(random.Random(salt), program)
    return SlicingCriterion(line, var)


def assert_bh_relation(analysis, agrawal_result, bh_result):
    """Ball–Horwitz ⊆ Agrawal, and the surplus is only transiently-added
    jumps plus their dependence closures.

    The surplus jumps are redundant *as a group* — removable one at a
    time by the paper's §3 criterion, re-evaluating after each removal
    (one extra break can be another's nearest lexical successor, so the
    fixed-point test may not certify them individually).  That group
    redundancy is asserted exactly by the companion property
    ``test_pruned_is_exactly_ball_horwitz``.
    """
    ours = set(agrawal_result.statement_nodes())
    theirs = set(bh_result.statement_nodes())
    assert theirs <= ours, f"Ball–Horwitz found more: {sorted(theirs - ours)}"
    cfg = analysis.cfg
    extras = ours - theirs
    extra_jumps = {extra for extra in extras if cfg.nodes[extra].is_jump}
    closure = set()
    for jump in extra_jumps:
        closure |= analysis.pdg.backward_closure([jump])
    assert extras <= extra_jumps | closure, (
        f"difference beyond transient jumps+closures: "
        f"{sorted(extras - extra_jumps - closure)}"
    )


class TestEquivalence:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_subset_plus_redundant_jumps(self, program, salt):
        analysis = analyze_program(program)
        assume(not analysis.cfg.unreachable_statements())
        criterion = pick_criterion(program, salt)
        ours = agrawal_slice(analysis, criterion)
        theirs = ball_horwitz_slice(analysis, criterion)
        assert_bh_relation(analysis, ours, theirs)

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_pruned_is_exactly_ball_horwitz(self, program, salt):
        analysis = analyze_program(program)
        assume(not analysis.cfg.unreachable_statements())
        criterion = pick_criterion(program, salt)
        pruned = agrawal_slice(analysis, criterion, prune_redundant=True)
        theirs = ball_horwitz_slice(analysis, criterion)
        assert pruned.same_statements_as(theirs)

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_lst_driven_variant_same_relation(self, program, salt):
        analysis = analyze_program(program)
        assume(not analysis.cfg.unreachable_statements())
        criterion = pick_criterion(program, salt)
        ours = agrawal_slice(analysis, criterion, drive_tree="lexical")
        theirs = ball_horwitz_slice(analysis, criterion)
        assert_bh_relation(analysis, ours, theirs)

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_drive_trees_agree_after_pruning(self, program, salt):
        """§3 claims the drive-tree choice never changes the final slice;
        erratum E2 shows that is only true modulo redundant jumps — i.e.
        after pruning."""
        analysis = analyze_program(program)
        assume(not analysis.cfg.unreachable_statements())
        criterion = pick_criterion(program, salt)
        by_pdt = agrawal_slice(
            analysis, criterion, prune_redundant=True
        )
        by_lst = agrawal_slice(
            analysis, criterion, drive_tree="lexical", prune_redundant=True
        )
        assert by_pdt.same_statements_as(by_lst)
