"""Property: slicing is idempotent modulo extraction artifacts.

Slicing the *extracted* slice again, w.r.t. the same criterion, returns
every statement of the extracted program except

1. the SKIP statements the extractor synthesises (dangling-label
   carriers ``L: ;`` and ``;`` placeholders for emptied branches) —
   they carry no dependences and are legitimately droppable; and
2. jumps that are *redundant in the extracted program*, together with
   the statements the first slice retained only to feed those jumps.

Exclusion 2 is the seed-98 refinement (ROADMAP, resolved).  Extraction
changes the program's geometry: statements between a jump and its
target disappear, and switch arms get hoisted, so the extracted
program's postdominator and lexical-successor trees differ from the
original's.  A jump that Fig. 7 correctly kept on the *original* trees
(its nearest postdominator in the slice differed from its nearest
lexical successor in the slice, so omitting it would have diverted
control flow) can be redundant on the *extracted* trees — npd == nls —
and a re-slice rightly omits it.  Pruning redundant jumps inside the
first slice does **not** close the gap (seed 98: the ``break`` at
issue has npd 22 ≠ nls 4 on the original trees, so the §3 omission
criterion correctly keeps it there; its redundancy exists only in the
extracted geometry).  The honest property is therefore: every non-SKIP
statement the re-slice drops must be certified redundant by the
re-slice's own omission criterion — it is a jump with npd == nls
w.r.t. the resliced set on the second analysis's trees, or it lies in
such a jump's backward dependence closure (retained by the first slice
only because the jump needed it).

The property holds for every criterion the engine accepts: statically
unreachable criteria — for which the fixed point genuinely fails, see
``test_dead_criterion_rejected`` — are rejected up front by
``resolve_criterion`` with :class:`UnreachableCriterionError`, so the
property no longer needs to exclude them.
"""

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cfg.graph import NodeKind
from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import generate_structured, random_criterion, realize
from repro.lang.errors import SlangError, UnreachableCriterionError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.common import nearest_in_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_slice
from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


def reslice_gap(program, line, var):
    """Slice, extract, re-slice; return ``(missing, allowed)`` node-id
    sets over the *second* analysis.

    ``missing`` is every non-SKIP statement of the extracted program
    that the re-slice dropped.  ``allowed`` is what the fixed-point
    property tolerates: jumps the re-slice's own §3 omission criterion
    certifies redundant (npd == nls w.r.t. the resliced set, EXIT
    counting as in-slice) plus their backward dependence closures —
    statements the first slice retained only on those jumps' behalf.
    """
    analysis = analyze_program(program)
    result = agrawal_slice(analysis, SlicingCriterion(line, var))
    extracted = extract_slice(result)
    criterion_stmt = extracted.find(
        analysis.cfg.nodes[result.resolved.node_id].stmt
    )
    assert criterion_stmt is not None
    second = analyze_program(extracted.program)
    node = second.cfg.node_of(criterion_stmt)
    resliced = agrawal_slice(
        second, SlicingCriterion(second.cfg.nodes[node].line, var)
    )
    non_skips = {
        n.id
        for n in second.cfg.statement_nodes()
        if n.kind is not NodeKind.SKIP
    }
    missing = non_skips - set(resliced.statement_nodes())
    if not missing:
        return missing, set()
    slice_set = set(resliced.nodes)
    exit_id = second.cfg.exit_id
    redundant = {
        jump.id
        for jump in second.cfg.jump_nodes()
        if jump.id not in slice_set
        and nearest_in_slice(second.pdt, jump.id, slice_set, exit_id)
        == nearest_in_slice(second.lst, jump.id, slice_set, exit_id)
    }
    allowed = set(redundant)
    for jump in redundant:
        allowed |= second.pdg.backward_closure([jump])
    return missing, allowed


def reslice_covers_non_skips(program, line, var):
    missing, allowed = reslice_gap(program, line, var)
    return missing <= allowed


class TestIdempotence:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_reslice_is_fixed_point_modulo_skips(self, program, salt):
        line, var = random_criterion(random.Random(salt), program)
        analysis = analyze_program(program)
        dead_lines = {n.line for n in analysis.cfg.unreachable_statements()}
        try:
            covered = reslice_covers_non_skips(program, line, var)
        except UnreachableCriterionError:
            # Dead criteria are rejected, never mis-sliced — and only
            # dead criteria are rejected this way.
            assert line in dead_lines
            return
        except SlangError:
            assume(False)
        assert line not in dead_lines
        assert covered

    def test_seed98_redundant_break_regression(self):
        """The recorded redundant-jump counterexample (ROADMAP,
        resolved) stays within the restated property.

        Seed 98 with the ``random_criterion(random.Random(0), …)``
        criterion produces a slice whose ``do { break; }`` jump is kept
        correctly on the original trees (npd ≠ nls there) but becomes
        redundant in the extracted program, where dropped statements
        and switch hoisting collapse the gap between its nearest
        postdominator and nearest lexical successor.  The re-slice
        omits the jump — and whatever the first slice kept only to
        feed it — which is exactly the gap ``reslice_gap`` certifies.
        This pins both halves: the gap is non-empty (the
        counterexample still reproduces, so the modulo clause is not
        vacuous) and every missing node is accounted for by a
        certified-redundant jump's closure.
        """
        program = realize(generate_structured(random.Random(98), None))
        line, var = random_criterion(random.Random(0), program)
        assert (line, var) == (63, "v3")
        missing, allowed = reslice_gap(program, line, var)
        assert missing, "counterexample no longer reproduces"
        assert missing <= allowed, sorted(missing - allowed)

    def test_dead_criterion_rejected(self):
        """The recorded dead-criterion counterexample is now rejected.

        Slicing w.r.t. a statically unreachable ``write(v3)`` used to
        break the fixed point (the first slice kept a constant
        ``switch`` and its ``break`` statements that a re-slice of the
        extracted program dropped; formerly pinned here as an open
        ROADMAP refinement).  ``resolve_criterion`` now refuses such
        criteria with a structured :class:`UnreachableCriterionError`
        (protocol error code ``unreachable-criterion``), which closes
        the refinement: the idempotence property holds unconditionally
        for accepted criteria.
        """
        program = realize(
            generate_structured(random.Random(94978), None)
        )
        analysis = analyze_program(program)
        dead_writes = [
            node
            for node in analysis.cfg.unreachable_statements()
            if node.kind is NodeKind.WRITE
        ]
        assert dead_writes  # the recorded seed still has dead outputs
        node = dead_writes[0]
        (var,) = node.uses
        with pytest.raises(UnreachableCriterionError):
            agrawal_slice(analysis, SlicingCriterion(node.line, var))

    def test_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            line, var = entry.criterion
            assert reslice_covers_non_skips(
                analyze_program(entry.source).program, line, var
            ), entry.name
