"""Property: slicing is idempotent modulo extraction artifacts.

Slicing the *extracted* slice again, w.r.t. the same criterion, returns
every statement of the extracted program except the SKIP statements the
extractor synthesises (dangling-label carriers ``L: ;`` and ``;``
placeholders for emptied branches).  In other words: the slice is a
fixed point — the algorithm never discovers that some retained statement
was unnecessary once the program has been cut down.

(The inserted SKIPs are legitimately droppable by a re-slice: they carry
no dependences; their labels get re-associated once more.)

The property holds for every criterion the engine accepts: statically
unreachable criteria — for which the fixed point genuinely fails, see
``test_dead_criterion_rejected`` — are rejected up front by
``resolve_criterion`` with :class:`UnreachableCriterionError`, so the
property no longer needs to exclude them.
"""

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cfg.graph import NodeKind
from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import generate_structured, random_criterion, realize
from repro.lang.errors import SlangError, UnreachableCriterionError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_slice
from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


def reslice_covers_non_skips(program, line, var):
    analysis = analyze_program(program)
    result = agrawal_slice(analysis, SlicingCriterion(line, var))
    extracted = extract_slice(result)
    criterion_stmt = extracted.find(
        analysis.cfg.nodes[result.resolved.node_id].stmt
    )
    assert criterion_stmt is not None
    second = analyze_program(extracted.program)
    node = second.cfg.node_of(criterion_stmt)
    resliced = agrawal_slice(
        second, SlicingCriterion(second.cfg.nodes[node].line, var)
    )
    non_skips = {
        n.id
        for n in second.cfg.statement_nodes()
        if n.kind is not NodeKind.SKIP
    }
    return non_skips <= set(resliced.statement_nodes())


class TestIdempotence:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_reslice_is_fixed_point_modulo_skips(self, program, salt):
        line, var = random_criterion(random.Random(salt), program)
        analysis = analyze_program(program)
        dead_lines = {n.line for n in analysis.cfg.unreachable_statements()}
        try:
            covered = reslice_covers_non_skips(program, line, var)
        except UnreachableCriterionError:
            # Dead criteria are rejected, never mis-sliced — and only
            # dead criteria are rejected this way.
            assert line in dead_lines
            return
        except SlangError:
            assume(False)
        assert line not in dead_lines
        assert covered

    def test_dead_criterion_rejected(self):
        """The recorded dead-criterion counterexample is now rejected.

        Slicing w.r.t. a statically unreachable ``write(v3)`` used to
        break the fixed point (the first slice kept a constant
        ``switch`` and its ``break`` statements that a re-slice of the
        extracted program dropped; formerly pinned here as an open
        ROADMAP refinement).  ``resolve_criterion`` now refuses such
        criteria with a structured :class:`UnreachableCriterionError`
        (protocol error code ``unreachable-criterion``), which closes
        the refinement: the idempotence property holds unconditionally
        for accepted criteria.
        """
        program = realize(
            generate_structured(random.Random(94978), None)
        )
        analysis = analyze_program(program)
        dead_writes = [
            node
            for node in analysis.cfg.unreachable_statements()
            if node.kind is NodeKind.WRITE
        ]
        assert dead_writes  # the recorded seed still has dead outputs
        node = dead_writes[0]
        (var,) = node.uses
        with pytest.raises(UnreachableCriterionError):
            agrawal_slice(analysis, SlicingCriterion(node.line, var))

    def test_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            line, var = entry.criterion
            assert reslice_covers_non_skips(
                analyze_program(entry.source).program, line, var
            ), entry.name
