"""Property: slicing is idempotent modulo extraction artifacts.

Slicing the *extracted* slice again, w.r.t. the same criterion, returns
every statement of the extracted program except the SKIP statements the
extractor synthesises (dangling-label carriers ``L: ;`` and ``;``
placeholders for emptied branches).  In other words: the slice is a
fixed point — the algorithm never discovers that some retained statement
was unnecessary once the program has been cut down.

(The inserted SKIPs are legitimately droppable by a re-slice: they carry
no dependences; their labels get re-associated once more.)
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cfg.graph import NodeKind
from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import generate_structured, random_criterion, realize
from repro.lang.errors import SlangError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_slice
from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


def reslice_covers_non_skips(program, line, var):
    analysis = analyze_program(program)
    result = agrawal_slice(analysis, SlicingCriterion(line, var))
    extracted = extract_slice(result)
    criterion_stmt = extracted.find(
        analysis.cfg.nodes[result.resolved.node_id].stmt
    )
    assert criterion_stmt is not None
    second = analyze_program(extracted.program)
    node = second.cfg.node_of(criterion_stmt)
    resliced = agrawal_slice(
        second, SlicingCriterion(second.cfg.nodes[node].line, var)
    )
    non_skips = {
        n.id
        for n in second.cfg.statement_nodes()
        if n.kind is not NodeKind.SKIP
    }
    return non_skips <= set(resliced.statement_nodes())


class TestIdempotence:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_reslice_is_fixed_point_modulo_skips(self, program, salt):
        line, var = random_criterion(random.Random(salt), program)
        # The fixed point only holds for *live* criterion statements.
        # When the criterion is dead code (e.g. every arm of a preceding
        # switch returns), it has no reaching definitions, and Fig. 7's
        # jump test keeps jumps the re-slice of the cut-down program can
        # drop — see test_dead_criterion_counterexample below
        # (generate_structured(random.Random(94978)), <v3, line 27>).
        analysis = analyze_program(program)
        dead_lines = {n.line for n in analysis.cfg.unreachable_statements()}
        assume(line not in dead_lines)
        try:
            assert reslice_covers_non_skips(program, line, var)
        except SlangError:
            assume(False)

    def test_dead_criterion_counterexample(self):
        """The recorded counterexample for the dead-criterion case.

        Slicing w.r.t. a statically unreachable ``write(v3)``: the first
        slice keeps a constant ``switch`` and its ``break`` statements
        (their nearest-postdominator/lexical-successor verdicts differ
        because an included ``return`` splits the trees), but re-slicing
        the extracted program finds them droppable.  Documented as an
        open refinement (ROADMAP); the property above therefore assumes
        a live criterion.
        """
        program = realize(
            generate_structured(random.Random(94978), None)
        )
        line, var = random_criterion(random.Random(0), program)
        analysis = analyze_program(program)
        dead = {n.line for n in analysis.cfg.unreachable_statements()}
        assert line in dead  # the criterion really is dead code
        assert not reslice_covers_non_skips(program, line, var)

    def test_corpus(self):
        for entry in PAPER_PROGRAMS.values():
            line, var = entry.criterion
            assert reslice_covers_non_skips(
                analyze_program(entry.source).program, line, var
            ), entry.name
