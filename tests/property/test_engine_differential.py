"""Differential identity between the fast paths and the references.

The bitset dataflow kernels (:mod:`repro.analysis.bitset`) and the
condensed-PDG closure index (:mod:`repro.pdg.closure`) are *query
infrastructure*, not different algorithms: every decoded answer must be
byte-identical to what the set-based solver and the BFS closure produce.
This suite is the acceptance gate for that claim, in two layers:

* a deterministic sweep — corpus plus pinned-seed generated programs
  (structured and goto-ridden), every registry algorithm over every
  ``(line, var)`` criterion the program admits, reference configuration
  (``engine="sets"``, index off) against the fast configuration
  (``engine="bitset"``, index on).  Slice node sets must match exactly;
  refusals must raise the same error class.  The degraded Fig. 13
  (``conservative_slice(..., force=True)``) and the lint diagnostics
  stream (SL103/SL107 run on different kernels per engine) are held to
  the same standard.
* a hypothesis property — random program x random criterion, same
  identity, so the pinned fleet can't hide a seed-shaped blind spot.

Fresh analyses are built per configuration: lazily-computed dataflow and
closure state memoizes on the analysis object, so sharing one analysis
across engines would silently compare a cache against itself.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import dataflow_engine
from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching_defs import compute_reaching_definitions
from repro.corpus import PAPER_PROGRAMS
from repro.gen.generator import (
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.lang.errors import SliceError
from repro.lint.rules import run_lint
from repro.pdg.builder import analyze_program
from repro.pdg.closure import closure_index
from repro.service.engine import enumerate_criteria
from repro.slicing.conservative import conservative_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import algorithm_names, get_algorithm

from tests.property.strategies import (
    structured_programs,
    unstructured_programs,
)

#: Pinned-seed generated fleet for the deterministic sweep (the corpus
#: alone has no large SCCs or deep goto webs).
STRUCTURED_SEEDS = range(2000, 2006)
UNSTRUCTURED_SEEDS = range(6000, 6006)

ALGORITHMS = algorithm_names()


def iter_programs():
    for name in sorted(PAPER_PROGRAMS):
        yield f"corpus:{name}", PAPER_PROGRAMS[name].source
    for seed in STRUCTURED_SEEDS:
        yield f"structured:{seed}", realize(
            generate_structured(random.Random(seed))
        )
    for seed in UNSTRUCTURED_SEEDS:
        yield f"unstructured:{seed}", realize(
            generate_unstructured(random.Random(seed))
        )


PROGRAMS = [
    pytest.param(program, id=name) for name, program in iter_programs()
]


def slice_outcome(analysis, algorithm, criterion):
    """(tag, payload) for one slice attempt: node set or error class."""
    try:
        result = get_algorithm(algorithm)(analysis, criterion)
    except SliceError as error:
        return ("error", type(error).__name__)
    return ("nodes", frozenset(result.nodes))


def degraded_outcome(analysis, criterion):
    """Fig. 13 with ``force=True`` — the engine's degradation target."""
    try:
        result = conservative_slice(analysis, criterion, force=True)
    except SliceError as error:
        return ("error", type(error).__name__)
    return ("nodes", frozenset(result.nodes))


def sweep_program(program):
    """All-algorithm, all-criterion outcomes under both configurations."""
    with dataflow_engine("sets"), closure_index(False):
        reference_analysis = analyze_program(program)
        criteria = enumerate_criteria(reference_analysis, mode="all")
        reference = {
            (algorithm, criterion.line, criterion.var): slice_outcome(
                reference_analysis, algorithm, criterion
            )
            for criterion in criteria
            for algorithm in ALGORITHMS
        }
        reference_degraded = {
            (criterion.line, criterion.var): degraded_outcome(
                reference_analysis, criterion
            )
            for criterion in criteria
        }
    with dataflow_engine("bitset"), closure_index(True):
        fast_analysis = analyze_program(program)
        fast_analysis.pdg.ensure_closure_index()
        fast = {
            (algorithm, criterion.line, criterion.var): slice_outcome(
                fast_analysis, algorithm, criterion
            )
            for criterion in criteria
            for algorithm in ALGORITHMS
        }
        fast_degraded = {
            (criterion.line, criterion.var): degraded_outcome(
                fast_analysis, criterion
            )
            for criterion in criteria
        }
    return reference, fast, reference_degraded, fast_degraded


class TestDeterministicSweep:
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_all_algorithms_identical(self, program):
        reference, fast, ref_degraded, fast_degraded = sweep_program(
            program
        )
        assert reference, "program admitted no criteria"
        mismatches = {
            key: (reference[key], fast[key])
            for key in reference
            if reference[key] != fast[key]
        }
        assert not mismatches
        assert ref_degraded == fast_degraded

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_dataflow_kernels_identical(self, program):
        """Reaching defs and liveness decode to identical in/out sets."""
        analysis = analyze_program(program)
        cfg = analysis.cfg
        rd_sets = compute_reaching_definitions(cfg, engine="sets")
        rd_bits = compute_reaching_definitions(cfg, engine="bitset")
        assert rd_sets.in_ == rd_bits.in_
        assert rd_sets.out == rd_bits.out
        lv_sets = compute_liveness(cfg, engine="sets")
        lv_bits = compute_liveness(cfg, engine="bitset")
        assert lv_sets.in_ == lv_bits.in_
        assert lv_sets.out == lv_bits.out

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_lint_diagnostics_identical(self, program):
        """SL103/SL107 run on different kernels per engine; the emitted
        diagnostics stream must not notice."""
        with dataflow_engine("sets"):
            reference = run_lint(program)
        with dataflow_engine("bitset"):
            fast = run_lint(program)
        as_tuples = lambda report: [
            (d.code, d.line, d.message) for d in report.diagnostics
        ]
        assert as_tuples(reference) == as_tuples(fast)


class TestHypothesisDifferential:
    """Random-program layer: one criterion per example, all algorithms."""

    def _check(self, program, salt):
        line, var = random_criterion(random.Random(salt), program)
        criterion = SlicingCriterion(line=line, var=var)
        with dataflow_engine("sets"), closure_index(False):
            reference_analysis = analyze_program(program)
            reference = {
                algorithm: slice_outcome(
                    reference_analysis, algorithm, criterion
                )
                for algorithm in ALGORITHMS
            }
            reference["degraded-fig13"] = degraded_outcome(
                reference_analysis, criterion
            )
        with dataflow_engine("bitset"), closure_index(True):
            fast_analysis = analyze_program(program)
            fast = {
                algorithm: slice_outcome(
                    fast_analysis, algorithm, criterion
                )
                for algorithm in ALGORITHMS
            }
            fast["degraded-fig13"] = degraded_outcome(
                fast_analysis, criterion
            )
        assert reference == fast

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_structured(self, program, salt):
        self._check(program, salt)

    @given(unstructured_programs(), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_unstructured(self, program, salt):
        self._check(program, salt)
