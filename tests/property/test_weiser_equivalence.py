"""Property C5: Weiser's dataflow-equation slicer computes the same
statement set as the conventional PDG slicer.

The paper notes Weiser's algorithm finds the right predicates even with
jumps present but never includes the jumps themselves — just like
conventional PDG slicing.  The two formulations are checked for exact
statement-set agreement on random programs (criteria at writes, where
the criterion variable is the statement's only use — both algorithms'
natural seeding).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen.generator import random_criterion
from repro.pdg.builder import analyze_program
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.weiser import weiser_slice
from tests.property.strategies import (
    assume_live,
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


class TestWeiserEquivalence:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=150, deadline=None)
    def test_statement_sets_equal(self, program, salt):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        criterion = SlicingCriterion(line, var)
        pdg_based = conventional_slice(analysis, criterion)
        equation_based = weiser_slice(analysis, criterion)
        assert pdg_based.same_statements_as(equation_based)

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_weiser_never_includes_unconditional_jumps(self, program, salt):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        result = weiser_slice(analysis, SlicingCriterion(line, var))
        assert result.jump_nodes() == []

    def test_corpus_agreement(self):
        from repro.corpus import PAPER_PROGRAMS

        for entry in PAPER_PROGRAMS.values():
            analysis = analyze_program(entry.source)
            criterion = SlicingCriterion(*entry.criterion)
            assert conventional_slice(analysis, criterion).same_statements_as(
                weiser_slice(analysis, criterion)
            ), entry.name
