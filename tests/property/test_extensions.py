"""Properties of the extensions (forward slicing, dynamic slicing, the
AST interpreter) on random programs."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dynamic.slicer import dynamic_slice
from repro.gen.generator import random_criterion
from repro.interp.ast_interpreter import run_ast
from repro.interp.interpreter import run_program
from repro.lang.errors import InterpreterError, SliceError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.forward import forward_slice
from tests.property.strategies import (
    assume_live,
    input_streams,
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


class TestInterpreterDifferential:
    @given(structured_programs(), input_streams())
    @settings(max_examples=100, deadline=None)
    def test_cfg_and_ast_interpreters_agree(self, program, inputs):
        """Two independent SL implementations, same observable
        behaviour — on every structured (goto-free) random program."""
        try:
            cfg_result = run_program(program, inputs, step_limit=100_000)
        except InterpreterError:
            assume(False)
        ast_result = run_ast(program, inputs, step_limit=400_000)
        assert cfg_result.outputs == ast_result.outputs
        assert cfg_result.returned == ast_result.returned
        assert cfg_result.env == ast_result.env


class TestForwardSlice:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_forward_backward_duality(self, program, salt):
        """If B's backward slice contains A's criterion node, then A's
        forward slice contains B's criterion node (same PDG variant)."""
        analysis = analyze_program(program)
        rng = random.Random(salt)
        line_a, var_a = random_criterion(rng, program)
        line_b, var_b = random_criterion(rng, program)
        assume_live(analysis, line_a)
        assume_live(analysis, line_b)
        backward = conventional_slice(
            analysis, SlicingCriterion(line_b, var_b)
        )
        forward = forward_slice(
            analysis, SlicingCriterion(line_a, var_a), use_augmented=False
        )
        a_node = forward.resolved.node_id
        b_node = backward.resolved.node_id
        # Only the seed-node direction is exact; guard accordingly.
        if backward.resolved.seeds == frozenset({b_node}) and (
            forward.resolved.seeds == frozenset({a_node})
        ):
            if a_node in backward.nodes:
                assert b_node in forward.nodes

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_forward_contains_criterion(self, program, salt):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        result = forward_slice(analysis, SlicingCriterion(line, var))
        assert result.resolved.node_id in result.nodes


class TestDynamicSlice:
    @given(EITHER, st.integers(0, 2**16), input_streams())
    @settings(max_examples=80, deadline=None)
    def test_dynamic_subset_of_static(self, program, salt, inputs):
        """The dynamic slice of any execution is contained in the static
        conventional slice (hence in every jump-aware static slice)."""
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        criterion = SlicingCriterion(line, var)
        try:
            dynamic = dynamic_slice(
                analysis, criterion, inputs=inputs, step_limit=50_000
            )
        except (SliceError, InterpreterError):
            assume(False)
        static = conventional_slice(analysis, criterion)
        assert set(dynamic.statement_nodes()) <= set(
            static.statement_nodes()
        )

    @given(EITHER, st.integers(0, 2**16), input_streams())
    @settings(max_examples=60, deadline=None)
    def test_dynamic_slice_statements_all_executed(
        self, program, salt, inputs
    ):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        try:
            dynamic = dynamic_slice(
                analysis,
                SlicingCriterion(line, var),
                inputs=inputs,
                step_limit=50_000,
            )
        except (SliceError, InterpreterError):
            assume(False)
        executed = {event.node_id for event in dynamic.trace.events}
        assert set(dynamic.statement_nodes()) <= executed

    @given(EITHER, st.integers(0, 2**16), input_streams())
    @settings(max_examples=40, deadline=None)
    def test_dynamic_subset_of_agrawal(self, program, salt, inputs):
        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        criterion = SlicingCriterion(line, var)
        try:
            dynamic = dynamic_slice(
                analysis, criterion, inputs=inputs, step_limit=50_000
            )
        except (SliceError, InterpreterError):
            assume(False)
        static = agrawal_slice(analysis, criterion)
        assert set(dynamic.statement_nodes()) <= set(
            static.statement_nodes()
        )
