"""Property: dead-code elimination preserves observable behaviour.

For random programs and inputs, the cleaned program must produce the
same output stream and return value as the original — over structured
programs and flat goto programs alike."""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps.deadcode import eliminate_dead_code
from repro.interp.interpreter import run_program
from repro.lang.errors import InterpreterError, SlangError
from tests.property.strategies import (
    input_streams,
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


class TestDeadCodeElimination:
    @given(EITHER, input_streams())
    @settings(max_examples=80, deadline=None)
    def test_outputs_preserved(self, program, inputs):
        try:
            before = run_program(program, inputs, step_limit=50_000)
        except InterpreterError:
            assume(False)
        try:
            report = eliminate_dead_code(program)
        except SlangError:
            assume(False)
        after = run_program(report.program, inputs, step_limit=50_000)
        assert before.outputs == after.outputs
        assert before.returned == after.returned

    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_fixed_point(self, program):
        """Running elimination twice removes nothing more."""
        try:
            first = eliminate_dead_code(program)
        except SlangError:
            assume(False)
        second = eliminate_dead_code(first.program)
        assert second.removed_count == 0

    @given(EITHER)
    @settings(max_examples=60, deadline=None)
    def test_monotone_shrinking(self, program):
        from repro.cfg.builder import build_cfg

        try:
            report = eliminate_dead_code(program)
        except SlangError:
            assume(False)
        before_count = len(build_cfg(program).statement_nodes())
        after_count = len(build_cfg(report.program).statement_nodes())
        # Extraction may drop emptied compounds beyond the counted
        # removals, but never grows the program.
        assert after_count <= before_count
