"""Property C6: extracted slices preserve the criterion trajectory.

The strongest oracle in the suite: for random programs (structured and
goto-ridden alike), random criteria, and random inputs, the extracted
slice must produce *exactly* the sequence of criterion-variable values
the original produces at the criterion location (paper §1's definition
of a slice).
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gen.generator import random_criterion
from repro.interp.oracle import check_slice_correctness
from repro.lang.errors import InterpreterError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.lyle import lyle_slice
from tests.property.strategies import (
    assume_live,
    structured_programs,
    unstructured_programs,
)

EITHER = st.one_of(structured_programs(), unstructured_programs())


def run_oracle(slicer, program, salt, **slicer_kwargs):
    analysis = analyze_program(program)
    line, var = random_criterion(random.Random(salt), program)
    assume_live(analysis, line)
    result = slicer(analysis, SlicingCriterion(line, var), **slicer_kwargs)
    rng = random.Random(salt ^ 0xABCDEF)
    inputs = [
        [rng.randint(-9, 9) for _ in range(rng.randint(0, 10))]
        for _ in range(4)
    ]
    try:
        return check_slice_correctness(result, inputs, step_limit=50_000)
    except InterpreterError:
        assume(False)  # the original timed out; not a slicing failure


class TestAgrawalCorrectness:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_general_algorithm(self, program, salt):
        assert run_oracle(agrawal_slice, program, salt) == 4

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_pruned_variant(self, program, salt):
        assert (
            run_oracle(agrawal_slice, program, salt, prune_redundant=True)
            == 4
        )

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_lst_driven_variant(self, program, salt):
        assert (
            run_oracle(agrawal_slice, program, salt, drive_tree="lexical")
            == 4
        )


class TestBaselineCorrectness:
    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_ball_horwitz(self, program, salt):
        analysis = analyze_program(program)
        assume(not analysis.cfg.unreachable_statements())
        assert run_oracle(ball_horwitz_slice, program, salt) == 4

    @given(EITHER, st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_lyle_contains_conventional_and_matches_its_verdict(
        self, program, salt
    ):
        # The literal Lyle reconstruction is NOT sound in general
        # (finding E3): a jump needed for control flow may precede every
        # slice statement (Fig. 10), follow from a guarding `return`, or
        # even be a `break` no slice statement reaches.  What does hold,
        # and is pinned here: Lyle ⊇ conventional, and its additions are
        # exactly jumps plus their dependence closures.  Its paper-level
        # behaviours (Figs. 3/5, and its Fig. 10 degeneracy) are pinned
        # by the integration suite.
        from repro.slicing.conventional import conventional_slice

        analysis = analyze_program(program)
        line, var = random_criterion(random.Random(salt), program)
        assume_live(analysis, line)
        criterion = SlicingCriterion(line, var)
        conventional = conventional_slice(analysis, criterion)
        lyle = lyle_slice(analysis, criterion)
        assert set(conventional.statement_nodes()) <= set(
            lyle.statement_nodes()
        )
        # Every Lyle addition is a jump or part of a jump's closure.
        extras = set(lyle.statement_nodes()) - set(
            conventional.statement_nodes()
        )
        jumps = {n for n in extras if analysis.cfg.nodes[n].is_jump}
        closure = set()
        for jump in jumps:
            closure |= analysis.pdg.backward_closure([jump])
        assert extras <= jumps | closure
