"""Properties of the Fig. 12 / Fig. 13 simplifications (paper §4).

On structured programs passing the documented preconditions (no dead
code, no all-branches-leave predicate — erratum E1):

* the Fig. 12 slice never exceeds Fig. 7's and any difference consists of
  jumps redundant at Fig. 7's fixed point (erratum E2's traversal-order
  artefact; in the overwhelming majority of cases the two are equal);
* a single traversal suffices for Fig. 7 in all but the rare E2 cases
  (we assert a bound of 2 productive traversals, measured max over tens
  of thousands of programs);
* Fig. 13's conservative slice contains Fig. 12's;
* both extracted slices are semantically correct.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gen.generator import generate_structured, random_criterion, realize
from repro.interp.oracle import check_slice_correctness
from repro.lang.errors import InterpreterError, SliceError
from repro.pdg.builder import analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.conservative import conservative_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.structured import structured_slice
from tests.property.strategies import input_streams, structured_programs


def prepared(program, salt):
    analysis = analyze_program(program)
    line, var = random_criterion(random.Random(salt), program)
    return analysis, SlicingCriterion(line, var)


class TestFig12:
    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_structured_within_general(self, program, salt):
        analysis, criterion = prepared(program, salt)
        try:
            simplified = structured_slice(analysis, criterion)
        except SliceError:
            assume(False)  # guarded precondition (dead code / E1)
        general = agrawal_slice(analysis, criterion)
        simple_set = set(simplified.statement_nodes())
        general_set = set(general.statement_nodes())
        assert simple_set <= general_set
        # Any surplus in Fig. 7's result comes from transiently-added
        # jumps (erratum E2) together with their dependence closures.
        extras = general_set - simple_set
        extra_jumps = {
            n for n in extras if analysis.cfg.nodes[n].is_jump
        }
        closure = set()
        for jump in extra_jumps:
            closure |= analysis.pdg.backward_closure([jump])
        assert extras <= extra_jumps | closure

    def test_seed15182_switch_break_regression(self):
        """The recorded Fig12 ⊄ Fig7 counterexample (ROADMAP, resolved;
        EXPERIMENTS.md E6) stays fixed.

        Seed 15182 with criterion ``(30, "v3")`` produces a ``do``-loop
        holding two nested ``switch`` statements; the inner case's
        ``break`` (node 10, line 15) and the outer case's ``break``
        (node 11, line 17) share the same nearest postdominator once
        both are considered.  The E4 repair pass used to examine jumps
        in node-id order, seeing node 10 before node 11: at that moment
        npd (13) ≠ nls (12), so node 10 was added — transiently true
        only, since after node 11 joins both queries answer 11.  Fig. 7
        examines node 11 first (postdominator-tree pre-order) and never
        adds node 10, so Fig12 ⊆ Fig7 was violated by the schedule, not
        by either paper algorithm.  The repair pass now follows Fig. 7's
        schedule; this pins all three facts: the trigger geometry still
        arises (the repair pass does fire and adds node 11), node 10
        stays out, and containment holds.
        """
        program = realize(generate_structured(random.Random(15182), None))
        line, var = random_criterion(random.Random(0), program)
        assert (line, var) == (30, "v3")
        analysis = analyze_program(program)
        criterion = SlicingCriterion(line, var)
        simplified = structured_slice(analysis, criterion)
        general = agrawal_slice(analysis, criterion)
        simple_set = set(simplified.statement_nodes())
        general_set = set(general.statement_nodes())
        # The switch-nested break (node 10) is the historical extra; it
        # must be redundant by the paper's own §3 omission criterion
        # and therefore out of both slices.
        assert analysis.cfg.nodes[10].is_jump
        assert 10 not in simple_set
        assert 10 not in general_set
        # The geometry that triggered the bug is still exercised: the
        # repair pass fires and brings in the sibling break (node 11).
        assert 11 in simple_set
        assert any("E4 repair" in note for note in simplified.notes)
        assert simple_set <= general_set

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_single_traversal_nearly_always(self, program, salt):
        analysis, criterion = prepared(program, salt)
        try:
            structured_slice(analysis, criterion)
        except SliceError:
            assume(False)
        general = agrawal_slice(analysis, criterion)
        assert general.traversals <= 2

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_semantically_correct(self, program, salt):
        analysis, criterion = prepared(program, salt)
        try:
            simplified = structured_slice(analysis, criterion)
        except SliceError:
            assume(False)
        rng = random.Random(salt ^ 0xBEEF)
        inputs = [
            [rng.randint(-9, 9) for _ in range(rng.randint(0, 8))]
            for _ in range(3)
        ]
        try:
            check_slice_correctness(simplified, inputs, step_limit=50_000)
        except InterpreterError:
            assume(False)


class TestFig13:
    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_contains_fig12_slice(self, program, salt):
        analysis, criterion = prepared(program, salt)
        try:
            simplified = structured_slice(analysis, criterion)
            conservative = conservative_slice(analysis, criterion)
        except SliceError:
            assume(False)
        assert set(simplified.statement_nodes()) <= set(
            conservative.statement_nodes()
        )

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_extra_jumps_only(self, program, salt):
        analysis, criterion = prepared(program, salt)
        try:
            simplified = structured_slice(analysis, criterion)
            conservative = conservative_slice(analysis, criterion)
        except SliceError:
            assume(False)
        extras = set(conservative.statement_nodes()) - set(
            simplified.statement_nodes()
        )
        # Every extra is a jump, or a dependence of an extra jump
        # (the defensive closure).
        jump_extras = {
            n for n in extras if analysis.cfg.nodes[n].is_jump
        }
        closure = set()
        for jump in jump_extras:
            closure |= analysis.pdg.backward_closure([jump])
        assert extras <= jump_extras | closure

    @given(structured_programs(), st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_semantically_correct(self, program, salt):
        analysis, criterion = prepared(program, salt)
        try:
            conservative = conservative_slice(analysis, criterion)
        except SliceError:
            assume(False)
        rng = random.Random(salt ^ 0xF00D)
        inputs = [
            [rng.randint(-9, 9) for _ in range(rng.randint(0, 8))]
            for _ in range(3)
        ]
        try:
            check_slice_correctness(conservative, inputs, step_limit=50_000)
        except InterpreterError:
            assume(False)
