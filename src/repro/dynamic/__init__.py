"""Dynamic slicing (extension; Agrawal's companion line of work,
paper reference [1]: Agrawal–DeMillo–Spafford 1993).

A *dynamic* slice answers "which statements affected this value in THIS
execution?" — typically far smaller than the static slice, since only
the dependences actually exercised count.  The implementation records an
execution history through the CFG interpreter and builds the dynamic
dependence graph over statement *instances*.
"""

from repro.dynamic.slicer import DynamicSliceResult, dynamic_slice
from repro.dynamic.trace import ExecutionTrace, TraceEvent, record_trace

__all__ = [
    "DynamicSliceResult",
    "ExecutionTrace",
    "TraceEvent",
    "dynamic_slice",
    "record_trace",
]
