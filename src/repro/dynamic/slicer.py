"""Dynamic backward slicing over an execution trace.

The dynamic dependence graph has one vertex per *statement instance*
(trace event).  Edges:

* **dynamic data dependence** — recorded during tracing: a use depends
  on the instance that last defined the variable;
* **dynamic control dependence** — instance *e* depends on the most
  recent earlier instance of a node that *e*'s node is statically
  control dependent on (the standard Agrawal–Horgan recency rule).

The dynamic slice w.r.t. ⟨var, line⟩ and an occurrence of the criterion
statement is the backward closure from that instance, projected to
statements.  Because every dynamic data dependence instantiates a static
reaching definition along the executed path, and every dynamic control
parent is a static one, the dynamic slice is always a **subset of the
static conventional slice** (and hence of every jump-aware slice) — a
property the test suite asserts on random programs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.dynamic.trace import ExecutionTrace, record_trace
from repro.interp.interpreter import DEFAULT_STEP_LIMIT
from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry
from repro.lang.errors import SliceError
from repro.pdg.builder import ProgramAnalysis
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


@dataclass
class DynamicSliceResult:
    """A dynamic slice: statements whose executed instances affected the
    criterion instance."""

    criterion: SlicingCriterion
    occurrence: int
    criterion_event: int
    nodes: FrozenSet[int]
    trace: ExecutionTrace
    analysis: ProgramAnalysis
    #: indices of the trace events inside the dynamic closure.
    events: FrozenSet[int] = field(default_factory=frozenset)

    def statement_nodes(self) -> List[int]:
        cfg = self.analysis.cfg
        return [
            node_id
            for node_id in sorted(self.nodes)
            if cfg.nodes[node_id].stmt is not None
        ]

    def lines(self) -> List[int]:
        cfg = self.analysis.cfg
        return sorted({cfg.nodes[n].line for n in self.statement_nodes()})


def dynamic_slice(
    analysis: ProgramAnalysis,
    criterion: SlicingCriterion,
    inputs: Sequence[int] = (),
    initial_env: Optional[Dict[str, int]] = None,
    occurrence: int = -1,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> DynamicSliceResult:
    """Slice one execution of the program w.r.t. ``(var, line)``.

    Parameters
    ----------
    occurrence:
        Which execution of the criterion statement to slice at
        (Python-style index into its occurrence list; default ``-1``,
        the last one).

    Raises
    ------
    SliceError
        If the criterion statement never executed on these inputs.
    """
    resolved = resolve_criterion(analysis, criterion)
    trace = record_trace(
        analysis.cfg,
        inputs,
        initial_env=initial_env,
        intrinsics=intrinsics,
        step_limit=step_limit,
    )
    occurrences = trace.occurrences_of(resolved.node_id)
    if not occurrences:
        raise SliceError(
            f"criterion statement (node {resolved.node_id}, line "
            f"{criterion.line}) never executed on inputs {list(inputs)}"
        )
    try:
        criterion_event = occurrences[occurrence]
    except IndexError:
        raise SliceError(
            f"criterion statement executed {len(occurrences)} time(s); "
            f"occurrence {occurrence} does not exist"
        ) from None

    control_parents = {
        node.id: set(analysis.cdg.parents_of(node.id))
        for node in analysis.cfg.sorted_nodes()
    }

    # Precompute each event's dynamic control parent: the most recent
    # earlier event whose node statically controls this one.
    last_seen: Dict[int, int] = {}
    dynamic_control: List[Optional[int]] = [None] * len(trace.events)
    for event in trace.events:
        parents = control_parents[event.node_id]
        best: Optional[int] = None
        for parent_node in parents:
            seen = last_seen.get(parent_node)
            if seen is not None and (best is None or seen > best):
                best = seen
        dynamic_control[event.index] = best
        last_seen[event.node_id] = event.index

    # Backward closure over the dynamic dependence graph.
    included = {criterion_event}
    worklist = deque(included)
    while worklist:
        index = worklist.popleft()
        event = trace.events[index]
        suppliers = [dep_index for _, dep_index in event.data_deps]
        control = dynamic_control[index]
        if control is not None:
            suppliers.append(control)
        for supplier in suppliers:
            if supplier not in included:
                included.add(supplier)
                worklist.append(supplier)

    nodes = frozenset(trace.events[i].node_id for i in included)
    return DynamicSliceResult(
        criterion=criterion,
        occurrence=occurrence,
        criterion_event=criterion_event,
        nodes=nodes,
        trace=trace,
        analysis=analysis,
        events=frozenset(included),
    )
