"""Execution histories for dynamic slicing.

A trace is the sequence of executed CFG nodes; each event additionally
records, per variable the node uses, the index of the event that last
defined it (the *dynamic data dependence*).  Definitions are tracked
from the nodes' static def sets, which are exact for SL (every ``x = e``
defines precisely ``x``; ``read`` defines its target and the ``$in``
cursor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.interp.interpreter import DEFAULT_STEP_LIMIT, Interpreter
from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry


@dataclass(frozen=True)
class TraceEvent:
    """One executed statement instance."""

    index: int
    node_id: int
    #: variable -> index of the event that last defined it (absent when
    #: the use read an initial/unwritten value).
    data_deps: Tuple[Tuple[str, int], ...]


@dataclass
class ExecutionTrace:
    """A full execution history plus the run's observable results."""

    events: List[TraceEvent] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)
    returned: Optional[int] = None

    def __len__(self) -> int:
        return len(self.events)

    def occurrences_of(self, node_id: int) -> List[int]:
        """Event indices at which *node_id* executed."""
        return [e.index for e in self.events if e.node_id == node_id]


def record_trace(
    cfg: ControlFlowGraph,
    inputs: Sequence[int] = (),
    initial_env: Optional[Dict[str, int]] = None,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> ExecutionTrace:
    """Execute *cfg* over *inputs* and record the dynamic history."""
    trace = ExecutionTrace()
    last_definition: Dict[str, int] = {}

    def tracer(node_id: int) -> None:
        node = cfg.nodes[node_id]
        deps = tuple(
            (var, last_definition[var])
            for var in sorted(node.uses)
            if var in last_definition
        )
        event = TraceEvent(
            index=len(trace.events), node_id=node_id, data_deps=deps
        )
        trace.events.append(event)
        for var in node.defs:
            last_definition[var] = event.index

    interpreter = Interpreter(
        cfg, intrinsics=intrinsics, step_limit=step_limit
    )
    result = interpreter.run(
        inputs, initial_env=initial_env, tracer=tracer
    )
    trace.outputs = result.outputs
    trace.returned = result.returned
    return trace
