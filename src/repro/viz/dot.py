"""Graphviz-DOT and ASCII renderings of the analysis graphs.

The paper's figures 2, 4, 6, 9, 11 and 15 each show four graphs per
program — flowgraph, postdominator tree, control-dependence graph, and
lexical successor tree.  :func:`render_all` regenerates all of them (plus
the data- and program-dependence graphs) for any program; the ``graph``
CLI subcommand exposes it.

Only plain strings are produced — no graphviz dependency; pipe the output
to ``dot -Tpdf`` if rendering is wanted.  :func:`ascii_tree` draws trees
directly in the terminal, which is what the tests snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.tree import Tree
from repro.cfg.graph import ControlFlowGraph, NodeKind
from repro.pdg.builder import ProgramAnalysis
from repro.pdg.graph import ProgramDependenceGraph


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _node_label(cfg: ControlFlowGraph, node_id: int) -> str:
    node = cfg.nodes[node_id]
    if node.kind is NodeKind.ENTRY:
        return "ENTRY"
    if node.kind is NodeKind.EXIT:
        return "EXIT"
    return f"{node_id}: {node.text}"


def _node_attrs(
    cfg: ControlFlowGraph, node_id: int, highlight: Set[int]
) -> str:
    node = cfg.nodes[node_id]
    attrs = [f"label={_quote(_node_label(cfg, node_id))}"]
    if node.kind in (NodeKind.ENTRY, NodeKind.EXIT):
        attrs.append("shape=oval")
    elif node.is_branch:
        attrs.append("shape=diamond")
    elif node.is_jump:
        # The paper draws jump statements with thick outlines.
        attrs.append("shape=box")
        attrs.append("penwidth=2.5")
    else:
        attrs.append("shape=box")
    if node_id in highlight:
        attrs.append("style=filled")
        attrs.append("fillcolor=lightgrey")
    return ", ".join(attrs)


def cfg_to_dot(
    cfg: ControlFlowGraph,
    name: str = "flowgraph",
    highlight: Optional[Iterable[int]] = None,
) -> str:
    """The flowgraph as DOT; *highlight* shades a node set (the paper
    shades slice members)."""
    shade = set(highlight or ())
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    for node in cfg.sorted_nodes():
        lines.append(f"  n{node.id} [{_node_attrs(cfg, node.id, shade)}];")
    for src, dst, label in cfg.edges():
        attr = f" [label={_quote(label)}]" if label not in ("fall",) else ""
        lines.append(f"  n{src} -> n{dst}{attr};")
    lines.append("}")
    return "\n".join(lines)


def tree_to_dot(
    tree: Tree,
    cfg: ControlFlowGraph,
    name: str = "tree",
    highlight: Optional[Iterable[int]] = None,
) -> str:
    """A postdominator / dominator / lexical successor tree as DOT."""
    shade = set(highlight or ())
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    for node_id in sorted(tree.nodes):
        lines.append(f"  n{node_id} [{_node_attrs(cfg, node_id, shade)}];")
    for parent, child in sorted(tree.edges()):
        lines.append(f"  n{parent} -> n{child};")
    lines.append("}")
    return "\n".join(lines)


def _dependence_to_dot(
    edges: Iterable,
    cfg: ControlFlowGraph,
    name: str,
    highlight: Set[int],
    label_index: int = 2,
) -> str:
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    nodes: Set[int] = set()
    edge_lines: List[str] = []
    for edge in edges:
        src, dst = edge[0], edge[1]
        label = str(edge[label_index]) if len(edge) > label_index else ""
        nodes.add(src)
        nodes.add(dst)
        attr = f" [label={_quote(label)}]" if label else ""
        edge_lines.append(f"  n{src} -> n{dst}{attr};")
    for node_id in sorted(nodes):
        lines.append(f"  n{node_id} [{_node_attrs(cfg, node_id, highlight)}];")
    lines.extend(edge_lines)
    lines.append("}")
    return "\n".join(lines)


def cdg_to_dot(
    analysis: ProgramAnalysis,
    name: str = "cdg",
    highlight: Optional[Iterable[int]] = None,
) -> str:
    return _dependence_to_dot(
        analysis.cdg.edges(), analysis.cfg, name, set(highlight or ())
    )


def ddg_to_dot(
    analysis: ProgramAnalysis,
    name: str = "ddg",
    highlight: Optional[Iterable[int]] = None,
) -> str:
    return _dependence_to_dot(
        analysis.ddg.edges(), analysis.cfg, name, set(highlight or ())
    )


def pdg_to_dot(
    pdg: ProgramDependenceGraph,
    cfg: ControlFlowGraph,
    name: str = "pdg",
    highlight: Optional[Iterable[int]] = None,
) -> str:
    shade = set(highlight or ())
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    nodes: Set[int] = set()
    edge_lines: List[str] = []
    for src, dst, kind, detail in pdg.edges():
        nodes.add(src)
        nodes.add(dst)
        style = "solid" if kind == "control" else "dashed"
        label = detail if kind == "data" else ""
        attr = f' [style={style}{f", label={_quote(label)}" if label else ""}]'
        edge_lines.append(f"  n{src} -> n{dst}{attr};")
    for node_id in sorted(nodes):
        lines.append(f"  n{node_id} [{_node_attrs(cfg, node_id, shade)}];")
    lines.extend(edge_lines)
    lines.append("}")
    return "\n".join(lines)


def ascii_tree(
    tree: Tree,
    cfg: Optional[ControlFlowGraph] = None,
    highlight: Optional[Iterable[int]] = None,
) -> str:
    """A terminal rendering of a tree; slice members marked with ``*``."""
    shade = set(highlight or ())

    def label(node_id: int) -> str:
        mark = "*" if node_id in shade else ""
        if cfg is None:
            return f"{node_id}{mark}"
        return f"{_node_label(cfg, node_id)}{mark}"

    lines: List[str] = []

    def walk(node_id: int, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(label(node_id))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(f"{prefix}{connector}{label(node_id)}")
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = tree.children_of(node_id)
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(tree.root, "", True, True)
    return "\n".join(lines)


def render_all(
    analysis: ProgramAnalysis,
    highlight: Optional[Iterable[int]] = None,
) -> Dict[str, str]:
    """Every graph the paper draws for a program, keyed by figure role."""
    shade = list(highlight or ())
    return {
        "flowgraph": cfg_to_dot(analysis.cfg, "flowgraph", shade),
        "postdominator-tree": tree_to_dot(
            analysis.pdt, analysis.cfg, "postdominators", shade
        ),
        "control-dependence": cdg_to_dot(analysis, "cdg", shade),
        "lexical-successor-tree": tree_to_dot(
            analysis.lst, analysis.cfg, "lst", shade
        ),
        "data-dependence": ddg_to_dot(analysis, "ddg", shade),
        "pdg": pdg_to_dot(analysis.pdg, analysis.cfg, "pdg", shade),
    }
