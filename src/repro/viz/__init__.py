"""Rendering of the paper's graph figures (DOT and ASCII)."""

from repro.viz.dot import (
    ascii_tree,
    cdg_to_dot,
    cfg_to_dot,
    ddg_to_dot,
    pdg_to_dot,
    render_all,
    tree_to_dot,
)

__all__ = [
    "ascii_tree",
    "cdg_to_dot",
    "cfg_to_dot",
    "ddg_to_dot",
    "pdg_to_dot",
    "render_all",
    "tree_to_dot",
]
