"""Gallagher's jump rule (paper §5, references [11, 12]).

"A jump statement, Goto L, is included in a slice only if a statement in
the block labeled L and the predicates on which the jump statement is
control dependent are included in the slice."  Break/continue/return are
handled by the paper's suggested extension — think of them as gotos with
dummy labels on their targets, i.e. the rule inspects the basic block the
jump transfers control to.

The rule iterates to a fixed point (added jumps pull in their dependence
closure, which can make further blocks "included").

The paper's calibration points, reproduced by the tests:

* on Fig. 5 the rule correctly omits the ``continue`` on line 11 (the
  predicate on line 9 is not in the slice);
* on Fig. 16 it **incorrectly** omits the goto on line 4, because no
  statement of the block labelled L6 is in the slice — so the extracted
  "slice" executes ``y = f2(x)`` unconditionally (Fig. 16b).  This is the
  unsoundness Agrawal's algorithm fixes.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.lexical import jump_target
from repro.cfg.basic_blocks import compute_basic_blocks
from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult, conventional_base, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion
from repro.slicing.structured import PREDICATE_KINDS


def gallagher_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Slice with the reconstruction of Gallagher's rule."""
    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    blocks = compute_basic_blocks(cfg)
    slice_set: Set[int] = conventional_base(analysis, resolved)

    changed = True
    while changed:
        changed = False
        for jump in cfg.jump_nodes():
            if jump.id in slice_set:
                continue
            target_block = blocks[jump_target(cfg, jump.id)]
            block_touched = any(
                member in slice_set for member in target_block.node_ids
            )
            if not block_touched:
                continue
            controlling = [
                parent
                for parent in analysis.cdg.parents_of(jump.id)
                if cfg.nodes[parent].kind in PREDICATE_KINDS
            ]
            if controlling and not all(
                parent in slice_set for parent in controlling
            ):
                continue
            slice_set.add(jump.id)
            slice_set |= analysis.pdg.backward_closure([jump.id])
            changed = True

    nodes = frozenset(slice_set)
    return SliceResult(
        algorithm="gallagher",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map=reassociate_labels(analysis, nodes),
    )
