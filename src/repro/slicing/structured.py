"""Agrawal's simplified algorithm for structured programs — Figure 12.

For programs whose every jump is structured (target lexically succeeds
the jump: ``break``/``continue``/``return``, forward gotos along their
own successor chain), §4 proves two properties:

1. no (postdominates, lexically-succeeds) conflicting pair exists, so a
   **single** pre-order traversal of the postdominator tree suffices; and
2. a jump can only matter when a predicate it is *directly* control
   dependent on is already in the slice — and then the closure of the
   jump's dependences is already in the slice too.

The algorithm therefore makes one traversal, considers only jumps
directly control dependent on an in-slice predicate, applies the same
nearest-postdominator vs nearest-lexical-successor test, and never needs
to chase dependence closures.
"""

from __future__ import annotations

from typing import Set

from repro.cfg.graph import NodeKind
from repro.lang.errors import SliceError
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.analysis.lexical import is_structured_program
from repro.slicing.common import (
    SliceResult,
    conventional_base,
    nearest_in_slice,
    reassociate_labels,
)
from repro.slicing.criterion import SlicingCriterion, resolve_criterion

#: Node kinds that count as predicates for the "directly control
#: dependent on a predicate in Slice" test.  ENTRY is included: the paper
#: treats it as "a dummy predicate node, viz., node 0" (footnote 3) on
#: which all top-level statements are control dependent, and it is in
#: every slice's closure.  Without it, a top-level unguarded ``return``
#: (whose removal resurrects dead code after it) would never be
#: considered, and Figs. 12/13 would under-slice a structured program.
PREDICATE_KINDS = frozenset(
    {NodeKind.PREDICATE, NodeKind.SWITCH, NodeKind.CONDGOTO, NodeKind.ENTRY}
)


def exit_diverting_predicates(analysis: ProgramAnalysis) -> list:
    """Predicates from which control never rejoins the program.

    A predicate whose immediate postdominator is EXIT even though real
    statements lexically follow it (every branch ``return``s, say) breaks
    the paper's §4 property 2: jumps under it can be *needed* by a slice
    while the predicate itself is not in the conventional slice — so
    Figs. 12/13 would under-slice.  **This is a deviation from the paper
    discovered by this reproduction's property-based tests** (see
    EXPERIMENTS.md, finding E1): the counterexample

    .. code-block:: c

        if (p) { if (q) return 1; return 2; }   // both branches return
        write(x);                                // criterion

    is structured by the paper's definition, yet Fig. 12 drops both
    returns (the criterion is not control dependent on ``q``, so ``q`` is
    not in the conventional slice) while Fig. 7 and Ball–Horwitz keep
    them.  The structured slicers therefore refuse programs containing
    such predicates unless forced.
    """
    cfg = analysis.cfg
    out = []
    for node in cfg.statement_nodes():
        if node.kind not in PREDICATE_KINDS:
            continue
        if (
            analysis.pdt.parent_of(node.id) == cfg.exit_id
            and analysis.lst.parent_of(node.id) != cfg.exit_id
        ):
            out.append(node.id)
    return out


def _controlled_by_slice_predicate(
    analysis: ProgramAnalysis, node_id: int, slice_set: Set[int]
) -> bool:
    for parent in analysis.cdg.parents_of(node_id):
        if (
            parent in slice_set
            and analysis.cfg.nodes[parent].kind in PREDICATE_KINDS
        ):
            return True
    return False


def jump_repair_pass(analysis: ProgramAnalysis, slice_set: Set[int]) -> Set[int]:
    """Apply the §3 npd/nls test to *every* out-of-slice jump until a
    fixed point; return the set of jumps added.

    **Erratum E4, discovered by the slice well-formedness verifier**
    (``repro.lint.slice_check``; see EXPERIMENTS.md): §4's property 2 —
    a jump can only matter when a predicate it is *directly* control
    dependent on is already in the slice — is false.  On a structured
    program a jump J controlled only by an out-of-slice predicate Q can
    still matter: when every path through Q's region bypasses an
    in-slice statement S, deleting the region (Q, J and all) makes the
    fall-through edge of S's own guard land *on* S, changing S's guard.
    Minimal witness (criterion ``<v1, line 6>``)::

        read(v3);
        if (4 != v3) goto L9;   // P, in slice (guards L9)
        if (v3) goto L13;       // Q, not in slice
        goto L13;               // J, control dependent only on Q
        L9: v1 = 1;             // in slice
        L13: write(v1);         // criterion

    Fig. 12/13 omit J (and Q), so the sliced program falls through P
    into ``v1 = 1`` on the path where the original skips it.  This pass
    is a no-op exactly when property 2 holds; otherwise it restores the
    Fig. 7 termination invariant (no out-of-slice jump with
    npd-in-slice ≠ nls-in-slice) and with it slice correctness.

    Jumps are examined in postdominator-tree pre-order — the same
    schedule Fig. 7 uses — not in node-id order.  **Erratum E6
    (seed 15182, see EXPERIMENTS.md):** the npd/nls test is
    order-sensitive while the slice is still growing.  Under node-id
    order a ``switch``-nested ``break`` B1 can be examined before the
    sibling ``break`` B2 that lexically follows it; without B2 in the
    slice B1's nearest postdominator and lexical successor transiently
    differ, so B1 is added — yet once B2 joins, both queries answer B2
    and B1 is redundant (npd == nls at the fixed point).  Fig. 7's
    pre-order visits B2 first and never adds B1, so the node-id
    schedule broke Fig12 ⊆ Fig7 containment.  Matching Fig. 7's
    schedule removes the artefact; the fixed point reached still
    satisfies the invariant above, which is all E4 soundness needs.
    """
    cfg = analysis.cfg
    added: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for node_id in analysis.pdt.preorder():
            node = cfg.nodes.get(node_id)
            if node is None or not node.is_jump or node_id in slice_set:
                continue
            npd = nearest_in_slice(
                analysis.pdt, node_id, slice_set, cfg.exit_id
            )
            nls = nearest_in_slice(
                analysis.lst, node_id, slice_set, cfg.exit_id
            )
            if npd != nls:
                added.add(node_id)
                slice_set.add(node_id)
                slice_set |= analysis.pdg.backward_closure([node_id])
                changed = True
    return added


def structured_slice(
    analysis: ProgramAnalysis,
    criterion: SlicingCriterion,
    force: bool = False,
) -> SliceResult:
    """Slice with the paper's Fig. 12 algorithm.

    Raises :class:`SliceError` when the program is not structured, since
    the algorithm's guarantees do not apply; pass ``force=True`` to run
    the algorithm exactly as published — skipping both the
    preconditions and the erratum-E4 defensive repair — so the result
    may be an under-approximation (useful for the tests that
    demonstrate *why* the precondition and the repair exist).
    """
    structured = is_structured_program(analysis.cfg, analysis.lst)
    if not structured and not force:
        raise SliceError(
            "Fig. 12 requires a structured program (every jump's target "
            "lexically succeeds it); use agrawal_slice for unstructured "
            "programs or pass force=True to run regardless"
        )
    dead = analysis.cfg.unreachable_statements()
    if dead and not force:
        raise SliceError(
            "Fig. 12 assumes no unreachable code (its property 2 fails "
            f"on dead code; first dead statement at line {dead[0].line}); "
            "use agrawal_slice or pass force=True"
        )
    diverting = exit_diverting_predicates(analysis)
    if diverting and not force:
        line = analysis.cfg.nodes[diverting[0]].line
        raise SliceError(
            "Fig. 12's property 2 fails when a predicate's every branch "
            f"leaves the program (line {line}): jumps under it may be "
            "needed while it is outside the conventional slice (erratum "
            "E1, see EXPERIMENTS.md); use agrawal_slice or pass "
            "force=True"
        )

    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    with trace_span("conventional-base"):
        slice_set: Set[int] = conventional_base(analysis, resolved)

    with trace_span("fig12-traversal") as span:
        jumps_examined = 0
        jumps_added = 0
        for node_id in analysis.pdt.preorder():
            node = cfg.nodes.get(node_id)
            if node is None or not node.is_jump or node_id in slice_set:
                continue
            if not _controlled_by_slice_predicate(
                analysis, node_id, slice_set
            ):
                continue
            jumps_examined += 1
            npd = nearest_in_slice(
                analysis.pdt, node_id, slice_set, cfg.exit_id
            )
            nls = nearest_in_slice(
                analysis.lst, node_id, slice_set, cfg.exit_id
            )
            if npd != nls:
                slice_set.add(node_id)
                # Defensive closure — a no-op when the paper's property 2
                # holds (see the matching comment in conservative.py).
                slice_set |= analysis.pdg.backward_closure([node_id])
                jumps_added += 1
        span.set(jumps_examined=jumps_examined, jumps_added=jumps_added)

    if force:
        repaired = set()
    else:
        with trace_span("jump-repair") as span:
            repaired = jump_repair_pass(analysis, slice_set)
            span.set(jumps_added=len(repaired))

    nodes = frozenset(slice_set)
    notes = [] if structured else ["ran on an unstructured program (force)"]
    if repaired:
        notes.append(
            "erratum E4 repair added jump node(s) "
            f"{sorted(repaired)} missed by the property-2 predicate test"
        )
    return SliceResult(
        algorithm="structured",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=1 + (1 if repaired else 0),
        label_map=reassociate_labels(analysis, nodes),
        notes=notes,
    )
