"""Slicing criteria.

The paper slices "with respect to a variable, var, and a location, loc"
(§1).  :class:`SlicingCriterion` names those two things by source line
and variable name; :func:`resolve_criterion` maps them onto CFG nodes:

* the *criterion node* is the statement at the given line (preferring one
  that uses the variable, then one that defines it);
* the *seed set* for the dependence closure is the criterion node itself
  when it uses or defines the variable, otherwise the node plus every
  definition of the variable reaching it (the value "observed" at a
  location that does not mention the variable is whatever definition
  flows there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.lang.errors import SliceError, UnreachableCriterionError
from repro.pdg.builder import ProgramAnalysis


@dataclass(frozen=True)
class SlicingCriterion:
    """Slice with respect to *var* at source line *line*.

    ``proc`` optionally names the procedure the line lives in; it is
    only needed to disambiguate when statements of more than one unit
    share the line (interprocedural slicing, DESIGN.md §12).
    """

    line: int
    var: str
    proc: Optional[str] = None

    def __str__(self) -> str:
        if self.proc is not None:
            return f"<{self.var}, line {self.line} in proc '{self.proc}'>"
        return f"<{self.var}, line {self.line}>"


@dataclass(frozen=True)
class ResolvedCriterion:
    """A criterion mapped onto CFG nodes."""

    criterion: SlicingCriterion
    node_id: int
    seeds: FrozenSet[int]


def resolve_criterion(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> ResolvedCriterion:
    """Locate the criterion statement and the dependence seeds.

    Raises
    ------
    SliceError
        When no statement exists at the requested line.
    UnreachableCriterionError
        When every statement at the requested line is statically
        unreachable: no execution ever produces a value there, so a
        slice with respect to it is vacuous (ROADMAP "dead criterion"
        item — previously algorithms disagreed about such criteria,
        breaking the idempotence property).
    """
    cfg = analysis.cfg
    candidates: List[int] = list(analysis.nodes_at_line(criterion.line))
    if not candidates:
        raise SliceError(
            f"no statement at line {criterion.line}; "
            f"statement lines are {analysis.statement_lines()}"
        )
    reachable = cfg.reachable_from(cfg.entry_id)
    live = [node_id for node_id in candidates if node_id in reachable]
    if not live:
        raise UnreachableCriterionError(
            f"criterion {criterion} names a statically unreachable "
            "statement: no execution ever reaches it, so every slice "
            "with respect to it is empty; remove the dead code (slang "
            "check reports it as SL101) or pick a reachable criterion"
        )
    node_id = _pick_candidate(analysis, live, criterion.var)
    node = cfg.nodes[node_id]
    if criterion.var in node.uses or criterion.var in node.defs:
        seeds: FrozenSet[int] = frozenset({node_id})
    else:
        reaching = analysis.reaching_defs_of(node_id, criterion.var)
        seeds = frozenset({node_id, *reaching})
    return ResolvedCriterion(criterion=criterion, node_id=node_id, seeds=seeds)


def _pick_candidate(
    analysis: ProgramAnalysis, candidates: List[int], var: str
) -> int:
    """Among same-line statements, prefer one using *var*, then one
    defining it, then the first."""
    using: Optional[int] = None
    defining: Optional[int] = None
    for node_id in candidates:
        node = analysis.cfg.nodes[node_id]
        if using is None and var in node.uses:
            using = node_id
        if defining is None and var in node.defs:
            defining = node_id
    if using is not None:
        return using
    if defining is not None:
        return defining
    return candidates[0]
