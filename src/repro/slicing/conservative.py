"""Agrawal's conservative on-the-fly algorithm — Figure 13.

The extreme simplification for structured programs: skip the lexical
successor tree and the postdominator-tree traversal entirely, and add
**every** jump statement that is directly control dependent on a
predicate in the slice.  The result may contain jumps the Fig. 12
algorithm would omit (paper Fig. 14c includes the ``break`` statements on
lines 5 and 7 that Fig. 14b does not), but it is never *less* than
Fig. 12's slice, never incorrect on structured programs, and cheap enough
to fold into the conventional slicer's closure ("on-the-fly detection",
§4).
"""

from __future__ import annotations

from typing import Set

from repro.lang.errors import SliceError
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.analysis.lexical import is_structured_program
from repro.service.resilience import budget_tick
from repro.slicing.common import SliceResult, conventional_base, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion
from repro.slicing.structured import (
    _controlled_by_slice_predicate,
    exit_diverting_predicates,
    jump_repair_pass,
)


def conservative_slice(
    analysis: ProgramAnalysis,
    criterion: SlicingCriterion,
    force: bool = False,
) -> SliceResult:
    """Slice with the paper's Fig. 13 algorithm.

    Like :func:`repro.slicing.structured.structured_slice`, this is only
    guaranteed correct on structured programs; ``force=True`` bypasses
    the check.
    """
    structured = is_structured_program(analysis.cfg, analysis.lst)
    if not structured and not force:
        raise SliceError(
            "Fig. 13 is only correct for structured programs; use "
            "agrawal_slice for unstructured programs or pass force=True"
        )
    dead = analysis.cfg.unreachable_statements()
    if dead and not force:
        raise SliceError(
            "Fig. 13 assumes no unreachable code (a jump guarding dead "
            f"code would be missed; first dead statement at line "
            f"{dead[0].line}); use agrawal_slice or pass force=True"
        )
    diverting = exit_diverting_predicates(analysis)
    if diverting and not force:
        line = analysis.cfg.nodes[diverting[0]].line
        raise SliceError(
            "Fig. 13 shares Fig. 12's property-2 precondition, violated "
            f"by the all-branches-leave predicate at line {line} "
            "(erratum E1, see EXPERIMENTS.md); use agrawal_slice or "
            "pass force=True"
        )

    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    with trace_span("conventional-base"):
        slice_set: Set[int] = conventional_base(analysis, resolved)

    with trace_span("fig13-sweep") as span:
        jumps_examined = 0
        jumps_added = 0
        for node in cfg.jump_nodes():
            budget_tick("fig13-jump")
            if node.id in slice_set:
                continue
            jumps_examined += 1
            if _controlled_by_slice_predicate(analysis, node.id, slice_set):
                slice_set.add(node.id)
                jumps_added += 1
                # The paper adds no closure here, justified by its property
                # 2 (an added jump's dependences are already in the slice).
                # We union the closure anyway: it is a no-op exactly when
                # property 2 holds, and it keeps the slice well-formed (a
                # jump never appears without its enclosing construct) in the
                # corner cases the property misses — e.g. a jump controlled
                # only by the dummy entry predicate.
                slice_set |= analysis.pdg.backward_closure([node.id])
        span.set(jumps_examined=jumps_examined, jumps_added=jumps_added)

    # Fig. 13 leans on the same property 2 as Fig. 12, so it inherits
    # the same defensive repair (erratum E4 — see jump_repair_pass);
    # force=True means "exactly as published" and skips it.
    if force:
        repaired = set()
    else:
        with trace_span("jump-repair") as span:
            repaired = jump_repair_pass(analysis, slice_set)
            span.set(jumps_added=len(repaired))

    nodes = frozenset(slice_set)
    notes = [] if structured else ["ran on an unstructured program (force)"]
    if repaired:
        notes.append(
            "erratum E4 repair added jump node(s) "
            f"{sorted(repaired)} missed by the property-2 predicate test"
        )
    return SliceResult(
        algorithm="conservative",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map=reassociate_labels(analysis, nodes),
        notes=notes,
    )
