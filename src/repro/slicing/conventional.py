"""The conventional slicing algorithm (paper §2).

Transitive closure of data and control dependences from the criterion
node over the program dependence graph (Ottenstein & Ottenstein, Horwitz–
Reps–Binkley).  Includes the conditional-jump adaptation the paper folds
in ("if the predicate in a conditional jump statement is included …, the
associated jump must also be included") — automatic here because the CFG
builder fuses ``if (e) goto L;`` into one node.

On programs with unconditional jump statements the result is generally
**not** a correct slice — that is the paper's launching point (Fig. 3b) —
but it is the base every other algorithm refines.
"""

from __future__ import annotations

from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult, conventional_base, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


def conventional_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Slice by PDG backward reachability only."""
    resolved = resolve_criterion(analysis, criterion)
    nodes = frozenset(conventional_base(analysis, resolved))
    return SliceResult(
        algorithm="conventional",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map=reassociate_labels(analysis, nodes),
    )
