"""Name → slicing-algorithm registry (CLI, benches, and compare tooling).

Every algorithm shares the signature
``f(analysis: ProgramAnalysis, criterion: SlicingCriterion) -> SliceResult``;
variants needing extra arguments (the LST-driven Fig. 7 traversal, the
forced structured slicers) are registered as partially-applied entries.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.pdg.builder import ProgramAnalysis
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.common import SliceResult
from repro.slicing.conservative import conservative_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.gallagher import gallagher_slice
from repro.slicing.jiang import jiang_slice
from repro.slicing.lyle import lyle_slice
from repro.slicing.structured import structured_slice
from repro.slicing.weiser import weiser_slice
from repro.sdg.slicer import interprocedural_slice

Slicer = Callable[[ProgramAnalysis, SlicingCriterion], SliceResult]


def _agrawal_lexical(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    return agrawal_slice(analysis, criterion, drive_tree="lexical")


ALGORITHMS: Dict[str, Slicer] = {
    "conventional": conventional_slice,
    "agrawal": agrawal_slice,
    "agrawal-lst": _agrawal_lexical,
    "structured": structured_slice,
    "conservative": conservative_slice,
    "ball-horwitz": ball_horwitz_slice,
    "lyle": lyle_slice,
    "gallagher": gallagher_slice,
    "jiang": jiang_slice,
    "weiser": weiser_slice,
    "interprocedural": interprocedural_slice,
}

#: Algorithms that produce *correct* slices on arbitrary programs.
#: ``interprocedural`` is additionally the only one correct on
#: multi-procedure programs (every other algorithm sees the main unit
#: alone and would treat a call's results as free inputs).
CORRECT_GENERAL = (
    "agrawal",
    "agrawal-lst",
    "ball-horwitz",
    "lyle",
    "interprocedural",
)

#: Algorithms correct on structured programs only.
CORRECT_STRUCTURED = ("structured", "conservative")


def get_algorithm(name: str) -> Slicer:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown slicing algorithm {name!r}; "
            f"known: {', '.join(sorted(ALGORITHMS))}"
        ) from None


def algorithm_names() -> List[str]:
    return sorted(ALGORITHMS)


def algorithm_capability(name: str) -> str:
    """Correctness class of one algorithm.

    ``correct-general`` — correct on arbitrary programs (the paper's
    Fig. 7 variants, Ball–Horwitz, Lyle); ``structured-only`` — correct
    only when every jump is structured (Figs. 12/13); ``baseline`` —
    a comparison baseline with known deficiencies on jumps.
    """
    if name not in ALGORITHMS:
        raise ValueError(
            f"unknown slicing algorithm {name!r}; "
            f"known: {', '.join(sorted(ALGORITHMS))}"
        )
    if name in CORRECT_GENERAL:
        return "correct-general"
    if name in CORRECT_STRUCTURED:
        return "structured-only"
    return "baseline"


def algorithm_metadata() -> Dict[str, str]:
    """Name → correctness class for every registered algorithm, so
    service clients can discover capabilities before submitting work."""
    return {name: algorithm_capability(name) for name in algorithm_names()}
