"""Shared machinery for the slicing algorithms.

* :class:`SliceResult` — the node set a slicer produced, plus the
  bookkeeping every consumer needs (criterion, traversal count, label
  re-associations, a handle back to the analyses).
* :func:`nearest_in_slice` — the "nearest postdominator / lexical
  successor *in the slice*" query, with EXIT always treated as a member
  so the query is total (DESIGN.md §4).
* :func:`reassociate_labels` — the final step of Figs. 7/12/13: "for each
  goto statement, Goto L, in Slice, if the statement labeled L is not in
  Slice then associate the label L with its nearest postdominator in
  Slice."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Set

from repro.analysis.tree import Tree
from repro.cfg.graph import NodeKind
from repro.pdg.builder import ProgramAnalysis
from repro.service.resilience import budget_tick
from repro.slicing.criterion import ResolvedCriterion


def nearest_in_slice(
    tree: Tree, node_id: int, slice_nodes: AbstractSet[int], exit_id: int
) -> int:
    """The nearest proper ancestor of *node_id* (in *tree*) that is in the
    slice, with EXIT counting as always in the slice.

    Both trees the slicers walk (postdominator and lexical successor) are
    rooted at EXIT, so the walk always terminates with an answer.
    """
    # Iterate the memoized chain tuple directly: this is the hottest
    # loop of the Fig. 7 family and of label re-association.
    for ancestor in tree.ancestor_chain(node_id):
        if ancestor in slice_nodes or ancestor == exit_id:
            return ancestor
    raise AssertionError(
        f"node {node_id} has no ancestor reaching EXIT ({exit_id}); "
        "malformed tree"
    )


def reassociate_labels(
    analysis: ProgramAnalysis, slice_nodes: AbstractSet[int]
) -> Dict[str, int]:
    """Re-associate dangling goto labels with their nearest postdominator
    in the slice.

    Returns a map ``label -> node id``; extraction renders each entry as
    a labelled empty statement (``L: ;``) immediately before that node's
    statement, matching how the paper prints its slices (the bare ``L14``
    of Fig. 3c, the bare ``L6``/``L8`` of Fig. 10b).
    """
    cfg = analysis.cfg
    mapping: Dict[str, int] = {}
    # Only goto/condgoto members can dangle a label; the precomputed
    # site list (node-id order, matching the old sorted-slice scan)
    # keeps this O(gotos in slice) instead of O(slice).
    for node_id, label, target in analysis.goto_sites():
        if node_id not in slice_nodes:
            continue
        if target in slice_nodes or target == cfg.exit_id:
            continue
        mapping[label] = nearest_in_slice(
            analysis.pdt, target, slice_nodes, cfg.exit_id
        )
    return mapping


@dataclass
class SliceResult:
    """The output of one slicing algorithm run.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced the slice.
    resolved:
        The resolved criterion (node and seeds).
    nodes:
        The slice as a set of CFG node ids (may include ENTRY, never
        EXIT).
    analysis:
        The shared :class:`ProgramAnalysis` the slice was computed from.
    traversals:
        Number of postdominator-tree (or LST) traversals the algorithm
        performed (0 for algorithms that do not traverse).
    label_map:
        Re-associated labels (label → node id).
    notes:
        Free-form diagnostics (e.g. the structured slicer recording that
        it was run on an unstructured program with ``force=True``).
    """

    algorithm: str
    resolved: ResolvedCriterion
    nodes: FrozenSet[int]
    analysis: ProgramAnalysis
    traversals: int = 0
    label_map: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def criterion(self):
        return self.resolved.criterion

    def statement_nodes(self) -> List[int]:
        """Slice members that are real statements (ENTRY/EXIT stripped)."""
        cfg = self.analysis.cfg
        return [
            node_id
            for node_id in sorted(self.nodes)
            if cfg.nodes[node_id].kind
            not in (NodeKind.ENTRY, NodeKind.EXIT)
        ]

    def lines(self) -> List[int]:
        """Source lines of the slice's statements, sorted."""
        cfg = self.analysis.cfg
        return sorted({cfg.nodes[n].line for n in self.statement_nodes()})

    def jump_nodes(self) -> List[int]:
        cfg = self.analysis.cfg
        return [n for n in self.statement_nodes() if cfg.nodes[n].is_jump]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def same_statements_as(self, other: "SliceResult") -> bool:
        """Statement-set equality (ignores ENTRY membership, traversal
        counts, and label maps)."""
        return set(self.statement_nodes()) == set(other.statement_nodes())

    def describe(self) -> str:
        cfg = self.analysis.cfg
        lines = [
            f"slice by {self.algorithm} w.r.t. {self.criterion} "
            f"({len(self.statement_nodes())} statements, "
            f"{self.traversals} traversals)"
        ]
        for node_id in self.statement_nodes():
            node = cfg.nodes[node_id]
            lines.append(f"  {node_id:>3}  line {node.line:<3} {node.text}")
        for label, node_id in sorted(self.label_map.items()):
            lines.append(f"  label {label} -> node {node_id}")
        return "\n".join(lines)


def conventional_base(
    analysis: ProgramAnalysis, resolved: ResolvedCriterion
) -> Set[int]:
    """The conventional slice (paper §2) as a mutable node set: the
    backward closure of the criterion seeds over the standard PDG.

    Thanks to CONDGOTO fusion, the "adaptation" for conditional jump
    statements (§3: an included predicate brings its jump along) needs no
    extra work — the predicate and its goto are one node.
    """
    budget_tick("conventional-base")
    return set(analysis.pdg.backward_closure(resolved.seeds))
