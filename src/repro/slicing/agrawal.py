"""Agrawal's general slicing algorithm — the paper's Figure 7.

Start from the conventional slice.  Repeatedly traverse the postdominator
tree in pre-order; for every unconditional jump statement J not yet in
the slice, compare its *nearest postdominator in the slice* with its
*nearest lexical successor in the slice* (EXIT counts as in the slice for
both).  If they differ, J's presence affects the relative order or
guarding of the sliced statements, so J joins the slice along with the
transitive closure of its (control and data) dependences.  Iterate until
a whole traversal adds no jump.  Finally, re-associate the label of any
in-slice goto whose target fell outside the slice with the target's
nearest postdominator in the slice.

§3 notes that the traversal may equally be driven by pre-order over the
*lexical successor tree*; the final slice is identical though the number
of traversals may differ.  ``drive_tree="lexical"`` selects that variant
(ablation experiment B2 in DESIGN.md).

Additions take effect immediately *within* a traversal — the paper's
Fig. 3 walkthrough depends on it (node 13's inclusion is what keeps node
11 out) — hence the inner loop consults the live slice set.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.lang.errors import SliceError
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.service.resilience import budget_round, budget_tick
from repro.slicing.common import (
    SliceResult,
    conventional_base,
    nearest_in_slice,
    reassociate_labels,
)
from repro.slicing.criterion import SlicingCriterion, resolve_criterion

#: Safety bound on fixed-point traversals; the loop provably terminates
#: (each round adds at least one of finitely many jumps) so hitting this
#: indicates an implementation bug, not a hard program.
MAX_TRAVERSALS = 10_000


def _prune_redundant_jumps(
    analysis: ProgramAnalysis, slice_set: Set[int], base: frozenset
) -> None:
    """Drop algorithm-added jumps that are redundant at the fixed point,
    together with the dependence-closure members only they brought in.

    Sound by the paper's own criterion: a jump whose nearest
    postdominator in the slice equals its nearest lexical successor in
    the slice "will not adversely affect the flow of control among the
    statements included in the slice" when omitted (§3).  The candidate
    slice is rebuilt as ``base ∪ closures(surviving jumps)`` after each
    removal, so orphaned closure nodes disappear too; the loop iterates
    because one removal can make another jump redundant.
    """
    cfg = analysis.cfg
    jumps: Set[int] = {
        node_id
        for node_id in slice_set - base
        if cfg.nodes.get(node_id) is not None and cfg.nodes[node_id].is_jump
    }
    closures = {
        jump: analysis.pdg.backward_closure([jump]) for jump in jumps
    }

    def rebuild(kept: Set[int]) -> Set[int]:
        result = set(base)
        for jump in kept:
            result.add(jump)
            result |= closures[jump]
        return result

    changed = True
    while changed:
        changed = False
        for jump in sorted(jumps):
            budget_tick("fig7-prune")
            candidate = rebuild(jumps - {jump})
            npd = nearest_in_slice(analysis.pdt, jump, candidate, cfg.exit_id)
            nls = nearest_in_slice(analysis.lst, jump, candidate, cfg.exit_id)
            if npd == nls:
                jumps.discard(jump)
                changed = True
                break

    slice_set.clear()
    slice_set.update(rebuild(jumps))


def agrawal_slice(
    analysis: ProgramAnalysis,
    criterion: SlicingCriterion,
    drive_tree: str = "postdominator",
    prune_redundant: bool = False,
    explain: Optional[List[str]] = None,
) -> SliceResult:
    """Slice with the paper's Fig. 7 algorithm.

    Parameters
    ----------
    drive_tree:
        ``"postdominator"`` (paper default) or ``"lexical"`` — which
        tree's pre-order drives the per-traversal examination order.
    prune_redundant:
        The algorithm examines jumps in pre-order, but the paper leaves
        *sibling* order unspecified — and this reproduction found that
        the choice can matter (erratum E2, EXPERIMENTS.md): a jump
        examined before the slice has grown may pass the npd ≠ nls test
        and be added, even though at the fixed point the test no longer
        holds; the algorithm never removes jumps.  The result is a
        superset of the Ball–Horwitz slice, differing only by such
        redundant no-op jumps, and remains semantically correct.  With
        ``prune_redundant=True`` a post-pass repeatedly removes added
        jumps whose nearest postdominator and lexical successor in the
        remaining slice coincide — sound by the paper's own omission
        criterion — which restores exact Ball–Horwitz equality on every
        program we have tested.
    explain:
        Pass a list to collect a human-readable narration of the run —
        one line per jump examination with its nearest-postdominator /
        nearest-lexical-successor verdict, in the style of the paper's
        §3 walkthroughs.
    """
    if drive_tree == "postdominator":
        order_tree = analysis.pdt
    elif drive_tree == "lexical":
        order_tree = analysis.lst
    else:
        raise SliceError(
            f"unknown drive_tree {drive_tree!r}; expected "
            "'postdominator' or 'lexical'"
        )

    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    with trace_span("conventional-base"):
        slice_set: Set[int] = conventional_base(analysis, resolved)
    base = frozenset(slice_set)
    if explain is not None:
        members = sorted(
            n for n in base if cfg.nodes[n].stmt is not None
        )
        explain.append(
            f"conventional slice w.r.t. {criterion}: {members}"
        )

    # ``traversals`` counts *productive* traversals — ones that added at
    # least one jump — matching the paper's usage ("a single traversal
    # ... was sufficient", "node 4 is added ... during the second
    # preorder traversal").  The final, confirming pass is not counted.
    traversals = 0
    rounds = 0
    while True:
        rounds += 1
        if rounds > MAX_TRAVERSALS:
            raise AssertionError(
                "Fig. 7 fixed point failed to converge; this is a bug"
            )
        # One cooperative budget round per traversal: the request-scoped
        # deadline / traversal cap (if any) is enforced here, so a hard
        # program raises BudgetExceededError instead of running long.
        budget_round("fig7-traversal")
        added_jump = False
        jumps_examined = 0
        jumps_added = 0
        with trace_span("fig7-traversal", round=rounds) as round_span:
            for node_id in order_tree.preorder():
                node = cfg.nodes.get(node_id)
                if node is None or not node.is_jump or node_id in slice_set:
                    continue
                budget_tick("fig7-jump")
                jumps_examined += 1
                npd = nearest_in_slice(
                    analysis.pdt, node_id, slice_set, cfg.exit_id
                )
                nls = nearest_in_slice(
                    analysis.lst, node_id, slice_set, cfg.exit_id
                )
                if npd != nls:
                    closure = analysis.pdg.backward_closure([node_id])
                    if explain is not None:
                        brought = sorted(
                            n
                            for n in closure - slice_set - {node_id}
                            if cfg.nodes[n].stmt is not None
                        )
                        extra = f"; closure adds {brought}" if brought else ""
                        explain.append(
                            f"traversal {traversals + 1}: jump {node_id} "
                            f"({node.text!r}, line {node.line}) — nearest "
                            f"postdominator in slice {npd} != nearest lexical "
                            f"successor in slice {nls}: INCLUDE{extra}"
                        )
                    slice_set.add(node_id)
                    slice_set |= closure
                    added_jump = True
                    jumps_added += 1
                elif explain is not None:
                    explain.append(
                        f"traversal {traversals + 1}: jump {node_id} "
                        f"({node.text!r}, line {node.line}) — both nearest "
                        f"postdominator and lexical successor in slice are "
                        f"{npd}: skip"
                    )
            round_span.set(
                jumps_examined=jumps_examined, jumps_added=jumps_added
            )
        if not added_jump:
            break
        traversals += 1

    if prune_redundant:
        before = frozenset(slice_set)
        with trace_span("fig7-prune") as prune_span:
            _prune_redundant_jumps(analysis, slice_set, base)
            prune_span.set(removed=len(before - slice_set))
        if explain is not None and before != frozenset(slice_set):
            removed = sorted(before - slice_set)
            explain.append(f"prune: removed redundant nodes {removed}")

    nodes = frozenset(slice_set)
    label_map = reassociate_labels(analysis, nodes)
    if explain is not None:
        for label, node_id in sorted(label_map.items()):
            explain.append(
                f"label {label}: target not in slice; re-associated with "
                f"its nearest postdominator in the slice, node {node_id}"
            )
        final = sorted(
            n for n in nodes if cfg.nodes[n].stmt is not None
        )
        explain.append(
            f"final slice after {traversals} productive traversal(s): "
            f"{final}"
        )
    return SliceResult(
        algorithm="agrawal" if not prune_redundant else "agrawal-pruned",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=traversals,
        label_map=label_map,
    )
