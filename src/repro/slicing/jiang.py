"""A reconstruction of the Jiang–Zhou–Robson rules (paper §5,
reference [18]).

Agrawal reports only that their rule set "fail[s] to identify all
relevant jump statements — for example, they will fail to include both
jump statements on lines 11 and 13 in the slice in Figure 8"; the rules
themselves are not reproduced and the original paper is not available to
this reproduction.  We therefore implement a documented reconstruction
chosen to exhibit exactly the reported behaviour (see DESIGN.md,
"Substitutions"):

    include a jump statement J when the statement that immediately
    lexically succeeds J is in the slice (J "guards" entry into slice
    code), together with the closure of J's dependences; iterate to a
    fixed point.

On Fig. 8 this includes the goto on line 7 (its successor, line 8, is in
the slice) but misses lines 11 and 13 (their successors, lines 12 and
14, are not) — matching the paper's report.  The reconstruction is a
*baseline for comparison*, not a faithful reimplementation of the 1991
rules.
"""

from __future__ import annotations

from typing import Set

from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult, conventional_base, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


def jiang_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Slice with the Jiang–Zhou–Robson reconstruction."""
    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    slice_set: Set[int] = conventional_base(analysis, resolved)

    changed = True
    while changed:
        changed = False
        for jump in cfg.jump_nodes():
            if jump.id in slice_set:
                continue
            successor = cfg.lexical_parent.get(jump.id, cfg.exit_id)
            if successor in slice_set:
                slice_set.add(jump.id)
                slice_set |= analysis.pdg.backward_closure([jump.id])
                changed = True

    nodes = frozenset(slice_set)
    return SliceResult(
        algorithm="jiang",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map=reassociate_labels(analysis, nodes),
    )
