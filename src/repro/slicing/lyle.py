"""Lyle's conservative jump treatment (paper §5, reference [22]).

The paper characterises Lyle's 1984 algorithm behaviourally: "Suppose a
statement, S, is included in a slice with respect to a variable, var, and
a location, loc ...  Then, except in certain degenerate cases, Lyle's
algorithm will include all jump statements that lie between S and loc in
the control flowgraph of the program, in the slice."

We implement that description literally: a jump J joins the slice when
some already-included statement reaches J in the CFG and J reaches the
criterion node — i.e. J lies on a potential path from slice code to the
criterion.  Each added jump brings the closure of its dependences along
(its controlling predicates must appear for the slice to be executable),
and the process iterates to a fixed point because those additions widen
the "some included statement" side.

The paper's two calibration points, both reproduced by the tests:

* on Fig. 5 it includes the ``continue`` on line 11 — and therefore the
  predicate on line 9 — which none of Agrawal's algorithms include;
* on Fig. 3 it includes *all* goto statements and all predicates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.cfg.graph import NodeKind
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.service.resilience import budget_round
from repro.slicing.common import SliceResult, conventional_base, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


def lyle_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Slice with the reconstruction of Lyle's algorithm."""
    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    with trace_span("conventional-base"):
        slice_set: Set[int] = conventional_base(analysis, resolved)
    criterion_node = resolved.node_id

    reach_cache: Dict[int, FrozenSet[int]] = {}

    def reachable(start: int) -> FrozenSet[int]:
        if start not in reach_cache:
            reach_cache[start] = cfg.reachable_from(start)
        return reach_cache[start]

    jumps = [node.id for node in cfg.jump_nodes()]
    with trace_span("lyle-fixed-point") as span:
        rounds = 0
        jumps_added = 0
        changed = True
        while changed:
            rounds += 1
            budget_round("lyle-fixed-point")
            changed = False
            for jump_id in jumps:
                if jump_id in slice_set:
                    continue
                if criterion_node not in reachable(jump_id):
                    continue
                feeds = any(
                    jump_id in reachable(member)
                    for member in slice_set
                    if cfg.nodes[member].kind
                    not in (NodeKind.ENTRY, NodeKind.EXIT)
                )
                if feeds:
                    slice_set.add(jump_id)
                    slice_set |= analysis.pdg.backward_closure([jump_id])
                    changed = True
                    jumps_added += 1
        span.set(rounds=rounds, jumps_added=jumps_added)

    nodes = frozenset(slice_set)
    return SliceResult(
        algorithm="lyle",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map=reassociate_labels(analysis, nodes),
    )
