"""Program slicing algorithms — the paper's contribution and every
baseline it compares against.

The core entry points:

* :func:`slice_program` — one-call convenience: source text + criterion
  + algorithm name → :class:`SliceResult`.
* :func:`agrawal_slice` — the paper's general Fig. 7 algorithm.
* :func:`structured_slice` / :func:`conservative_slice` — the Fig. 12 and
  Fig. 13 simplifications for structured programs.
* :func:`conventional_slice` — classic PDG reachability (incorrect in the
  presence of jumps; the paper's baseline).
* :func:`ball_horwitz_slice`, :func:`lyle_slice`,
  :func:`gallagher_slice`, :func:`jiang_slice`, :func:`weiser_slice` —
  related-work baselines (§5).
* :func:`extract_slice` / :func:`extract_source` — materialise a slice
  as a runnable program.
"""

from typing import Union

from repro.lang.ast_nodes import Program
from repro.pdg.builder import ProgramAnalysis, analyze_program
from repro.slicing.agrawal import agrawal_slice
from repro.slicing.ball_horwitz import ball_horwitz_slice
from repro.slicing.common import SliceResult, nearest_in_slice, reassociate_labels
from repro.slicing.conservative import conservative_slice
from repro.slicing.conventional import conventional_slice
from repro.slicing.criterion import (
    ResolvedCriterion,
    SlicingCriterion,
    resolve_criterion,
)
from repro.slicing.extract import (
    ExtractedSlice,
    extract_interprocedural,
    extract_interprocedural_source,
    extract_slice,
    extract_source,
)
from repro.slicing.forward import chop, forward_slice
from repro.slicing.gallagher import gallagher_slice
from repro.slicing.jiang import jiang_slice
from repro.slicing.lyle import lyle_slice
from repro.slicing.registry import (
    ALGORITHMS,
    CORRECT_GENERAL,
    CORRECT_STRUCTURED,
    algorithm_names,
    get_algorithm,
)
from repro.slicing.structured import structured_slice
from repro.slicing.weiser import weiser_slice


def slice_program(
    source_or_analysis: Union[str, Program, ProgramAnalysis],
    line: int,
    var: str,
    algorithm: str = "agrawal",
) -> SliceResult:
    """Slice a program with respect to ``(var, line)``.

    Accepts SL source text, a parsed :class:`Program`, or a prebuilt
    :class:`ProgramAnalysis` (reuse one when slicing the same program
    repeatedly).
    """
    if isinstance(source_or_analysis, ProgramAnalysis):
        analysis = source_or_analysis
    else:
        analysis = analyze_program(source_or_analysis)
    slicer = get_algorithm(algorithm)
    return slicer(analysis, SlicingCriterion(line=line, var=var))


__all__ = [
    "ALGORITHMS",
    "CORRECT_GENERAL",
    "CORRECT_STRUCTURED",
    "ExtractedSlice",
    "ResolvedCriterion",
    "SliceResult",
    "SlicingCriterion",
    "agrawal_slice",
    "algorithm_names",
    "ball_horwitz_slice",
    "chop",
    "conservative_slice",
    "conventional_slice",
    "extract_interprocedural",
    "extract_interprocedural_source",
    "extract_slice",
    "forward_slice",
    "extract_source",
    "gallagher_slice",
    "get_algorithm",
    "jiang_slice",
    "lyle_slice",
    "nearest_in_slice",
    "reassociate_labels",
    "resolve_criterion",
    "slice_program",
    "structured_slice",
    "weiser_slice",
]
