"""Forward slicing — impact analysis (extension beyond the paper).

The backward slice answers "what could have affected this value?"; the
forward slice answers the maintenance question from the paper's §1
application list: "what could this statement affect?" — the statements
whose computation or execution may change if the criterion statement is
edited.

Jump statements need the same care forwards as backwards: in the plain
PDG nothing depends on a jump, so editing/removing a `goto` would appear
to impact nothing.  We therefore compute the forward closure over the
**augmented** PDG (Ball–Horwitz direction works out of the box here,
since the closure follows dependence edges forwards and the augmented
control-dependence edges out of jumps are exactly what encodes their
influence).  A plain-PDG variant is kept for comparison/ablation.
"""

from __future__ import annotations

from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult
from repro.slicing.criterion import (
    SlicingCriterion,
    resolve_criterion,
)


def forward_slice(
    analysis: ProgramAnalysis,
    criterion: SlicingCriterion,
    use_augmented: bool = True,
) -> SliceResult:
    """Statements potentially affected by the criterion statement.

    Seeds are the criterion node plus — when the criterion names a
    variable the node merely uses — the definitions of that variable
    reaching it (editing the observed value means editing those).

    With ``use_augmented=True`` (default) the closure runs over the
    augmented PDG so the influence of unconditional jumps is tracked;
    with ``False`` it runs over the plain PDG (jumps then influence
    nothing — the forward analogue of the paper's §3 observation).
    """
    resolved = resolve_criterion(analysis, criterion)
    pdg = analysis.augmented_pdg if use_augmented else analysis.pdg
    nodes = frozenset(pdg.forward_closure(resolved.seeds))
    return SliceResult(
        algorithm="forward" if use_augmented else "forward-plain",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map={},
    )


def chop(
    analysis: ProgramAnalysis,
    source: SlicingCriterion,
    target: SlicingCriterion,
    use_augmented: bool = True,
) -> SliceResult:
    """A program chop: the statements through which *source* can
    influence *target* — forward slice of the source intersected with
    the backward slice of the target.

    The classic debugging query "how does the value read here end up in
    the value printed there?".  Backward reachability uses the same PDG
    variant as the forward side so the two closures compose.
    """
    source_resolved = resolve_criterion(analysis, source)
    target_resolved = resolve_criterion(analysis, target)
    pdg = analysis.augmented_pdg if use_augmented else analysis.pdg
    forwards = pdg.forward_closure(source_resolved.seeds)
    backwards = pdg.backward_closure(target_resolved.seeds)
    nodes = frozenset(forwards & backwards)
    return SliceResult(
        algorithm="chop",
        resolved=target_resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map={},
        notes=[f"chop source: {source}"],
    )
