"""Extraction: turn a slice (a set of CFG nodes) back into a runnable
SL program.

Rules (DESIGN.md §4):

* a simple statement or jump is kept iff its node is in the slice;
* a compound statement is kept iff its predicate node is in the slice
  (dependence closure guarantees no orphaned body statements — asserted);
* an ``if`` whose kept branch list is empty renders as ``;`` on that
  side; an ``else`` with nothing left disappears;
* statement labels survive only if some retained goto still targets
  them; *re-associated* labels (the slicer's ``label_map``) are emitted
  as labelled empty statements ``L: ;`` immediately before the statement
  they were re-associated to — the paper prints these as bare labels on
  their own line (``L14`` in Fig. 3c, ``L6``/``L8`` in Fig. 10b);
* a switch arm whose statements are all dropped is removed; its ``case``
  labels are re-associated, exactly like goto labels, to the arm
  containing the nearest in-slice postdominator of the dropped arm's
  entry — if that lands outside the switch the arm vanishes (an empty
  arm must not be kept: it would fall through into the next arm, which
  the original only did on the paths the slicer just proved irrelevant).

The extractor deep-copies every retained statement and returns a mapping
from original to copied statements so callers (the semantic-correctness
oracle in particular) can find the criterion statement inside the
extracted program.

Known approximation: a re-associated label that lands on the *test* node
of a ``do``-``while`` is emitted before the whole loop, which enters the
body first rather than the test.  SL programs mixing ``goto`` into
``do``-``while`` headers can observe the difference; none of the paper's
programs (nor the generator's) do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cfg.graph import ControlFlowGraph, NodeKind
from repro.lang.ast_nodes import (
    MAIN_UNIT,
    Assign,
    Block,
    Break,
    CallStmt,
    Continue,
    DoWhile,
    For,
    Goto,
    If,
    ProcDecl,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Switch,
    SwitchCase,
    While,
    Write,
    walk_statements,
)
from repro.lang.errors import SliceError
from repro.obs.tracer import trace_span
from repro.slicing.common import SliceResult


@dataclass
class ExtractedSlice:
    """The extracted program plus provenance.

    ``stmt_map`` maps ``id(original statement)`` to the copied statement
    in the extracted program (only for retained statements).
    """

    program: Program
    stmt_map: Dict[int, Stmt] = field(default_factory=dict)

    def find(self, original: Stmt) -> Optional[Stmt]:
        return self.stmt_map.get(id(original))


class _Extractor:
    def __init__(self, result: SliceResult) -> None:
        self.result = result
        self.analysis = result.analysis
        self.cfg: ControlFlowGraph = result.analysis.cfg
        self.slice_nodes = set(result.nodes)
        self.label_map = dict(result.label_map)
        self.stmt_map: Dict[int, Stmt] = {}
        # Labels still needed: targets of retained (cond)gotos that were
        # NOT re-associated.
        self.needed_labels: Set[str] = set()
        for node_id in self.slice_nodes:
            node = self.cfg.nodes.get(node_id)
            if (
                node is not None
                and node.goto_target is not None
                and node.goto_target not in self.label_map
            ):
                self.needed_labels.add(node.goto_target)
        # Dangling labels to emit before a given node's statement.
        self.labels_by_node: Dict[int, List[str]] = {}
        for label, node_id in sorted(self.label_map.items()):
            self.labels_by_node.setdefault(node_id, []).append(label)

    # ------------------------------------------------------------------

    def run(self) -> ExtractedSlice:
        body = self._copy_sequence(self.result.analysis.program.body)
        # Labels re-associated to EXIT land after the last statement.
        for label in self.labels_by_node.get(self.cfg.exit_id, []):
            body.append(Skip(label=label))
        return ExtractedSlice(program=Program(body=body), stmt_map=self.stmt_map)

    def _copy_sequence(self, stmts: List[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            out.extend(self._copy_statement(stmt))
        return out

    def _kept_label(self, stmt: Stmt) -> Optional[str]:
        if stmt.label is not None and stmt.label in self.needed_labels:
            return stmt.label
        return None

    def _dangling_before(self, node_id: int) -> List[Stmt]:
        return [
            Skip(label=label)
            for label in self.labels_by_node.get(node_id, [])
        ]

    def _retained(self, node_id: int) -> bool:
        return node_id in self.slice_nodes

    def _assert_no_orphans(self, stmt: Stmt) -> None:
        """A dropped compound must contain no retained statements —
        dependence closure guarantees it; a violation means the slicer
        produced an inconsistent node set."""
        for inner in walk_statements(stmt):
            if self.cfg.has_node_for(inner) and self._retained(
                self.cfg.node_of(inner)
            ):
                raise SliceError(
                    f"inconsistent slice: statement at line {inner.line} is "
                    f"in the slice but its enclosing construct at line "
                    f"{stmt.line} is not"
                )

    # ------------------------------------------------------------------

    def _copy_statement(self, stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, Block):
            inner = self._copy_sequence(stmt.stmts)
            if not inner:
                return []
            return [Block(line=stmt.line, label=self._kept_label(stmt), stmts=inner)]

        node_id = self.cfg.node_of(stmt)
        if isinstance(stmt, CallStmt) and not self._retained(node_id):
            # Normalise: a call whose parameter chain intersects the
            # slice is retained (the SDG's call-control edges guarantee
            # this for slicer output; arbitrary node sets may not).
            chain = getattr(self.cfg, "call_chains", {}).get(node_id, ())
            if any(member in self.slice_nodes for member in chain):
                self.slice_nodes.add(node_id)
        if not self._retained(node_id):
            if isinstance(stmt, Switch):
                return self._hoist_dropped_switch(stmt, node_id)
            self._assert_no_orphans(stmt)
            # Even a dropped statement may carry a re-associated label
            # pointing at *another* node; those are handled at that node.
            return []

        prefix = self._dangling_before(node_id)
        copied = self._copy_retained(stmt, node_id)
        self.stmt_map[id(stmt)] = copied
        return prefix + [copied]

    def _copy_retained(self, stmt: Stmt, node_id: int) -> Stmt:
        label = self._kept_label(stmt)
        if isinstance(stmt, Skip):
            return Skip(line=stmt.line, label=label)
        if isinstance(stmt, Assign):
            return Assign(
                line=stmt.line, label=label, target=stmt.target, value=stmt.value
            )
        if isinstance(stmt, Read):
            return Read(line=stmt.line, label=label, target=stmt.target)
        if isinstance(stmt, Write):
            return Write(line=stmt.line, label=label, value=stmt.value)
        if isinstance(stmt, Break):
            return Break(line=stmt.line, label=label)
        if isinstance(stmt, Continue):
            return Continue(line=stmt.line, label=label)
        if isinstance(stmt, Return):
            return Return(line=stmt.line, label=label, value=stmt.value)
        if isinstance(stmt, Goto):
            return Goto(line=stmt.line, label=label, target=stmt.target)
        if isinstance(stmt, CallStmt):
            return CallStmt(
                line=stmt.line, label=label, name=stmt.name,
                args=list(stmt.args),
            )
        if isinstance(stmt, If):
            return self._copy_if(stmt, node_id, label)
        if isinstance(stmt, While):
            body = self._copy_branch(stmt.body)
            return While(line=stmt.line, label=label, cond=stmt.cond, body=body)
        if isinstance(stmt, DoWhile):
            body = self._copy_branch(stmt.body)
            return DoWhile(line=stmt.line, label=label, body=body, cond=stmt.cond)
        if isinstance(stmt, For):
            return self._copy_for(stmt, label)
        if isinstance(stmt, Switch):
            return self._copy_switch(stmt, label)
        raise TypeError(f"unknown statement node: {stmt!r}")

    def _copy_if(self, stmt: If, node_id: int, label: Optional[str]) -> Stmt:
        node = self.cfg.nodes[node_id]
        if node.kind is NodeKind.CONDGOTO:
            goto = stmt.then_branch
            # The fused goto is retained with its if; map it too so
            # criterion lookups inside fused statements work.
            new_goto = Goto(line=goto.line, target=goto.target)
            self.stmt_map[id(goto)] = new_goto
            return If(
                line=stmt.line, label=label, cond=stmt.cond,
                then_branch=new_goto, else_branch=None,
            )
        then_branch = self._copy_branch(stmt.then_branch)
        else_branch: Optional[Stmt] = None
        if stmt.else_branch is not None:
            else_list = self._copy_statement(stmt.else_branch)
            else_branch = self._pack_branch(else_list, stmt.else_branch)
            if isinstance(else_branch, Skip) and else_branch.label is None:
                else_branch = None  # nothing left on the else side
        return If(
            line=stmt.line,
            label=label,
            cond=stmt.cond,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _copy_branch(self, branch: Optional[Stmt]) -> Stmt:
        """Copy a loop/if body, collapsing to ``;`` when empty."""
        if branch is None:
            return Skip()
        copied = self._copy_statement(branch)
        return self._pack_branch(copied, branch)

    @staticmethod
    def _pack_branch(copied: List[Stmt], original: Stmt) -> Stmt:
        if not copied:
            return Skip()
        if len(copied) == 1:
            return copied[0]
        # Dangling-label prefixes can turn one statement into several.
        return Block(stmts=copied)

    def _copy_for(self, stmt: For, label: Optional[str]) -> Stmt:
        init = None
        if stmt.init is not None and self._retained(self.cfg.node_of(stmt.init)):
            init_list = self._copy_statement(stmt.init)
            init = init_list[0] if init_list else None
        step = None
        if stmt.step is not None and self._retained(self.cfg.node_of(stmt.step)):
            step_list = self._copy_statement(stmt.step)
            step = step_list[0] if step_list else None
        body = self._copy_branch(stmt.body)
        return For(
            line=stmt.line, label=label, init=init, cond=stmt.cond,
            step=step, body=body,
        )

    def _hoist_dropped_switch(self, stmt: Switch, node_id: int) -> List[Stmt]:
        """Extract retained statements from a switch whose subject is not
        in the slice.

        This is legitimate (unlike for if/while/do-while): a statement in
        the switch's fall-through *tail* — reached by every arm, e.g. a
        shared ``default`` suffix — postdominates the switch and so is
        not control dependent on it.  All such retained statements lie on
        the switch's postdominator spine, execute exactly once per switch
        entry, in lexical order; emitting them in sequence in place of
        the switch preserves semantics.  A retained statement that does
        *not* postdominate the switch really is an inconsistency.
        """
        def check_spine(stmts: List[Stmt]) -> None:
            # Only the arm-level retained statements must postdominate
            # the switch; statements nested under them are governed by
            # those (and dropped nested compounds assert their own
            # consistency during copying).
            for inner in stmts:
                if isinstance(inner, Block):
                    check_spine(inner.stmts)
                    continue
                inner_id = self.cfg.node_of(inner)
                if self._retained(inner_id) and not (
                    self.analysis.pdt.is_ancestor(inner_id, node_id)
                ):
                    raise SliceError(
                        f"inconsistent slice: statement at line "
                        f"{inner.line} is in the slice but does not "
                        "postdominate its dropped enclosing switch at "
                        f"line {stmt.line}"
                    )

        hoisted: List[Stmt] = []
        for case in stmt.cases:
            check_spine(case.stmts)
            hoisted.extend(self._copy_sequence(case.stmts))
        return hoisted

    # ------------------------------------------------------------------
    # Switch handling, including case-label re-association.
    # ------------------------------------------------------------------

    def _arm_entry_node(self, stmt: Switch, index: int) -> Optional[int]:
        """The CFG node control reaches when the switch dispatches to arm
        *index* (following fall-through past empty arms)."""
        for case in stmt.cases[index:]:
            for inner in case.stmts:
                return self.cfg.entry_of(inner)
        return None  # falls straight out of the switch

    def _copy_switch(self, stmt: Switch, label: Optional[str]) -> Stmt:
        copied_arms: List[Optional[SwitchCase]] = []
        arm_nodes: List[Set[int]] = []
        for case in stmt.cases:
            nodes: Set[int] = set()
            for inner in case.stmts:
                for walked in walk_statements(inner):
                    if self.cfg.has_node_for(walked):
                        nodes.add(self.cfg.node_of(walked))
            arm_nodes.append(nodes)
            kept = self._copy_sequence(case.stmts)
            if kept:
                copied_arms.append(
                    SwitchCase(matches=list(case.matches), stmts=kept, line=case.line)
                )
            else:
                copied_arms.append(None)

        # Re-associate the case labels of dropped arms.
        for index, case in enumerate(stmt.cases):
            if copied_arms[index] is not None:
                continue
            entry = self._arm_entry_node(stmt, index)
            if entry is None:
                continue
            target = entry
            if target not in self.slice_nodes:
                target = self._nearest_postdom_in_slice(entry)
            home = self._arm_containing(target, arm_nodes, copied_arms)
            if home is not None:
                copied_arms[home].matches = (
                    list(case.matches) + copied_arms[home].matches
                )

        final_arms = [arm for arm in copied_arms if arm is not None]
        return Switch(
            line=stmt.line, label=label, subject=stmt.subject, cases=final_arms
        )

    def _nearest_postdom_in_slice(self, node_id: int) -> int:
        from repro.slicing.common import nearest_in_slice

        return nearest_in_slice(
            self.analysis.pdt, node_id, self.slice_nodes, self.cfg.exit_id
        )

    @staticmethod
    def _arm_containing(
        node_id: int,
        arm_nodes: List[Set[int]],
        copied_arms: List[Optional[SwitchCase]],
    ) -> Optional[int]:
        for index, nodes in enumerate(arm_nodes):
            if node_id in nodes and copied_arms[index] is not None:
                return index
        return None


def extract_slice(result: SliceResult) -> ExtractedSlice:
    """Materialise *result* as a runnable SL program (see module
    docstring for the rules)."""
    with trace_span("extract", nodes=len(result.nodes)):
        return _Extractor(result).run()


@dataclass
class _NodeSelection:
    """The minimal view the extractor needs — lets non-slicer callers
    (dead-code elimination, say) reuse extraction for any node set."""

    analysis: object
    nodes: frozenset
    label_map: Dict[str, int]


def extract_nodes(analysis, nodes, label_map: Optional[Dict[str, int]] = None) -> ExtractedSlice:
    """Extract an arbitrary retained-node set as a runnable program.

    The set must satisfy the same consistency rules as a slice (a kept
    statement's enclosing compounds kept, modulo the switch-hoisting
    case).  When *label_map* is None, dangling labels are re-associated
    with :func:`repro.slicing.common.reassociate_labels`.
    """
    from repro.slicing.common import reassociate_labels

    node_set = frozenset(nodes)
    if label_map is None:
        label_map = reassociate_labels(analysis, node_set)
    selection = _NodeSelection(
        analysis=analysis, nodes=node_set, label_map=dict(label_map)
    )
    return _Extractor(selection).run()


def extract_source(result: SliceResult) -> str:
    """The extracted slice as pretty-printed SL source."""
    from repro.lang.pretty import pretty

    return pretty(extract_slice(result).program)


def _normalise_unit_labels(analysis, label_map: Dict[str, int]) -> Dict[str, int]:
    """Re-home re-associated labels that landed on synthetic SDG nodes:
    a label on a parameter-chain node belongs before the call statement;
    one on the formal-out prelude belongs at procedure exit."""
    cfg = analysis.cfg
    chain_owner: Dict[int, int] = {}
    for call_id, chain in getattr(cfg, "call_chains", {}).items():
        for member in chain:
            chain_owner[member] = call_id
    prelude = set(getattr(cfg, "formal_outs", ()))
    out: Dict[str, int] = {}
    for label, target in label_map.items():
        if target in chain_owner:
            out[label] = chain_owner[target]
        elif target in prelude:
            out[label] = cfg.exit_id
        else:
            out[label] = target
    return out


def extract_interprocedural(sdg_result) -> ExtractedSlice:
    """Materialise an interprocedural slice (DESIGN.md §12) as one
    runnable SL program.

    Each unit with retained vertices is extracted against its own
    unit-view analysis; procedures with no vertex in the slice are
    dropped entirely (their calls are necessarily outside the slice
    too, so the program stays closed).  Parameter lists are kept whole:
    the slice narrows bodies, not interfaces.
    """
    sdg = sdg_result.sdg
    stmt_map: Dict[int, Stmt] = {}
    main_body: List[Stmt] = []
    procs: List[ProcDecl] = []
    with trace_span("extract-sdg", units=len(sdg_result.per_proc)):
        for unit, info in sdg.procs.items():
            nodes = sdg_result.per_proc.get(unit)
            if not nodes:
                continue
            label_map = _normalise_unit_labels(
                info.analysis, dict(sdg_result.label_maps.get(unit, {}))
            )
            extracted = extract_nodes(info.analysis, nodes, label_map=label_map)
            stmt_map.update(extracted.stmt_map)
            if unit == MAIN_UNIT:
                main_body = extracted.program.body
            else:
                decl = sdg.program.proc_named(unit)
                procs.append(
                    ProcDecl(
                        name=unit,
                        params=list(decl.params),
                        body=extracted.program.body,
                        line=decl.line,
                    )
                )
    return ExtractedSlice(
        program=Program(body=main_body, procs=procs), stmt_map=stmt_map
    )


def extract_interprocedural_source(sdg_result) -> str:
    """An interprocedural slice as pretty-printed SL source."""
    from repro.lang.pretty import pretty

    return pretty(extract_interprocedural(sdg_result).program)
