"""Weiser's dataflow-equation slicer (paper §5, reference [29]).

Weiser computed slices by iterating two dataflow equations rather than by
graph reachability: *directly relevant variables* propagate backwards
from the criterion, statements defining a relevant variable enter the
slice, *relevant branch statements* (those whose range of influence
touches the slice) contribute their referenced variables as new criteria,
and the process repeats until no new branch statement appears.

As the paper notes, Weiser's algorithm finds the right *predicates* even
in the presence of jumps but never includes the jump statements
themselves — just like the conventional PDG algorithm.  Experiment C5
checks the two compute identical statement sets.

Implementation notes:

* relevance flows along reversed CFG edges; the transfer at node *i* for
  the set arriving from below is ``(R − DEF(i)) ∪ (REF(i) if DEF(i)∩R)``;
* the criterion contributes its variables at the criterion node (and
  each relevant-branch iteration contributes ``REF(b)`` at *b*);
* the "range of influence" INFL(b) is the set of statements directly
  control dependent on *b*; the outer iteration supplies transitivity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


def _relevant_variables(
    cfg: ControlFlowGraph, criteria: List[Tuple[int, FrozenSet[str]]]
) -> Dict[int, FrozenSet[str]]:
    """Solve the directly-relevant-variables equations for a set of
    (node, variables) criteria.

    Returns, for each node, the variables relevant *on entry to* that
    node (i.e. before it executes).
    """
    relevant: Dict[int, FrozenSet[str]] = {n: frozenset() for n in cfg.nodes}
    seeded: Dict[int, FrozenSet[str]] = {n: frozenset() for n in cfg.nodes}
    for node_id, variables in criteria:
        seeded[node_id] |= variables

    worklist = deque(sorted(cfg.nodes))
    queued = set(worklist)
    while worklist:
        node_id = worklist.popleft()
        queued.discard(node_id)
        node = cfg.nodes[node_id]
        # Variables relevant just after this node: union over successors
        # of what is relevant at their entry.
        after: FrozenSet[str] = frozenset()
        for succ in cfg.succ_ids(node_id):
            after |= relevant[succ]
        before = after - node.defs
        if node.defs & after:
            before |= node.uses
        before |= seeded[node_id]
        if before != relevant[node_id]:
            relevant[node_id] = before
            for pred in cfg.pred_ids(node_id):
                if pred not in queued:
                    queued.add(pred)
                    worklist.append(pred)
    return relevant


def weiser_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Slice with Weiser's iterative dataflow-equation method."""
    resolved = resolve_criterion(analysis, criterion)
    cfg = analysis.cfg
    crit_node = resolved.node_id
    crit_vars = frozenset({criterion.var})

    criteria: List[Tuple[int, FrozenSet[str]]] = [(crit_node, crit_vars)]
    branch_statements: Set[int] = set()

    while True:
        relevant = _relevant_variables(cfg, criteria)
        statements: Set[int] = set()
        for node in cfg.sorted_nodes():
            after: FrozenSet[str] = frozenset()
            for succ in cfg.succ_ids(node.id):
                after |= relevant[succ]
            if node.defs & after:
                statements.add(node.id)
        statements.add(crit_node)
        statements |= branch_statements

        new_branches: Set[int] = set()
        for node in cfg.sorted_nodes():
            if node.id in branch_statements:
                continue
            influence = analysis.cdg.children_of(node.id)
            if any(member in statements for member in influence):
                new_branches.add(node.id)
        if not new_branches:
            nodes = frozenset(statements)
            return SliceResult(
                algorithm="weiser",
                resolved=resolved,
                nodes=nodes,
                analysis=analysis,
                traversals=0,
                label_map=reassociate_labels(analysis, nodes),
            )
        branch_statements |= new_branches
        for branch in sorted(new_branches):
            criteria.append((branch, frozenset(cfg.nodes[branch].uses)))
