"""The Ball–Horwitz / Choi–Ferrante baseline: conventional slicing over
the *augmented* program dependence graph (paper §1, §5).

Control dependence is computed from the augmented flowgraph (every
unconditional jump gains a never-taken edge to its immediate lexical
successor, making it a pseudo-predicate), while data dependence comes
from the plain flowgraph.  Plain backward reachability over the merged
graph then picks up exactly the jumps that matter.

The paper proves its Fig. 7 algorithm equivalent to this one ("a
statement is included in a slice by this algorithm iff it is included in
the corresponding slice obtained using Ball and Horwitz's algorithm");
experiment C1 checks that equivalence on the corpus and on thousands of
random programs.
"""

from __future__ import annotations

from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult, reassociate_labels
from repro.slicing.criterion import SlicingCriterion, resolve_criterion


def ball_horwitz_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Slice by backward reachability over the augmented PDG."""
    resolved = resolve_criterion(analysis, criterion)
    with trace_span("augmented-closure"):
        nodes = frozenset(
            analysis.augmented_pdg.backward_closure(resolved.seeds)
        )
    return SliceResult(
        algorithm="ball-horwitz",
        resolved=resolved,
        nodes=nodes,
        analysis=analysis,
        traversals=0,
        label_map=reassociate_labels(analysis, nodes),
    )
