"""Structured tracing: nested spans and span events, zero dependencies.

One :class:`Tracer` records one request (or one CLI invocation) as a
tree of :class:`Span`\\ s — each a named, timed interval with optional
attributes — plus point-in-time :class:`SpanEvent`\\ s (budget
exhaustion, degradation, shedding, fault injection).  The pipeline and
service code never hold a tracer; they call the module-level
:func:`trace_span` / :func:`trace_event`, which consult a
``contextvars.ContextVar`` — the same request-scoped pattern as
:class:`repro.service.resilience.Budget` — and are near-free no-ops
when no tracer is installed (no allocation: a shared null context
manager is returned).

Like a ``Budget``, one tracer belongs to one request on one thread; the
engine creates one per traced request inside the worker, so pool
fan-out never shares a span stack.

This module deliberately imports **nothing** from :mod:`repro` — it
sits at the very bottom of the dependency order so every layer
(``analysis``, ``slicing``, ``service``, ``lint``) may instrument
itself without cycles.

Export formats live next door: :func:`chrome_trace` renders the
``chrome://tracing`` / Perfetto trace-event JSON, :func:`summary_table`
a per-phase text table, and :func:`phase_totals` the aggregate the
service feeds into its per-phase latency histograms.
"""

from __future__ import annotations

import json
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "trace_span",
    "trace_event",
    "chrome_trace",
    "dump_chrome_trace",
    "summary_table",
    "phase_totals",
    "span_tree",
]


class SpanEvent:
    """A point-in-time annotation inside a span (``ph: "i"`` in the
    Chrome trace-event format)."""

    __slots__ = ("name", "ts_ns", "args")

    def __init__(self, name: str, ts_ns: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.ts_ns = ts_ns
        self.args = args


class Span:
    """One named, timed interval in the trace tree.

    ``dur_ns`` is ``None`` while the span is open; :class:`Tracer`
    always closes spans (the context manager's ``finally``), including
    on the error paths, in which case ``error`` records the exception
    type name.
    """

    __slots__ = (
        "name",
        "start_ns",
        "dur_ns",
        "args",
        "children",
        "events",
        "error",
    )

    def __init__(self, name: str, start_ns: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.start_ns = start_ns
        self.dur_ns: Optional[int] = None
        self.args = args
        self.children: List["Span"] = []
        self.events: List[SpanEvent] = []
        self.error: Optional[str] = None

    @property
    def seconds(self) -> float:
        return (self.dur_ns or 0) / 1e9

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after it was opened (e.g. the
        jumps-examined counter known only at the end of a traversal)."""
        self.args.update(attrs)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """The shared do-nothing span handed out when tracing is disabled.

    ``set`` swallows attributes so instrumentation sites never need an
    ``if span is not None`` guard.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that pushes/pops one span on its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._pop(self._span)
        return False

    def set(self, **attrs: Any) -> None:
        self._span.set(**attrs)


class Tracer:
    """Records one request's span tree.

    Not thread-safe by design — one tracer per request per thread,
    exactly like :class:`repro.service.resilience.Budget`.  The span
    stack is plain Python list state; installing the same tracer on two
    threads at once would interleave their stacks.
    """

    __slots__ = ("roots", "_stack", "origin_ns")

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.origin_ns = time.perf_counter_ns()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        return _OpenSpan(
            self, Span(name, time.perf_counter_ns(), dict(attrs))
        )

    def event(self, name: str, **attrs: Any) -> None:
        event = SpanEvent(name, time.perf_counter_ns(), dict(attrs))
        if self._stack:
            self._stack[-1].events.append(event)
        else:
            # An event outside any span still deserves a home: wrap it
            # in a zero-length root span so no export path loses it.
            span = Span(name, event.ts_ns, dict(attrs))
            span.dur_ns = 0
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.dur_ns = time.perf_counter_ns() - span.start_ns
        # Tolerate a mis-nested pop rather than corrupting the stack:
        # close every span opened after (and including) this one.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.dur_ns is None:
                top.dur_ns = time.perf_counter_ns() - top.start_ns

    # -- queries -------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    @property
    def open_spans(self) -> int:
        return len(self._stack)


#: The tracer of the request running on this thread/context, if any.
#: Worker threads start with an empty context, so a request's tracer is
#: never visible to another request (same guarantee as the budget).
_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "slang_tracer", default=None
)


def current_tracer() -> Optional[Tracer]:
    return _TRACER.get()


class _UseTracer:
    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer

    def __enter__(self) -> Optional[Tracer]:
        self._token = _TRACER.set(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _TRACER.reset(self._token)
        return False


def use_tracer(tracer: Optional[Tracer]) -> _UseTracer:
    """Install *tracer* as the current tracer for the dynamic extent."""
    return _UseTracer(tracer)


def trace_span(name: str, **attrs: Any):
    """Open a span on the current tracer — or return the shared no-op
    context manager when tracing is off (no allocation on the fast
    path; the disabled cost is one ``ContextVar.get`` plus a ``None``
    check)."""
    tracer = _TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Record a point-in-time event on the current span, if tracing."""
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.event(name, **attrs)


# ---------------------------------------------------------------------------
# Export: Chrome trace-event JSON, text summary, per-phase aggregates.


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace(
    tracer: Tracer, pid: int = 1, tid: int = 1
) -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event JSON object
    (loadable in ``chrome://tracing`` or https://ui.perfetto.dev).

    Spans become complete events (``ph: "X"``, microsecond ``ts`` and
    ``dur`` relative to the tracer's origin); span events become
    thread-scoped instants (``ph: "i"``).
    """
    events: List[Dict[str, Any]] = []
    origin = tracer.origin_ns
    for span in tracer.walk():
        args = {key: _jsonable(val) for key, val in span.args.items()}
        if span.error is not None:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": "slang",
                "ph": "X",
                "ts": (span.start_ns - origin) / 1000.0,
                "dur": (span.dur_ns or 0) / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": "slang",
                    "ph": "i",
                    "ts": (event.ts_ns - origin) / 1000.0,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": {
                        key: _jsonable(val)
                        for key, val in event.args.items()
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1, sort_keys=True)
        handle.write("\n")


def span_tree(tracer: Tracer) -> List[Dict[str, Any]]:
    """The span forest as plain JSON-ready dicts — the shape embedded in
    a service response envelope when the request asked ``trace: true``.
    Durations are reported in microseconds (integers) to keep envelopes
    compact and deterministic in shape."""

    def render(span: Span) -> Dict[str, Any]:
        node: Dict[str, Any] = {
            "name": span.name,
            "start_us": (span.start_ns - tracer.origin_ns) // 1000,
            "dur_us": (span.dur_ns or 0) // 1000,
        }
        if span.args:
            node["args"] = {
                key: _jsonable(val) for key, val in span.args.items()
            }
        if span.error is not None:
            node["error"] = span.error
        if span.events:
            node["events"] = [
                {
                    "name": event.name,
                    "ts_us": (event.ts_ns - tracer.origin_ns) // 1000,
                    **(
                        {
                            "args": {
                                key: _jsonable(val)
                                for key, val in event.args.items()
                            }
                        }
                        if event.args
                        else {}
                    ),
                }
                for event in span.events
            ]
        if span.children:
            node["children"] = [render(child) for child in span.children]
        return node

    return [render(root) for root in tracer.roots]


def phase_totals(tracer: Tracer) -> Dict[str, Tuple[int, float]]:
    """Aggregate ``span name -> (count, total seconds)`` over the whole
    tree — what the service records into its per-phase histograms and
    what the summary table prints."""
    totals: Dict[str, Tuple[int, float]] = {}
    for span in tracer.walk():
        count, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, seconds + span.seconds)
    return totals


def summary_table(tracer: Tracer) -> str:
    """A human-readable per-phase cost table (``--trace-summary``).

    Phases are ranked by total self time; the ``total`` column is
    wall-clock inside spans of that name, ``self`` excludes child
    spans, so the table answers "where did the time actually go".
    """
    selfs: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for span in tracer.walk():
        child_ns = sum(child.dur_ns or 0 for child in span.children)
        selfs[span.name] = selfs.get(span.name, 0.0) + max(
            0, (span.dur_ns or 0) - child_ns
        ) / 1e9
        counts[span.name] = counts.get(span.name, 0) + 1
    totals = phase_totals(tracer)
    wall = sum(root.seconds for root in tracer.roots) or 1e-12
    width = max([len(name) for name in totals] + [5])
    lines = [
        f"{'phase':<{width}}  {'count':>5}  {'total':>10}  "
        f"{'self':>10}  {'self%':>6}"
    ]
    for name in sorted(selfs, key=lambda n: -selfs[n]):
        count, total = totals[name]
        lines.append(
            f"{name:<{width}}  {count:>5}  {total:>9.4f}s  "
            f"{selfs[name]:>9.4f}s  {100.0 * selfs[name] / wall:>5.1f}%"
        )
    lines.append(
        f"{'(wall)':<{width}}  {'':>5}  {wall:>9.4f}s  {'':>10}  {'':>6}"
    )
    return "\n".join(lines)
