"""Prometheus text exposition (version 0.0.4), derived from one stats
snapshot.

:func:`render_prometheus` turns the JSON payload of ``GET /stats``
(:meth:`repro.service.engine.SlicingEngine.stats_payload`) into the
plain-text format Prometheus scrapes at ``GET /metrics.prom``.  Because
both endpoints render the *same* snapshot structure — and a snapshot is
taken under one lock (see :mod:`repro.service.stats`) — every number in
the exposition reconciles exactly with the JSON counters; the
observability CI smoke and ``tests/integration/test_observability.py``
assert that.

The request/latency keys of a snapshot are ``"op"`` or
``"op:algorithm"`` strings; they are split into ``op`` / ``algorithm``
labels here.  Snapshot histogram buckets are per-bucket counts;
Prometheus buckets are cumulative with an explicit ``+Inf`` bound, so
the renderer accumulates.

:func:`parse_prometheus` is the tiny inverse used by the tests and the
CI smoke to reconcile a scrape against ``/stats`` without external
dependencies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["render_prometheus", "parse_prometheus", "PROM_CONTENT_TYPE"]

#: The content type Prometheus expects for the text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(pairs: Dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in pairs.items()
    )
    return "{" + inner + "}"


def _split_key(key: str) -> Dict[str, str]:
    op, _, algorithm = key.partition(":")
    labels = {"op": op}
    if algorithm:
        labels["algorithm"] = algorithm
    return labels


def _format(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def head(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: Dict[str, str], value: Any
    ) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_format(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _histogram(
    writer: _Writer,
    name: str,
    labels: Dict[str, str],
    snapshot: Dict[str, Any],
) -> None:
    """One snapshot histogram as cumulative Prometheus buckets."""
    bounds: List[Tuple[float, str, int]] = []
    for key, count in snapshot["buckets"].items():
        bound = key[len("le_"):]
        if bound == "inf":
            bounds.append((float("inf"), "+Inf", count))
        else:
            bounds.append((float(bound), bound, count))
    bounds.sort(key=lambda item: item[0])
    cumulative = 0
    for _, text, count in bounds:
        cumulative += count
        writer.sample(
            f"{name}_bucket", {**labels, "le": text}, cumulative
        )
    writer.sample(f"{name}_sum", labels, snapshot["sum_seconds"])
    writer.sample(f"{name}_count", labels, snapshot["count"])


def render_prometheus(payload: Dict[str, Any]) -> str:
    """Render one ``stats_payload()`` snapshot as exposition text."""
    writer = _Writer()

    writer.head(
        "slang_uptime_seconds", "gauge", "Seconds since stats started."
    )
    writer.sample("slang_uptime_seconds", {}, payload["uptime_seconds"])

    writer.head(
        "slang_requests_total", "counter", "Requests handled, by op."
    )
    for key, count in payload["requests"].items():
        writer.sample("slang_requests_total", _split_key(key), count)

    writer.head(
        "slang_errors_total", "counter", "Requests that errored, by op."
    )
    for key, count in payload["errors"].items():
        writer.sample("slang_errors_total", _split_key(key), count)

    writer.head(
        "slang_events_total",
        "counter",
        "Resilience outcomes (shed, budget-exceeded, degraded, retry...).",
    )
    for name, count in payload["events"].items():
        writer.sample("slang_events_total", {"event": name}, count)

    sdg_events = {
        name: count
        for name, count in payload["events"].items()
        if name.startswith("sdg:")
    }
    for event, metric, help_text in (
        ("sdg:procedures", "slang_sdg_procedures_total",
         "Procedures analysed into system dependence graphs."),
        ("sdg:summary-edges", "slang_sdg_summary_edges_total",
         "Summary edges computed across all SDG builds."),
        ("sdg:pass1-visits", "slang_sdg_pass1_visits_total",
         "Vertices marked by interprocedural slicing pass 1."),
        ("sdg:pass2-visits", "slang_sdg_pass2_visits_total",
         "Vertices marked by interprocedural slicing pass 2."),
    ):
        if event in sdg_events:
            writer.head(metric, "counter", help_text)
            writer.sample(metric, {}, sdg_events[event])

    events = payload["events"]
    for event, metric, help_text in (
        ("sdg-index:builds", "slang_sdg_index_builds_total",
         "Whole-SDG closure indexes built (ascend + descend sides)."),
        ("sdg-index:mask-hits", "slang_sdg_index_mask_hits_total",
         "Two-pass fixpoints answered from closure-index mask lookups."),
        ("sdg-index:pressure-skips", "slang_sdg_index_pressure_skips_total",
         "SDG index builds deferred under deadline pressure "
         "(worklist fallback served the slice)."),
        ("sdg-index:incremental-salvages",
         "slang_sdg_index_incremental_salvages_total",
         "Whole-SDG closure indexes salvaged from the unit cache "
         "across edits."),
    ):
        if event in events:
            writer.head(metric, "counter", help_text)
            writer.sample(metric, {}, events[event])

    writer.head(
        "slang_diagnostics_total",
        "counter",
        "Lint diagnostics emitted, by stable code.",
    )
    for code, count in payload["diagnostics"].items():
        writer.sample("slang_diagnostics_total", {"code": code}, count)

    writer.head(
        "slang_request_duration_seconds",
        "histogram",
        "Request latency, by op.",
    )
    for key, snapshot in payload["latency"].items():
        _histogram(
            writer,
            "slang_request_duration_seconds",
            _split_key(key),
            snapshot,
        )

    writer.head(
        "slang_phase_duration_seconds",
        "histogram",
        "Per-phase span durations from traced requests.",
    )
    for phase, snapshot in payload.get("phases", {}).items():
        _histogram(
            writer,
            "slang_phase_duration_seconds",
            {"phase": phase},
            snapshot,
        )

    cache = payload.get("cache")
    if cache is not None:
        for field, kind, help_text in (
            ("hits", "counter", "Analysis cache lookups that hit."),
            ("misses", "counter", "Analysis cache lookups that missed."),
            ("evictions", "counter", "Analysis cache LRU evictions."),
            ("entries", "gauge", "Analyses currently cached."),
        ):
            name = f"slang_cache_{field}"
            if kind == "counter":
                name += "_total"
            writer.head(name, kind, help_text)
            writer.sample(name, {}, cache[field])

    slice_cache = payload.get("slice_cache")
    if slice_cache is not None:
        for field, help_text in (
            ("hits", "Slice memo lookups that hit."),
            ("misses", "Slice memo lookups that missed."),
            ("evictions", "Slice memo LRU evictions."),
        ):
            name = f"slang_slice_cache_{field}_total"
            writer.head(name, "counter", help_text)
            writer.sample(name, {}, slice_cache[field])

    incremental = payload.get("incremental")
    if incremental is not None:
        writer.head(
            "slang_incremental_enabled",
            "gauge",
            "Whether per-unit incremental reuse is on (1) or off (0).",
        )
        writer.sample(
            "slang_incremental_enabled",
            {},
            1 if incremental.get("enabled") else 0,
        )
        for field, kind, help_text in (
            ("programs", "counter",
             "Programs fingerprinted by the incremental path."),
            ("spans_reused", "counter",
             "Source spans whose parsed AST was reused verbatim."),
            ("spans_parsed", "counter",
             "Source spans re-parsed because text or start line "
             "changed."),
            ("units_reused", "counter",
             "Unit analyses salvaged from the unit cache."),
            ("units_built", "counter",
             "Unit analyses built because no fingerprint matched."),
            ("stitched_reused", "counter",
             "Stitched per-unit SDG graphs reused (summary edges and "
             "closure index included)."),
            ("stitched_built", "counter",
             "Stitched per-unit SDG graphs rebuilt."),
            ("recursive_rebuilt", "counter",
             "Units rebuilt because their call-graph SCC is recursive."),
            ("slices_salvaged", "counter",
             "Interprocedural slice results replayed across edits."),
            ("indexes_salvaged", "counter",
             "Whole-SDG closure indexes replayed across edits."),
            ("store_unit_hits", "counter",
             "Durable-store reads answered via the per-unit sub-key."),
            ("entries", "gauge", "Unit analyses currently cached."),
            ("stitched_entries", "gauge",
             "Stitched graphs currently cached."),
            ("span_entries", "gauge",
             "Parsed source spans currently cached."),
            ("slice_entries", "gauge",
             "Slice results currently held for salvage."),
            ("index_entries", "gauge",
             "Whole-SDG closure indexes currently held for salvage."),
        ):
            name = f"slang_incremental_{field}"
            if kind == "counter":
                name += "_total"
            writer.head(name, kind, help_text)
            writer.sample(name, {}, incremental[field])

    store = payload.get("store")
    if store is not None:
        for field, kind, help_text in (
            ("hits", "counter", "Durable store reads that hit."),
            ("misses", "counter", "Durable store reads that missed."),
            ("puts", "counter", "Durable store entries written."),
            ("evictions", "counter", "Durable store LRU evictions."),
            ("quarantined", "counter",
             "Corrupt durable-store entries quarantined (never served)."),
            ("errors", "counter", "Durable store filesystem errors."),
            ("bytes", "gauge", "Approximate durable store footprint."),
        ):
            name = f"slang_store_{field}"
            if kind == "counter":
                name += "_total"
            writer.head(name, kind, help_text)
            writer.sample(name, {}, store[field])

    cluster = payload.get("cluster")
    if cluster is not None:
        writer.head(
            "slang_cluster_workers", "gauge", "Configured worker count."
        )
        writer.sample("slang_cluster_workers", {}, cluster["workers"])
        writer.head(
            "slang_cluster_workers_alive",
            "gauge",
            "Workers currently alive.",
        )
        writer.sample(
            "slang_cluster_workers_alive", {}, cluster["alive"]
        )
        writer.head(
            "slang_cluster_restarts_total",
            "counter",
            "Worker restarts, by shard.",
        )
        for shard, worker in enumerate(cluster.get("worker_stats", [])):
            writer.sample(
                "slang_cluster_restarts_total",
                {"shard": str(shard)},
                worker.get("restarts", 0),
            )
        writer.head(
            "slang_cluster_requests_total",
            "counter",
            "Requests routed, by shard.",
        )
        for shard, worker in enumerate(cluster.get("worker_stats", [])):
            writer.sample(
                "slang_cluster_requests_total",
                {"shard": str(shard)},
                worker.get("requests", 0),
            )
        writer.head(
            "slang_cluster_proxy_errors_total",
            "counter",
            "Requests that failed at the supervisor proxy "
            "(dead worker, connection reset).",
        )
        writer.sample(
            "slang_cluster_proxy_errors_total",
            {},
            cluster.get("proxy_errors", 0),
        )

    admission = payload.get("admission")
    if admission is not None:
        writer.head(
            "slang_inflight_requests", "gauge", "Requests in flight."
        )
        writer.sample(
            "slang_inflight_requests", {}, admission["inflight"]
        )
        writer.head(
            "slang_shed_total",
            "counter",
            "Requests shed at the admission gate.",
        )
        writer.sample("slang_shed_total", {}, admission["shed"])

    return writer.text()


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into
    ``metric name -> {sorted label tuple -> value}``.

    Supports exactly what :func:`render_prometheus` emits (no exotic
    escapes beyond the three it writes); used by the tests and CI smoke
    to reconcile ``/metrics.prom`` against ``/stats``.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            body = rest.rstrip("}")
            labels: List[Tuple[str, str]] = []
            # Split on '","' boundaries safely: every label value is
            # quoted, and our escapes never produce a bare '",'.
            for piece in _split_labels(body):
                key, _, raw = piece.partition("=")
                value = raw[1:-1]
                value = (
                    value.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((key, value))
        else:
            name, labels = name_part, []
        out.setdefault(name, {})[tuple(sorted(labels))] = float(value_part)
    return out


def _split_labels(body: str) -> List[str]:
    pieces: List[str] = []
    current: List[str] = []
    in_quote = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quote = not in_quote
            current.append(char)
            continue
        if char == "," and not in_quote:
            pieces.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pieces.append("".join(current))
    return pieces
