"""Observability: structured tracing, trace export, and metrics
exposition for the slicing stack.

* :mod:`repro.obs.tracer` — nested spans + span events in a
  ``ContextVar`` (the :class:`~repro.service.resilience.Budget`
  pattern), Chrome trace-event export, per-phase summaries.
* :mod:`repro.obs.prom` — Prometheus text exposition rendered from a
  :meth:`~repro.service.engine.SlicingEngine.stats_payload` snapshot.

Imports nothing from the rest of :mod:`repro`, so any layer may
instrument itself without cycles.
"""

from repro.obs.tracer import (
    Span,
    SpanEvent,
    Tracer,
    chrome_trace,
    current_tracer,
    dump_chrome_trace,
    phase_totals,
    span_tree,
    summary_table,
    trace_event,
    trace_span,
    use_tracer,
)
from repro.obs.prom import (
    PROM_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "dump_chrome_trace",
    "phase_totals",
    "span_tree",
    "summary_table",
    "trace_event",
    "trace_span",
    "use_tracer",
    "PROM_CONTENT_TYPE",
    "parse_prometheus",
    "render_prometheus",
]
