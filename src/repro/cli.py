"""The ``slang`` command-line interface.

Subcommands::

    slang parse   FILE                    validate + pretty-print
    slang run     FILE [--input 1,2,3]    execute, print outputs
    slang graph   FILE --kind cfg|pdt|cdg|lst|ddg|pdg [--ascii]
    slang slice   FILE --line N --var V [--algorithm agrawal]
                  [--nodes] [--explain] [--json]
    slang compare FILE --line N --var V [--json]
    slang check   FILE [--format text|json] [--select SL1,...]
                  [--ignore SL105,...]      analysis-backed lint
    slang dynamic FILE --line N --var V --input 1,2,3   dynamic slice
    slang pyslice FILE.py --line N --var V              slice Python
    slang serve   [--host H] [--port P] [--deadline-ms N]
                  [--max-inflight N] [--degrade off|conservative]
                  [--fault-plan FILE] [--workers N] [--store-dir DIR]
                  HTTP slicing service; --workers N>1 runs the
                  supervised multi-process cluster (crash restarts,
                  content-hash sharding, SIGTERM drain)
    slang batch   FILE.jsonl [--stats] [--strict] [--url URL]
                  [--max-retries N] [--backoff S]   run a request batch
                  (in-process, or against a live server with --url)

``slang slice``, ``compare``, ``check``, and ``batch`` accept
``--trace FILE`` (write a Chrome trace-event JSON profile of the run —
every pipeline phase as a span) and ``--trace-summary`` (per-phase cost
table on stderr); ``slang serve --slow-trace-ms N`` traces every
request and retains exemplar span trees for slow ones under ``/stats``.
See the README "Observability" section.

``slang serve`` and ``slang batch`` accept the shared resilience flags
(``--deadline-ms``, ``--max-traversals``, ``--max-nodes``,
``--max-source-bytes``, ``--degrade``, ``--fault-plan``); see the
README "Resilience" section.  ``slang batch --strict`` exits 1 on
permanent failures and 75 (``EX_TEMPFAIL``) when every failure was
transient, so schedulers know whether a retry can help.

``slang slice`` prints the extracted slice as a runnable program;
``--nodes`` prints the node set instead, and ``--explain`` narrates the
Fig. 7 run (each jump's nearest-postdominator / nearest-lexical-
successor verdict, traversal by traversal — the paper's §3 walkthrough,
mechanised).  ``slang compare`` is the quickest way to see the paper's
story on any program: the conventional slice losing jumps, Agrawal's
algorithms restoring them, and the baselines' over- and
under-approximations.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.interp.interpreter import run_program
from repro.lang.errors import SlangError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program
from repro.pdg.builder import analyze_program
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.extract import extract_source
from repro.slicing.registry import algorithm_names, get_algorithm
from repro.viz.dot import ascii_tree, render_all


@contextmanager
def _maybe_trace(args: argparse.Namespace, root: str) -> Iterator[None]:
    """Run a command body under a tracer when ``--trace`` or
    ``--trace-summary`` was given; afterwards write the Chrome
    trace-event JSON and/or print the per-phase summary to stderr.
    Exports run even when the command fails, so slow *failing* runs can
    be profiled too."""
    trace_file = getattr(args, "trace", None)
    want_summary = getattr(args, "trace_summary", False)
    if not trace_file and not want_summary:
        yield
        return
    from repro.obs import (
        Tracer,
        dump_chrome_trace,
        summary_table,
        use_tracer,
    )

    tracer = Tracer()
    try:
        with use_tracer(tracer):
            with tracer.span(root):
                yield
    finally:
        if trace_file:
            dump_chrome_trace(tracer, trace_file)
        if want_summary:
            print(summary_table(tracer), file=sys.stderr)


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "write a Chrome trace-event JSON profile of this run "
            "(open in chrome://tracing or ui.perfetto.dev)"
        ),
    )
    group.add_argument(
        "--trace-summary",
        action="store_true",
        help="print a per-phase cost table to stderr afterwards",
    )


def _add_perf_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("performance")
    group.add_argument(
        "--closure-index",
        choices=["on", "off"],
        default="on",
        help=(
            "precompute the condensed closure indexes — the per-PDG "
            "index and, for interprocedural slicing, the whole-SDG "
            "ascend/descend index — so every backward closure and "
            "two-pass fixpoint is answered from bitset masks (default "
            "on; off falls back to per-query BFS and the crossing "
            "worklist, the reference paths)"
        ),
    )
    group.add_argument(
        "--incremental",
        choices=["on", "off"],
        default="on",
        help=(
            "key analyses by per-procedure content fingerprints so an "
            "edit to one procedure salvages every untouched unit's "
            "CFG/PDG/closure-index (default on; off rebuilds the whole "
            "program on any byte change, the reference path)"
        ),
    )


def _apply_perf_args(args: argparse.Namespace) -> None:
    choice = getattr(args, "closure_index", None)
    if choice is not None:
        from repro.pdg.closure import set_closure_index_enabled

        set_closure_index_enabled(choice == "on")
    choice = getattr(args, "incremental", None)
    if choice is not None:
        from repro.service.incremental import set_incremental_enabled

        set_incremental_enabled(choice == "on")


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_parse(args: argparse.Namespace) -> int:
    program = parse_program(_read_source(args.file))
    validate_program(program)
    sys.stdout.write(pretty(program))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = parse_program(_read_source(args.file))
    inputs: List[int] = []
    if args.input:
        inputs = [int(part) for part in args.input.split(",") if part.strip()]
    env = {}
    for binding in args.env or []:
        name, _, value = binding.partition("=")
        env[name] = int(value)
    result = run_program(program, inputs, initial_env=env)
    for value in result.outputs:
        print(value)
    if result.returned is not None:
        print(f"(returned {result.returned})", file=sys.stderr)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    analysis = analyze_program(_read_source(args.file))
    highlight = None
    if args.line is not None and args.var is not None:
        slicer = get_algorithm(args.algorithm)
        highlight = slicer(
            analysis, SlicingCriterion(line=args.line, var=args.var)
        ).statement_nodes()
    if args.ascii:
        if args.kind == "pdt":
            print(ascii_tree(analysis.pdt, analysis.cfg, highlight))
        elif args.kind == "lst":
            print(ascii_tree(analysis.lst, analysis.cfg, highlight))
        elif args.kind == "cfg":
            print(analysis.cfg.describe())
        else:
            print(
                f"--ascii supports pdt/lst/cfg, not {args.kind}",
                file=sys.stderr,
            )
            return 2
        return 0
    graphs = render_all(analysis, highlight)
    keymap = {
        "cfg": "flowgraph",
        "pdt": "postdominator-tree",
        "cdg": "control-dependence",
        "lst": "lexical-successor-tree",
        "ddg": "data-dependence",
        "pdg": "pdg",
    }
    print(graphs[keymap[args.kind]])
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    with _maybe_trace(args, "slice"):
        return _do_slice(args)


def _do_slice(args: argparse.Namespace) -> int:
    from repro.obs.tracer import trace_span

    with trace_span("read-source"):
        source = _read_source(args.file)
    analysis = analyze_program(source)
    proc = getattr(args, "proc", None)
    criterion = SlicingCriterion(line=args.line, var=args.var, proc=proc)
    from repro.service.engine import check_algorithm_capability

    check_algorithm_capability(analysis, args.algorithm)
    if args.json:
        from repro.service.engine import perform_slice
        from repro.service.protocol import dump_json, ok_envelope

        if args.explain:
            print("--explain and --json are mutually exclusive", file=sys.stderr)
            return 2
        with trace_span("slice-algorithm", algorithm=args.algorithm):
            payload = perform_slice(
                analysis, args.line, args.var, args.algorithm, proc=proc
            )
        with trace_span("emit"):
            print(dump_json(ok_envelope("slice", payload)))
        return 0
    if args.explain:
        if args.algorithm not in ("agrawal", "agrawal-lst"):
            print(
                "--explain narrates the Fig. 7 algorithm; use "
                "--algorithm agrawal or agrawal-lst",
                file=sys.stderr,
            )
            return 2
        from repro.slicing.agrawal import agrawal_slice

        log: List[str] = []
        drive = "lexical" if args.algorithm == "agrawal-lst" else (
            "postdominator"
        )
        with trace_span("slice-algorithm", algorithm=args.algorithm):
            result = agrawal_slice(
                analysis, criterion, drive_tree=drive, explain=log
            )
        for line in log:
            print(f"# {line}")
        print()
    else:
        slicer = get_algorithm(args.algorithm)
        with trace_span("slice-algorithm", algorithm=args.algorithm):
            result = slicer(analysis, criterion)
    with trace_span("emit"):
        sdg_result = getattr(result, "sdg_result", None)
        if args.nodes:
            if sdg_result is not None and sdg_result.sdg.program.procs:
                print(sdg_result.describe())
            else:
                print(result.describe())
        elif sdg_result is not None and sdg_result.sdg.program.procs:
            from repro.slicing.extract import extract_interprocedural_source

            sys.stdout.write(extract_interprocedural_source(sdg_result))
        else:
            sys.stdout.write(extract_source(result))
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.dynamic.slicer import dynamic_slice

    analysis = analyze_program(_read_source(args.file))
    inputs: List[int] = []
    if args.input:
        inputs = [int(part) for part in args.input.split(",") if part.strip()]
    env = {}
    for binding in args.env or []:
        name, _, value = binding.partition("=")
        env[name] = int(value)
    result = dynamic_slice(
        analysis,
        SlicingCriterion(line=args.line, var=args.var),
        inputs=inputs,
        initial_env=env,
        occurrence=args.occurrence,
    )
    print(
        f"dynamic slice of run on {inputs} w.r.t. "
        f"<{args.var}, line {args.line}> "
        f"(occurrence {args.occurrence}):"
    )
    for node_id in result.statement_nodes():
        node = analysis.cfg.nodes[node_id]
        print(f"  {node_id:>3}  line {node.line:<3} {node.text}")
    print(
        f"trace: {len(result.trace)} events; "
        f"{len(result.events)} in the dynamic closure"
    )
    return 0


def _cmd_pyslice(args: argparse.Namespace) -> int:
    from repro.pyfront.slicer import slice_python

    report = slice_python(
        _read_source(args.file),
        line=args.line,
        var=args.var,
        algorithm=args.algorithm,
    )
    print(report.annotated)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    with _maybe_trace(args, "compare"):
        return _do_compare(args)


def _do_compare(args: argparse.Namespace) -> int:
    analysis = analyze_program(_read_source(args.file))
    criterion = SlicingCriterion(line=args.line, var=args.var)
    if args.json:
        from repro.service.engine import perform_compare
        from repro.service.protocol import dump_json, ok_envelope

        payload = perform_compare(analysis, args.line, args.var)
        print(dump_json(ok_envelope("compare", payload)))
        return 0
    width = max(len(name) for name in algorithm_names())
    for name in algorithm_names():
        slicer = get_algorithm(name)
        try:
            result = slicer(analysis, criterion)
        except SlangError as error:
            first_line = str(error).splitlines()[0]
            print(f"{name:<{width}}  (refused: {first_line})")
            continue
        statements = result.statement_nodes()
        labels = (
            "  labels " + ",".join(f"{k}->{v}" for k, v in result.label_map.items())
            if result.label_map
            else ""
        )
        print(
            f"{name:<{width}}  {len(statements):>3} stmts  "
            f"nodes {statements}{labels}"
        )
    return 0


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _cmd_check(args: argparse.Namespace) -> int:
    with _maybe_trace(args, "check"):
        return _do_check(args)


def _do_check(args: argparse.Namespace) -> int:
    from repro.lint.rules import run_lint

    report = run_lint(
        _read_source(args.file),
        select=_split_codes(args.select),
        ignore=_split_codes(args.ignore),
    )
    if args.format == "json":
        from repro.service.protocol import dump_json, ok_envelope

        print(dump_json(ok_envelope("check", report.payload())))
    else:
        print(report.format_text())
    return 1 if report.has_errors else 0


def _limits_from_args(args: argparse.Namespace):
    from repro.service.resilience import EngineLimits

    deadline_ms = getattr(args, "deadline_ms", None)
    return EngineLimits(
        deadline_seconds=deadline_ms / 1000.0 if deadline_ms else None,
        max_traversals=getattr(args, "max_traversals", None),
        max_cfg_nodes=getattr(args, "max_nodes", None),
        max_source_bytes=getattr(args, "max_source_bytes", None),
        max_inflight=getattr(args, "max_inflight", None),
        degrade=getattr(args, "degrade", "conservative"),
    )


def _faults_from_args(args: argparse.Namespace):
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.service.faults import FaultPlan

    return FaultPlan.from_json_file(args.fault_plan)


def _store_from_args(args: argparse.Namespace):
    store_dir = getattr(args, "store_dir", None)
    if store_dir is None:
        return None
    from repro.service.store import DurableStore

    kwargs = {}
    max_bytes = getattr(args, "store_max_bytes", None)
    if max_bytes is not None:
        kwargs["max_bytes"] = max_bytes
    return DurableStore(store_dir, **kwargs)


def _make_engine(args: argparse.Namespace):
    from repro.service.cache import AnalysisCache
    from repro.service.engine import SlicingEngine

    slow_ms = getattr(args, "slow_trace_ms", None)
    # serve: --threads is the pool width (--workers means processes);
    # batch keeps --workers as its thread-pool width.
    threads = getattr(args, "threads", None)
    if threads is None:
        threads = getattr(args, "workers", None)
    cache = AnalysisCache(capacity=args.cache_size, prewarm=True)
    return SlicingEngine(
        cache=cache,
        workers=threads,
        limits=_limits_from_args(args),
        faults=_faults_from_args(args),
        store=_store_from_args(args),
        slow_trace_seconds=slow_ms / 1000.0 if slow_ms is not None else None,
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="per-request wall-clock budget in milliseconds",
    )
    group.add_argument(
        "--max-traversals",
        type=int,
        default=None,
        help="cap on Fig. 7 traversal / fixed-point rounds per request",
    )
    group.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="refuse programs whose CFG exceeds this many nodes",
    )
    group.add_argument(
        "--max-source-bytes",
        type=int,
        default=None,
        help="refuse request sources larger than this many bytes",
    )
    group.add_argument(
        "--degrade",
        choices=["off", "conservative"],
        default="conservative",
        help=(
            "on budget exhaustion, fall back to the sound Fig. 13 "
            "conservative slicer (default) or return the error (off)"
        ),
    )
    group.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        help="JSON fault-injection plan (testing; see DESIGN.md §9)",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers > 1:
        return _serve_cluster(args)
    return _serve_single(args)


def _serve_cluster(args: argparse.Namespace) -> int:
    """``slang serve --workers N`` (N > 1): the supervised process pool."""
    import dataclasses
    import json

    from repro.service.cluster import ClusterConfig, ClusterSupervisor

    faults = None
    if args.fault_plan:
        with open(args.fault_plan, "r", encoding="utf-8") as handle:
            faults = json.load(handle)
    config = ClusterConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        threads=args.threads,
        store_root=args.store_dir,
        store_max_bytes=args.store_max_bytes,
        faults=faults,
        limits=dataclasses.asdict(_limits_from_args(args)),
        heartbeat_timeout=args.heartbeat_timeout,
        drain_seconds=args.drain_seconds,
        verbose=True,
    )
    supervisor = ClusterSupervisor(config)
    print(
        f"slang cluster supervisor on http://{args.host}:{args.port} "
        f"({args.workers} workers, sharded by program content hash)",
        file=sys.stderr,
    )
    try:
        supervisor.serve_forever()
    except KeyboardInterrupt:
        supervisor.stop(drain=True)
    return 0


def _serve_single(args: argparse.Namespace) -> int:
    import signal
    import threading
    import time

    from repro.service.server import make_server

    engine = _make_engine(args)
    server = make_server(
        args.host,
        args.port,
        engine=engine,
        verbose=args.verbose,
        max_body_bytes=args.max_body_bytes,
    )
    host, port = server.server_address[:2]
    print(f"slang service listening on http://{host}:{port}", file=sys.stderr)
    print(
        "endpoints: POST /slice /compare /graph /metrics /check /batch; "
        "GET /stats /metrics.prom /algorithms /healthz /readyz",
        file=sys.stderr,
    )

    def _drain() -> None:
        engine.begin_drain()
        deadline = time.monotonic() + args.drain_seconds
        while engine.gate.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        server.shutdown()

    def _on_term(signum: int, frame) -> None:
        print("draining (SIGTERM)", file=sys.stderr)
        threading.Thread(target=_drain, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        engine.close()
    return 0


#: ``slang batch --strict`` exit code when every failure was transient
#: (retry later): BSD ``EX_TEMPFAIL``.
EXIT_TEMPFAIL = 75


def _cmd_batch(args: argparse.Namespace) -> int:
    with _maybe_trace(args, "batch"):
        return _do_batch(args)


def _do_batch(args: argparse.Namespace) -> int:
    import json

    from repro.service.protocol import TRANSIENT_ERROR_CODES, dump_json
    from repro.service.resilience import RetryPolicy

    from repro.obs.tracer import trace_span

    payloads = []
    with trace_span("read-requests"):
        text = _read_source(args.file)
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payloads.append(json.loads(line))
            except json.JSONDecodeError as error:
                print(
                    f"error: {args.file}:{lineno}: not valid JSON: {error}",
                    file=sys.stderr,
                )
                return 2
    retry = None
    if args.max_retries:
        retry = RetryPolicy(
            max_retries=args.max_retries,
            backoff_seconds=args.backoff,
            seed=args.retry_seed,
        )
    if args.url:
        return _batch_remote(args, payloads, retry)
    engine = _make_engine(args)
    try:
        # Per-request pipeline spans live in the workers' own tracers
        # (request payloads may ask with "trace": true); this span is
        # the batch's wall clock.
        with trace_span("run-batch", requests=len(payloads)):
            responses = engine.run_batch(payloads, retry=retry)
    finally:
        engine.close()
    permanent = transient = 0
    for response in responses:
        if not response.get("ok"):
            code = response.get("error", {}).get("code")
            if code in TRANSIENT_ERROR_CODES:
                transient += 1
            else:
                permanent += 1
        print(dump_json(response))
    if permanent or transient:
        print(
            f"batch: {len(responses)} responses, "
            f"{permanent} permanent failure(s), "
            f"{transient} transient failure(s)",
            file=sys.stderr,
        )
    if args.stats:
        print(dump_json(engine.stats_payload()), file=sys.stderr)
    if args.strict:
        if permanent:
            return 1
        if transient:
            return EXIT_TEMPFAIL
    return 0


def _batch_remote(args: argparse.Namespace, payloads, retry) -> int:
    """``slang batch --url``: the batch over HTTP via the retrying
    client (each request posts to its own endpoint, so a cluster
    supervisor shards them across workers)."""
    from repro.service.client import ServiceClient
    from repro.service.protocol import dump_json

    client = ServiceClient(
        args.url,
        retry=retry if retry is not None else None,
    )
    responses = client.run_batch(
        payloads, concurrency=args.workers or 8
    )
    permanent = transient = 0
    for response in responses:
        if not response.get("ok"):
            if response.get("error", {}).get("retryable"):
                transient += 1
            else:
                permanent += 1
        print(dump_json(response))
    if permanent or transient:
        print(
            f"batch: {len(responses)} responses, "
            f"{permanent} permanent failure(s), "
            f"{transient} transient failure(s)",
            file=sys.stderr,
        )
    if args.stats:
        print(dump_json(client.stats()), file=sys.stderr)
        status, stats = client.get("/stats")
        if status == 200:
            print(dump_json(stats), file=sys.stderr)
    if args.strict:
        if permanent:
            return 1
        if transient:
            return EXIT_TEMPFAIL
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slang",
        description=(
            "Program slicing with jump statements — reproduction of "
            "Agrawal, PLDI 1994"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_parse = sub.add_parser("parse", help="validate and pretty-print")
    p_parse.add_argument("file")
    p_parse.set_defaults(func=_cmd_parse)

    p_run = sub.add_parser("run", help="execute a program")
    p_run.add_argument("file")
    p_run.add_argument("--input", help="comma-separated input stream")
    p_run.add_argument(
        "--env", action="append", help="initial binding NAME=INT (repeatable)"
    )
    p_run.set_defaults(func=_cmd_run)

    p_graph = sub.add_parser("graph", help="emit analysis graphs")
    p_graph.add_argument("file")
    p_graph.add_argument(
        "--kind",
        choices=["cfg", "pdt", "cdg", "lst", "ddg", "pdg"],
        default="cfg",
    )
    p_graph.add_argument("--ascii", action="store_true")
    p_graph.add_argument("--line", type=int, help="highlight a slice")
    p_graph.add_argument("--var")
    p_graph.add_argument("--algorithm", default="agrawal")
    p_graph.set_defaults(func=_cmd_graph)

    p_slice = sub.add_parser("slice", help="slice a program")
    p_slice.add_argument("file")
    p_slice.add_argument("--line", type=int, required=True)
    p_slice.add_argument("--var", required=True)
    p_slice.add_argument(
        "--algorithm", default="agrawal", choices=algorithm_names()
    )
    p_slice.add_argument(
        "--proc",
        default=None,
        help=(
            "procedure the criterion line lives in ('main' for the "
            "top level); needed only when statements of several "
            "procedures share the line"
        ),
    )
    p_slice.add_argument(
        "--nodes", action="store_true", help="print node set, not source"
    )
    p_slice.add_argument(
        "--explain",
        action="store_true",
        help="narrate the Fig. 7 run (jump examinations, npd/nls verdicts)",
    )
    p_slice.add_argument(
        "--json",
        action="store_true",
        help="emit the service protocol envelope (same bytes as POST /slice)",
    )
    _add_trace_args(p_slice)
    _add_perf_args(p_slice)
    p_slice.set_defaults(func=_cmd_slice)

    p_compare = sub.add_parser(
        "compare", help="run every algorithm on one criterion"
    )
    p_compare.add_argument("file")
    p_compare.add_argument("--line", type=int, required=True)
    p_compare.add_argument("--var", required=True)
    p_compare.add_argument(
        "--json",
        action="store_true",
        help="emit the service protocol envelope (same bytes as POST /compare)",
    )
    _add_trace_args(p_compare)
    _add_perf_args(p_compare)
    p_compare.set_defaults(func=_cmd_compare)

    p_check = sub.add_parser(
        "check", help="run the analysis-backed lint rules"
    )
    p_check.add_argument("file")
    p_check.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="json emits the service envelope (same bytes as POST /check)",
    )
    p_check.add_argument(
        "--select",
        help="comma-separated code prefixes to keep (e.g. SL1,SL204)",
    )
    p_check.add_argument(
        "--ignore",
        help="comma-separated code prefixes to drop (applied after --select)",
    )
    _add_trace_args(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_dynamic = sub.add_parser(
        "dynamic", help="dynamic slice of one execution"
    )
    p_dynamic.add_argument("file")
    p_dynamic.add_argument("--line", type=int, required=True)
    p_dynamic.add_argument("--var", required=True)
    p_dynamic.add_argument("--input", help="comma-separated input stream")
    p_dynamic.add_argument(
        "--env", action="append", help="initial binding NAME=INT"
    )
    p_dynamic.add_argument(
        "--occurrence",
        type=int,
        default=-1,
        help="which execution of the criterion statement (default: last)",
    )
    p_dynamic.set_defaults(func=_cmd_dynamic)

    p_pyslice = sub.add_parser(
        "pyslice", help="slice a Python file (structured jumps only)"
    )
    p_pyslice.add_argument("file")
    p_pyslice.add_argument("--line", type=int, required=True)
    p_pyslice.add_argument("--var", required=True)
    p_pyslice.add_argument(
        "--algorithm",
        default="structured",
        choices=algorithm_names(),
    )
    p_pyslice.set_defaults(func=_cmd_pyslice)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP slicing service (stdlib only)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8377, help="0 picks a free port"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes; > 1 runs the supervised cluster "
            "(sharded by program content hash, crash-restarted, "
            "drained on SIGTERM — see README 'Running a cluster')"
        ),
    )
    p_serve.add_argument(
        "--threads",
        type=int,
        default=None,
        help="thread-pool width per process (default: executor default)",
    )
    p_serve.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help=(
            "durable on-disk analysis store shared by every worker and "
            "surviving restarts (checksummed, LRU-bounded)"
        ),
    )
    p_serve.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used store entries beyond this size",
    )
    p_serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=5.0,
        help="kill a worker that stops answering /healthz this long",
    )
    p_serve.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="graceful-drain deadline on SIGTERM",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=128, help="analysis cache capacity"
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="shed requests beyond this many concurrently in flight (503)",
    )
    p_serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="reject HTTP bodies larger than this (413)",
    )
    p_serve.add_argument(
        "--slow-trace-ms",
        type=float,
        default=None,
        help=(
            "trace every request and retain exemplar span trees for "
            "requests at least this slow (surfaced under /stats)"
        ),
    )
    _add_resilience_args(p_serve)
    _add_perf_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_batch = sub.add_parser(
        "batch",
        help="run a JSONL file of service requests through the worker pool",
    )
    p_batch.add_argument("file", help="one JSON request per line ('-' = stdin)")
    p_batch.add_argument(
        "--stats",
        action="store_true",
        help="print request/latency/cache counters to stderr afterwards",
    )
    p_batch.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit 1 on permanent failures, 75 (EX_TEMPFAIL) when every "
            "failure was transient (overloaded / fault-injected)"
        ),
    )
    p_batch.add_argument("--workers", type=int, default=None)
    p_batch.add_argument(
        "--url",
        default=None,
        help=(
            "run the batch against a live server (e.g. "
            "http://127.0.0.1:8377) instead of in-process; transport "
            "failures and 503s retry per the retry flags, honoring "
            "server-sent Retry-After as the backoff floor"
        ),
    )
    p_batch.add_argument(
        "--cache-size", type=int, default=128, help="analysis cache capacity"
    )
    p_batch.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="re-issue transient failures up to N times with backoff",
    )
    p_batch.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        help="base backoff in seconds (exponential, jittered)",
    )
    p_batch.add_argument(
        "--retry-seed",
        type=int,
        default=None,
        help="seed the backoff jitter for reproducible schedules",
    )
    _add_trace_args(p_batch)
    _add_resilience_args(p_batch)
    _add_perf_args(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_perf_args(args)
    try:
        return args.func(args)
    except SlangError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
