"""The SDG parameter model: formals and actuals under value-result.

SL procedures communicate only through parameters, passed by
value-result (copy-in / copy-out).  Following Horwitz–Reps–Binkley,
every procedure gets one *formal-in* node per parameter (defining the
formal at entry) and one *formal-out* node per parameter (using the
formal at exit); every call site gets one *actual-in* node per argument
(using the argument expression's variables) and one *actual-out* node
per argument that is a plain variable (defining that variable — a
non-variable argument has nowhere to copy the result back to, so it is
copy-in only).

The input stream is global state, so any procedure that transitively
reads input (or tests ``eof()``) carries the implicit parameter ``$in``
— the same pseudo-variable the CFG builder threads through ``read``
statements.  That keeps read-chaining sound across call boundaries: a
``read`` after a call that itself reads depends on the call's
``$in`` actual-out, which depends (through the callee) on the reads
inside it.

This module is pure AST level (no CFG/PDG imports) so the CFG builder
can use it while creating call-site node chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.ast_nodes import (
    CallStmt,
    Expr,
    MAIN_UNIT,
    Program,
    Var,
)
from repro.sdg.callgraph import CallGraph, build_call_graph

#: The implicit input-cursor parameter; must match the CFG builder's
#: ``INPUT_CURSOR`` pseudo-variable (asserted by a unit test).
IO_PARAM = "$in"


@dataclass(frozen=True)
class ParamSignature:
    """A procedure's parameter interface.

    ``formals`` lists the declared parameter names followed by
    :data:`IO_PARAM` when the procedure (transitively) touches input.
    Positions are the SDG's parameter indexes: actual-in *j* pairs with
    formal-in *j*, formal-out *j* with actual-out *j*.
    """

    name: str
    declared: Tuple[str, ...]
    io: bool

    @property
    def formals(self) -> Tuple[str, ...]:
        if self.io:
            return self.declared + (IO_PARAM,)
        return self.declared

    @property
    def arity(self) -> int:
        return len(self.declared)


@dataclass(frozen=True)
class ActualSpec:
    """One parameter position at one call site.

    ``expr`` is the argument expression (``None`` for the implicit
    ``$in`` position, whose in-state is the cursor variable itself);
    ``out_var`` is the variable the result copies back into, or
    ``None`` when the argument is not a plain variable.
    """

    index: int
    param: str
    expr: Optional[Expr]
    out_var: Optional[str]


def signatures(
    program: Program, graph: Optional[CallGraph] = None
) -> Dict[str, ParamSignature]:
    """Parameter signatures for every unit of *program*.

    ``main`` always has the empty interface — it owns the input stream
    and takes no parameters; only ``proc`` units are wrapped in
    formal-in/formal-out nodes.
    """
    if graph is None:
        graph = build_call_graph(program)
    table: Dict[str, ParamSignature] = {
        MAIN_UNIT: ParamSignature(name=MAIN_UNIT, declared=(), io=False)
    }
    for proc in program.procs:
        table[proc.name] = ParamSignature(
            name=proc.name,
            declared=tuple(proc.params),
            io=proc.name in graph.io_units,
        )
    return table


def actuals_for(call: CallStmt, callee: ParamSignature) -> List[ActualSpec]:
    """The actual-parameter positions of one call site, in order."""
    specs: List[ActualSpec] = []
    for index, (param, arg) in enumerate(zip(callee.declared, call.args)):
        out_var = arg.name if isinstance(arg, Var) else None
        specs.append(
            ActualSpec(index=index, param=param, expr=arg, out_var=out_var)
        )
    if callee.io:
        specs.append(
            ActualSpec(
                index=len(callee.declared),
                param=IO_PARAM,
                expr=None,
                out_var=IO_PARAM,
            )
        )
    return specs
