"""The two-pass backward interprocedural slicer, with Agrawal's jump
correction applied per procedure (DESIGN.md §12).

Horwitz–Reps–Binkley two-pass closure over the SDG:

* **pass 1** starts from the criterion and may *ascend* into callers
  (formal-in → actual-in, callee ENTRY → call node) but never descends
  through a call's result (actual-out ⇸ formal-out) — summary edges
  carry the call's effect instead;
* **pass 2** starts from everything pass 1 marked and may *descend*
  (actual-out → formal-out) but never ascend — ascending from a
  procedure pass 2 entered would conjure calling contexts the slice
  never came from.

Within each unit both passes are plain backward closures over the
unit-local graph (PDG + call-control + summary edges), served by the
condensed-graph closure index — only the crossings walk the worklist.

Agrawal's Fig. 7 correction then runs *per procedure*: each unit has its
own postdominator and lexical successor trees (rooted at the unit's
EXIT, so a ``return`` is a jump to the formal-out prelude of its own
procedure, and "EXIT counts as in the slice" means *this unit's* exit).
A jump admitted in a unit reached by pass 1 re-seeds pass 1 (its
dependence closure may ascend); a jump in a unit only pass 2 reached
re-seeds pass 2.  The outer loop — passes, then one jump traversal per
affected unit — repeats until a whole round admits no jump, mirroring
the intraprocedural fixed point; on a single-unit program it reduces to
exactly :func:`repro.slicing.agrawal.agrawal_slice`.

One wrinkle the classic two-pass does not have: a jump's dependence
closure can pull a formal-in into a unit's slice *without* a
corresponding summary edge (summary edges encode conventional
dependence only; the jump rule is exactly the dependence the
conventional PDG misses).  The *binding completion* step patches this:
whenever formal-in *i* of a unit is in the slice, the matching
actual-in joins at every call site whose CALL node is already in the
slice — completing parameter bindings at included call sites only, so
no new calling context is invented.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Set

from repro.lang.ast_nodes import MAIN_UNIT
from repro.lang.errors import SliceError, UnreachableCriterionError
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis
from repro.sdg.builder import SDGAnalysis, sdg_for_analysis
from repro.sdg.closure import SDGClosureIndex, _popcount, ensure_sdg_index
from repro.service.resilience import budget_round, budget_tick
from repro.slicing.agrawal import MAX_TRAVERSALS
from repro.slicing.common import (
    SliceResult,
    nearest_in_slice,
    reassociate_labels,
)
from repro.slicing.criterion import (
    ResolvedCriterion,
    SlicingCriterion,
    resolve_criterion,
)

ALGORITHM = "interprocedural"


@dataclass(frozen=True)
class SDGResolvedCriterion:
    """A criterion located in one unit of a multi-procedure program."""

    criterion: SlicingCriterion
    unit: str
    node_id: int
    seeds: FrozenSet[int]


def resolve_sdg_criterion(
    sdg: SDGAnalysis, criterion: SlicingCriterion
) -> SDGResolvedCriterion:
    """Locate the criterion across units.

    The unit is the one named by ``criterion.proc`` when given
    (``"main"`` names the top-level unit); otherwise the single unit
    with a statement at the criterion line.  Error messages name the
    procedures involved — ambiguity lists every candidate, a criterion
    in a never-called procedure says which procedure is dead.
    """
    if criterion.proc is not None:
        unit = criterion.proc
        if unit not in sdg.procs:
            known = ", ".join(repr(name) for name in sdg.procs)
            raise SliceError(
                f"criterion names unknown procedure {unit!r}; "
                f"program units are {known}"
            )
        candidates = [unit] if _has_line(sdg, unit, criterion.line) else []
        if not candidates:
            lines = sdg.procs[unit].analysis.statement_lines()
            raise SliceError(
                f"no statement at line {criterion.line} in proc "
                f"{unit!r}; its statement lines are {lines}"
            )
    else:
        candidates = [
            unit
            for unit in sdg.procs
            if _has_line(sdg, unit, criterion.line)
        ]
        if not candidates:
            per_unit = {
                unit: info.analysis.statement_lines()
                for unit, info in sdg.procs.items()
            }
            raise SliceError(
                f"no statement at line {criterion.line}; "
                f"statement lines per unit are {per_unit}"
            )
        if len(candidates) > 1:
            named = ", ".join(repr(unit) for unit in candidates)
            raise SliceError(
                f"criterion line {criterion.line} is ambiguous: "
                f"statements of procedures {named} share it; qualify "
                "the criterion with a procedure (slang slice --proc)"
            )
    unit = candidates[0]
    if unit != MAIN_UNIT and unit not in sdg.graph.reachable:
        raise UnreachableCriterionError(
            f"criterion {criterion} lies in procedure {unit!r}, which "
            "is never called: no call path from main reaches it, so "
            "every slice with respect to it is empty; add a call or "
            "pick a criterion in a live procedure"
        )
    try:
        resolved = resolve_criterion(sdg.procs[unit].analysis, criterion)
    except UnreachableCriterionError as error:
        if unit == MAIN_UNIT:
            raise
        raise UnreachableCriterionError(
            f"{error} (the statement is in proc {unit!r})"
        ) from None
    return SDGResolvedCriterion(
        criterion=criterion,
        unit=unit,
        node_id=resolved.node_id,
        seeds=resolved.seeds,
    )


def _has_line(sdg: SDGAnalysis, unit: str, line: int) -> bool:
    return bool(sdg.procs[unit].analysis.nodes_at_line(line))


@dataclass
class SDGSliceResult:
    """An interprocedural slice: one node set per unit (local ids)."""

    sdg: SDGAnalysis
    resolved: SDGResolvedCriterion
    per_proc: Dict[str, FrozenSet[int]]
    label_maps: Dict[str, Dict[str, int]]
    traversals: int = 0
    pass1_visits: int = 0
    pass2_visits: int = 0
    pass1_procs: FrozenSet[str] = frozenset()
    notes: List[str] = field(default_factory=list)
    algorithm: str = ALGORITHM
    #: Whether the whole-SDG closure index served this slice's
    #: fixpoints, and what its lifecycle did during the call.  Protocol
    #: payloads never include these (index on/off is byte-invisible);
    #: the service aggregates them into ``slang_sdg_index_*``.
    index_used: bool = False
    index_builds: int = 0
    index_mask_hits: int = 0
    index_pressure_skips: int = 0
    index_salvages: int = 0

    @property
    def criterion(self) -> SlicingCriterion:
        return self.resolved.criterion

    def units(self) -> List[str]:
        """Units with at least one slice member, SDG order."""
        return [
            unit for unit in self.sdg.procs if self.per_proc.get(unit)
        ]

    def statement_nodes(self, unit: str) -> List[int]:
        from repro.cfg.graph import NodeKind

        cfg = self.sdg.procs[unit].analysis.cfg
        return [
            node_id
            for node_id in sorted(self.per_proc.get(unit, ()))
            if cfg.nodes[node_id].kind
            not in (NodeKind.ENTRY, NodeKind.EXIT)
        ]

    def global_nodes(self) -> FrozenSet[int]:
        out: Set[int] = set()
        for unit, nodes in self.per_proc.items():
            offset = self.sdg.procs[unit].offset
            out.update(offset + node_id for node_id in nodes)
        return frozenset(out)

    def lines(self) -> List[int]:
        lines: Set[int] = set()
        for unit in self.units():
            cfg = self.sdg.procs[unit].analysis.cfg
            lines.update(
                cfg.nodes[n].line for n in self.statement_nodes(unit)
            )
        return sorted(lines)

    def as_slice_result(self) -> SliceResult:
        """Project onto the main unit as a registry-shaped
        :class:`SliceResult`.

        On a degenerate (single-unit) program this *is* the whole
        answer and is node-for-node comparable with the
        intraprocedural algorithms; on a multi-procedure program the
        projection covers the main unit only and the full result rides
        along as ``.sdg_result`` with a note naming the other units.
        """
        main = self.sdg.procs[MAIN_UNIT]
        nodes = frozenset(self.per_proc.get(MAIN_UNIT, frozenset()))
        if self.resolved.unit == MAIN_UNIT:
            resolved = ResolvedCriterion(
                criterion=self.criterion,
                node_id=self.resolved.node_id,
                seeds=self.resolved.seeds,
            )
        else:
            # The criterion statement lives in another unit; there is
            # no main-local criterion node to point at.
            resolved = ResolvedCriterion(
                criterion=self.criterion, node_id=-1, seeds=frozenset()
            )
        notes = list(self.notes)
        others = [u for u in self.units() if u != MAIN_UNIT]
        if others:
            notes.append(
                "interprocedural slice spans procedures: "
                + ", ".join(others)
            )
        result = SliceResult(
            algorithm=ALGORITHM,
            resolved=resolved,
            nodes=nodes,
            analysis=main.analysis,
            traversals=self.traversals,
            label_map=dict(self.label_maps.get(MAIN_UNIT, {})),
            notes=notes,
        )
        result.sdg_result = self
        return result

    def describe(self) -> str:
        lines = [
            f"interprocedural slice w.r.t. {self.criterion} "
            f"({sum(len(self.statement_nodes(u)) for u in self.units())} "
            f"statements across {len(self.units())} unit(s), "
            f"{self.traversals} traversals)"
        ]
        for unit in self.units():
            cfg = self.sdg.procs[unit].analysis.cfg
            lines.append(f"  [{unit}]")
            for node_id in self.statement_nodes(unit):
                node = cfg.nodes[node_id]
                lines.append(
                    f"  {node_id:>3}  line {node.line:<3} {node.text}"
                )
            for label, node_id in sorted(
                self.label_maps.get(unit, {}).items()
            ):
                lines.append(f"    label {label} -> node {node_id}")
        return "\n".join(lines)


class _TwoPassState:
    """Working state of one slice computation.

    ``s1`` holds the pass-1-marked vertices per unit (the ones whose
    dependence may still ascend into callers); ``s2`` holds everything
    marked (pass 2's superset).  Both only grow, and every rule below is
    monotone, so iterating the rules to a joint fixed point is sound
    regardless of order — which is what lets the Fig. 7 jump rule (which
    adds vertices *outside* any closure call) compose with the two-pass
    crossings without delta bookkeeping.
    """

    def __init__(
        self, sdg: SDGAnalysis, index: Optional[SDGClosureIndex] = None
    ) -> None:
        self.sdg = sdg
        self.index = index
        self.s1: Dict[str, Set[int]] = {unit: set() for unit in sdg.procs}
        self.s2: Dict[str, Set[int]] = {unit: set() for unit in sdg.procs}
        self.pass1_visits = 0
        self.pass2_visits = 0
        self.mask_hits = 0

    @property
    def pass1_reached(self) -> Set[str]:
        return {unit for unit, nodes in self.s1.items() if nodes}

    def fixpoint(self) -> None:
        """Run the two-pass rules to a joint fixed point:

        * pass-1 expansion: ``s1[u]`` closed under *u*'s local graph;
        * ascent (pass 1 only): formal-in *i* ∈ ``s1[u]`` puts actual-in
          *i* of every call site of *u* into the caller's ``s1``; *u*'s
          ENTRY ∈ ``s1[u]`` puts every CALL node invoking *u* there too;
        * ``s2 ⊇ s1``;
        * pass-2 expansion: ``s2[u]`` closed under *u*'s local graph;
        * descent (pass 2): actual-out *j* ∈ ``s2[u]`` puts the callee's
          formal-out *j* into the callee's ``s2``;
        * binding completion: formal-in *i* ∈ ``s2[q]`` puts actual-in
          *i* into ``s2[p]`` for call sites whose CALL node ∈ ``s2[p]``.

        With the whole-SDG closure index available, the joint fixed
        point is computed as mask closures (``_fixpoint_masked``); the
        rule set is identical and monotone, so the fixed point is too —
        the differential suite holds the two paths node-for-node equal.
        The worklist below remains the reference and the fallback when
        the index is disabled or deferred under deadline pressure.
        """
        if self.index is not None:
            self._fixpoint_masked()
        else:
            self._fixpoint_worklist()

    def _fixpoint_masked(self) -> None:
        index = self.index
        budget_round("sdg-two-pass")
        budget_tick("sdg-pass1")
        s1_mask = index.encode(self.s1)
        s2_mask = index.encode(self.s2)
        before1 = _popcount(s1_mask)
        before2 = _popcount(s2_mask | s1_mask)
        s1_closed, s2_closed, hits = index.two_pass_masks(s1_mask, s2_mask)
        budget_tick("sdg-pass2")
        self.mask_hits += hits
        # Honest work accounting: vertices newly marked by this call
        # (the worklist path counts per-closure growth instead, so the
        # two paths' visit counters legitimately differ — they measure
        # work done, and the index does less of it).
        self.pass1_visits += _popcount(s1_closed) - before1
        self.pass2_visits += _popcount(s2_closed) - before2
        decoded1 = index.decode(s1_closed)
        decoded2 = index.decode(s2_closed)
        for unit in self.s1:
            self.s1[unit] = decoded1[unit]
            self.s2[unit] = decoded2[unit]

    def _fixpoint_worklist(self) -> None:
        sdg = self.sdg
        while True:
            # One joint pass-1/pass-2 sweep is one fixed-point round:
            # the traversal cap bounds how long a pathological call
            # graph may churn, with a structured sdg-* phase name.
            budget_round("sdg-two-pass")
            changed = False
            # Pass-1 expansion + ascent.
            for unit, info in sdg.procs.items():
                nodes = self.s1[unit]
                if not nodes:
                    continue
                budget_tick("sdg-pass1")
                closure = info.local.backward_closure(nodes)
                if len(closure) > len(nodes):
                    self.pass1_visits += len(closure) - len(nodes)
                    nodes |= closure
                    changed = True
                entry_id = info.analysis.cfg.entry_id
                for site in sdg.sites_of[unit]:
                    caller = self.s1[site.caller]
                    if entry_id in nodes and site.call_id not in caller:
                        caller.add(site.call_id)
                        changed = True
                    for index, f_in in info.formal_in.items():
                        if f_in not in nodes:
                            continue
                        ai = site.actual_in.get(index)
                        if ai is not None and ai not in caller:
                            caller.add(ai)
                            changed = True
            # s2 ⊇ s1, pass-2 expansion, descent.
            for unit, info in sdg.procs.items():
                nodes = self.s2[unit]
                nodes |= self.s1[unit]
                if not nodes:
                    continue
                budget_tick("sdg-pass2")
                closure = info.local.backward_closure(nodes)
                if len(closure) > len(nodes):
                    self.pass2_visits += len(closure) - len(nodes)
                    nodes |= closure
                    changed = True
                for site in info.sites:
                    callee = sdg.procs[site.callee]
                    for index, ao in site.actual_out.items():
                        if ao not in nodes:
                            continue
                        f_out = callee.formal_out.get(index)
                        if (
                            f_out is not None
                            and f_out not in self.s2[site.callee]
                        ):
                            self.s2[site.callee].add(f_out)
                            changed = True
            # Binding completion (see module docstring).
            for unit, info in sdg.procs.items():
                nodes = self.s2[unit]
                if not nodes:
                    continue
                for index, f_in in info.formal_in.items():
                    if f_in not in nodes:
                        continue
                    for site in sdg.sites_of[unit]:
                        caller = self.s2[site.caller]
                        if site.call_id not in caller:
                            continue
                        ai = site.actual_in.get(index)
                        if ai is not None and ai not in caller:
                            caller.add(ai)
                            changed = True
            if not changed:
                return

    # -- Agrawal's jump correction, per unit ---------------------------

    def jump_round(self) -> bool:
        """One Fig. 7 traversal per unit with slice members.

        Mirrors :func:`repro.slicing.agrawal.agrawal_slice`: pre-order
        over the unit's postdominator tree, live additions (the jump
        plus its unit-local dependence closure join the working set
        immediately), EXIT counting as in the slice.  A jump in a
        pass-1 unit joins ``s1`` (its dependences may ascend); one in a
        pass-2-only unit joins ``s2`` alone.  Returns True when any
        unit admitted a jump; the caller then re-runs the fixed point
        so crossings the jump closures opened are propagated.
        """
        sdg = self.sdg
        pass1 = self.pass1_reached
        added_any = False
        for unit, info in sdg.procs.items():
            current = self.s2[unit]
            if not current:
                continue
            analysis = info.analysis
            cfg = analysis.cfg
            live_s1 = unit in pass1
            # The index pre-filters the Fig. 7 schedule to the unit's
            # jumps (same pre-order, non-jumps skipped either way).
            if self.index is not None:
                schedule = self.index.jump_preorder[unit]
            else:
                schedule = analysis.pdt.preorder()
            for node_id in schedule:
                node = cfg.nodes.get(node_id)
                if node is None or not node.is_jump or node_id in current:
                    continue
                budget_tick("sdg-fig7-jump")
                npd = nearest_in_slice(
                    analysis.pdt, node_id, current, cfg.exit_id
                )
                nls = nearest_in_slice(
                    analysis.lst, node_id, current, cfg.exit_id
                )
                if npd == nls:
                    continue
                closure = info.local.backward_closure([node_id])
                current.add(node_id)
                current |= closure
                if live_s1:
                    self.s1[unit].add(node_id)
                    self.s1[unit] |= closure
                added_any = True
        return added_any


def sdg_slice(
    sdg: SDGAnalysis,
    criterion: SlicingCriterion,
    analysis: Optional[ProgramAnalysis] = None,
) -> SDGSliceResult:
    """Slice *sdg* with respect to *criterion* (see module docstring).

    ``analysis`` (when the caller has it) carries the incremental
    bookkeeping that lets the whole-SDG closure index be salvaged from
    the unit cache instead of rebuilt.
    """
    resolved = resolve_sdg_criterion(sdg, criterion)
    index, index_events = ensure_sdg_index(sdg, analysis)
    with trace_span(
        "sdg-slice", unit=resolved.unit, indexed=index is not None
    ) as span:
        state = _TwoPassState(sdg, index=index)
        state.s1[resolved.unit].update(resolved.seeds)
        traversals = 0
        rounds = 0
        while True:
            rounds += 1
            if rounds > MAX_TRAVERSALS:
                raise AssertionError(
                    "interprocedural Fig. 7 fixed point failed to "
                    "converge; this is a bug"
                )
            budget_round("sdg-slice-round")
            with trace_span("sdg-two-pass", round=rounds):
                state.fixpoint()
            with trace_span("sdg-jump-round", round=rounds):
                added = state.jump_round()
            if not added:
                break
            traversals += 1

        per_proc = {
            unit: frozenset(nodes)
            for unit, nodes in state.s2.items()
            if nodes
        }
        label_maps = {
            unit: reassociate_labels(
                sdg.procs[unit].analysis, per_proc[unit]
            )
            for unit in per_proc
        }
        span.set(
            units=len(per_proc),
            pass1_visits=state.pass1_visits,
            pass2_visits=state.pass2_visits,
            traversals=traversals,
            mask_hits=state.mask_hits,
        )
        return SDGSliceResult(
            sdg=sdg,
            resolved=resolved,
            per_proc=per_proc,
            label_maps=label_maps,
            traversals=traversals,
            pass1_visits=state.pass1_visits,
            pass2_visits=state.pass2_visits,
            pass1_procs=frozenset(state.pass1_reached),
            index_used=index is not None,
            index_builds=index_events.get("builds", 0),
            index_mask_hits=state.mask_hits,
            index_pressure_skips=index_events.get("pressure_skips", 0),
            index_salvages=index_events.get("salvages", 0),
        )


def interprocedural_slice(
    analysis: ProgramAnalysis, criterion: SlicingCriterion
) -> SliceResult:
    """Registry adapter: slice via the SDG, projected onto the main
    unit (the full :class:`SDGSliceResult` rides along as
    ``.sdg_result``).  On a single-unit program the projection is the
    whole slice and is node-for-node identical to ``agrawal``.

    Incremental builds additionally consult the slice-result salvage
    tier: a slice recorded under an earlier version of the program is
    replayed when the edit provably cannot have changed it (see
    :mod:`repro.service.incremental`); only fully-computed results are
    recorded, so budget-degraded answers never enter the memo.
    """
    from repro.service.incremental import (
        record_sdg_slice,
        salvage_sdg_slice,
    )

    sdg = sdg_for_analysis(analysis)
    salvaged = salvage_sdg_slice(analysis, sdg, criterion)
    if salvaged is not None:
        return salvaged.as_slice_result()
    result = sdg_slice(sdg, criterion, analysis=analysis)
    # Record with the index lifecycle counters zeroed: a future replay
    # of this result did no index work, and must not re-report it.
    record_sdg_slice(
        analysis,
        sdg,
        criterion,
        replace(
            result,
            index_builds=0,
            index_mask_hits=0,
            index_pressure_skips=0,
            index_salvages=0,
        ),
    )
    return result.as_slice_result()
