"""Context-sensitive SDG closure indexes (DESIGN.md §15).

PR 5's condensed-PDG closure index amortizes the *intra*-unit closures,
but the two-pass interprocedural slicer still re-runs its crossing
worklist — ascent, descent, binding completion — from scratch for every
criterion.  This module lifts the index one level: two whole-SDG
reachability indexes over the flat global vertex space, partitioned by
the edges each HRB pass may traverse:

* the **ascend index** closes over {intra-unit data/control,
  call-control, summary} edges plus the pass-1 crossings (callee ENTRY →
  CALL node, formal-in → actual-in) — everything pass 1 may walk;
* the **descend index** closes over the same intra-unit edges plus the
  pass-2 crossings (actual-out → formal-out) — everything pass 2 may
  walk.

Each side is an iterative-Tarjan SCC condensation (shared helper in
:mod:`repro.pdg.closure`) with a suppliers-first one-pass closure sweep,
storing *node-space* bitmasks over a single global universe of SDG
vertices (unit-local id + unit offset = global bit, the dense layout
:mod:`repro.sdg.builder` already assigns).  A whole-program pass-1
closure then collapses to one mask OR per seed component.

Pass 2 is *not* pure reachability: binding completion — formal-in *i* ∈
S2[q] adds actual-in *i* at a call site only when the site's CALL node
is already in S2 — is a conditional (two-antecedent) rule no static
edge can encode without inventing calling contexts.  The index instead
precomputes the (formal-in, CALL, actual-in) bit triples and iterates
{descend closure; fire ready bindings} to the same least fixed point the
reference worklist computes; the rule set is identical and monotone, so
the fixed point is too (the differential suite enforces node-for-node
identity).

What stays iterative: Agrawal's per-unit Fig. 7 jump rounds.  A jump's
npd-vs-nls verdict depends on the *current* slice membership, which
changes as jumps are admitted — that is inherently sequential (see
DESIGN.md §15 for why precomputing it would change results).  But each
round's live additions are unit-local closures already served by the
per-unit PDG index, and every post-jump re-fixpoint is two mask ORs
here, so the closure portion of the whole computation is O(masks).

Lifecycle mirrors :mod:`repro.pdg.closure`: lazily built behind the same
``--closure-index`` knob (plus an SDG-only override for differential
benchmarks), budget-ticked under the ``closure-index`` phase, traced,
skipped under deadline pressure, and invalidated when the stitched
graphs mutate.  Incremental programs additionally salvage the whole
index from the unit cache under the program's unit-digest vector plus
its per-unit formal-dependence pairs — the same assumptions the summary
edges were computed under.  Any semantic edit changes a unit digest and
therefore rebuilds; recursive SCCs carry no special case because the
whole-graph index never survives *any* digest change.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.bitset import iter_bits, popcount as _popcount
from repro.obs.tracer import trace_span
from repro.pdg.closure import (
    closure_index_enabled,
    condense,
    index_build_allowed,
)
from repro.sdg.builder import SDGAnalysis
from repro.service.resilience import current_budget

#: SDG-level override: ``None`` follows the process-wide
#: ``--closure-index`` knob; True/False force just the SDG index (the
#: benchmark's reference configuration is per-unit index on, SDG index
#: off — exactly the pre-index slicer).
_forced: Optional[bool] = None

_create_lock = threading.Lock()


def sdg_index_enabled() -> bool:
    if _forced is not None:
        return _forced
    return closure_index_enabled()


@contextlib.contextmanager
def sdg_closure_index(enabled: Optional[bool]) -> Iterator[None]:
    """Temporarily force just the SDG index on or off (tests, benches);
    ``None`` restores deference to the process-wide knob."""
    global _forced
    previous = _forced
    _forced = enabled if enabled is None else bool(enabled)
    try:
        yield
    finally:
        _forced = previous


class _ClosureSide:
    """One edge partition's condensation: node → component, component →
    node-space closure mask (own members ∪ every transitive supplier's
    members).  Immutable once built."""

    __slots__ = ("_comp_of", "_comp_mask")

    def __init__(self, comp_of: Dict[int, int], comp_mask: List[int]) -> None:
        self._comp_of = comp_of
        self._comp_mask = comp_mask

    @property
    def component_count(self) -> int:
        return len(self._comp_mask)

    def closure_mask(self, mask: int) -> int:
        """The backward closure of a seed mask, as a mask — one OR per
        seed component (seeds already covered by an earlier component's
        mask are skipped for free)."""
        comp_of = self._comp_of
        comp_mask = self._comp_mask
        out = 0
        while mask:
            low = mask & -mask
            out |= comp_mask[comp_of[low.bit_length() - 1]]
            mask &= ~out
        return out


class SDGClosureIndex:
    """The paired ascend/descend indexes plus the binding triples of one
    stitched SDG.  Immutable once built; ``signature`` snapshots the
    per-unit graph shape so any SDG mutation is detected and the index
    discarded (mirroring ``ProgramDependenceGraph._closure_index``)."""

    __slots__ = (
        "ascend",
        "descend",
        "bindings",
        "unit_ranges",
        "jump_preorder",
        "vertex_count",
        "signature",
    )

    def __init__(
        self,
        ascend: _ClosureSide,
        descend: _ClosureSide,
        bindings: List[Tuple[int, int, int]],
        unit_ranges: Dict[str, Tuple[int, int]],
        jump_preorder: Dict[str, Tuple[int, ...]],
        signature: Tuple,
    ) -> None:
        self.ascend = ascend
        self.descend = descend
        self.bindings = bindings
        self.unit_ranges = unit_ranges
        #: Per unit: its jump nodes in postdominator-tree pre-order — the
        #: exact Fig. 7 visit schedule, precomputed so a jump round scans
        #: the (few) jumps instead of re-walking the whole tree and
        #: kind-testing every node.  Pure function of the unit's CFG and
        #: PDT, so caching it cannot change any verdict.
        self.jump_preorder = jump_preorder
        self.vertex_count = sum(size for _, size in unit_ranges.values())
        self.signature = signature

    def encode(self, per_unit: Dict[str, Iterable[int]]) -> int:
        """Per-unit local node sets → one global mask."""
        mask = 0
        ranges = self.unit_ranges
        for unit, nodes in per_unit.items():
            offset = ranges[unit][0]
            for node_id in nodes:
                mask |= 1 << (offset + node_id)
        return mask

    def decode(self, mask: int) -> Dict[str, Set[int]]:
        """One global mask → per-unit local node sets (every unit keyed,
        empty sets included, so callers can assign wholesale)."""
        out: Dict[str, Set[int]] = {}
        for unit, (offset, size) in self.unit_ranges.items():
            sub = (mask >> offset) & ((1 << size) - 1)
            out[unit] = set(iter_bits(sub))
        return out

    def two_pass_masks(
        self, s1_mask: int, s2_mask: int
    ) -> Tuple[int, int, int]:
        """Close (s1, s2) under the two-pass rules; returns the closed
        masks plus the number of mask-closure lookups performed.

        s1 is pure ascend reachability.  s2 starts from ``s2 | s1`` and
        alternates descend closure with binding completion until no
        binding fires — the same monotone rule set as the reference
        worklist, hence the same least fixed point.
        """
        hits = 1
        s1 = self.ascend.closure_mask(s1_mask)
        s2 = s2_mask | s1
        bindings = self.bindings
        while True:
            s2 = self.descend.closure_mask(s2)
            hits += 1
            added = 0
            for f_in_bit, call_bit, ai_bit in bindings:
                if (
                    s2 & f_in_bit
                    and s2 & call_bit
                    and not s2 & ai_bit
                ):
                    added |= ai_bit
            if not added:
                return s1, s2, hits
            s2 |= added


def _edge_signature(sdg: SDGAnalysis) -> Tuple:
    """A cheap per-unit shape snapshot: any node or edge added to any
    stitched local graph changes it, so a stale index can never serve a
    mutated SDG."""
    return tuple(
        (unit, info.offset, info.size, len(info.local), len(info.local.nodes))
        for unit, info in sdg.procs.items()
    )


def _build_side(
    vertex_count: int, suppliers: Dict[int, List[int]]
) -> _ClosureSide:
    def suppliers_of(node: int) -> Sequence[int]:
        return suppliers.get(node, ())

    comp_of, comp_nodes = condense(range(vertex_count), suppliers_of)
    budget = current_budget()
    comp_mask: List[int] = []
    for comp, members in enumerate(comp_nodes):
        if budget is not None:
            budget.tick("closure-index")
        mask = 0
        for member in members:
            mask |= 1 << member
        for member in members:
            for supplier in suppliers_of(member):
                supplier_comp = comp_of[supplier]
                if supplier_comp != comp:
                    mask |= comp_mask[supplier_comp]
        comp_mask.append(mask)
    return _ClosureSide(comp_of, comp_mask)


def build_sdg_closure_index(sdg: SDGAnalysis) -> SDGClosureIndex:
    """Assemble both edge partitions and condense each.

    The *traversal adjacency* maps a vertex to every vertex the slicer
    would add on seeing it, in global ids — unit-local dependences for
    both sides, plus the pass-specific crossings.  (For the ascend side
    the crossings run callee → caller: from a callee's ENTRY the
    traversal reaches the CALL node, from a formal-in the matching
    actual-ins — the direction pass 1 walks them.)
    """
    unit_ranges: Dict[str, Tuple[int, int]] = {
        unit: (info.offset, info.size) for unit, info in sdg.procs.items()
    }
    total = sum(size for _, size in unit_ranges.values())
    with trace_span("sdg-index-build", vertices=total) as span:
        local_adj: Dict[int, List[int]] = {}
        ascend_adj: Dict[int, List[int]] = {}
        descend_adj: Dict[int, List[int]] = {}
        bindings: List[Tuple[int, int, int]] = []
        for unit, info in sdg.procs.items():
            offset = info.offset
            local = info.local
            for node_id in local.nodes:
                deps = local.dependences_of(node_id)
                if deps:
                    local_adj[offset + node_id] = [
                        offset + dep for dep in deps
                    ]
            # Pass-1 crossings out of this (callee) unit.
            entry_global = offset + info.analysis.cfg.entry_id
            for site in sdg.sites_of[unit]:
                caller_offset = sdg.procs[site.caller].offset
                ascend_adj.setdefault(entry_global, []).append(
                    caller_offset + site.call_id
                )
                for index, f_in in info.formal_in.items():
                    ai = site.actual_in.get(index)
                    if ai is not None:
                        ascend_adj.setdefault(offset + f_in, []).append(
                            caller_offset + ai
                        )
                        bindings.append(
                            (
                                1 << (offset + f_in),
                                1 << (caller_offset + site.call_id),
                                1 << (caller_offset + ai),
                            )
                        )
            # Pass-2 crossings out of this (caller) unit.
            for site in info.sites:
                callee = sdg.procs[site.callee]
                for index, ao in site.actual_out.items():
                    f_out = callee.formal_out.get(index)
                    if f_out is not None:
                        descend_adj.setdefault(offset + ao, []).append(
                            callee.offset + f_out
                        )

        def merged(extra: Dict[int, List[int]]) -> Dict[int, List[int]]:
            out = dict(local_adj)
            for node, targets in extra.items():
                base = out.get(node)
                out[node] = targets if base is None else base + targets
            return out

        ascend = _build_side(total, merged(ascend_adj))
        descend = _build_side(total, merged(descend_adj))
        jump_preorder = {
            unit: tuple(
                node_id
                for node_id in info.analysis.pdt.preorder()
                if (node := info.analysis.cfg.nodes.get(node_id)) is not None
                and node.is_jump
            )
            for unit, info in sdg.procs.items()
        }
        span.set(
            ascend_components=ascend.component_count,
            descend_components=descend.component_count,
            bindings=len(bindings),
        )
        return SDGClosureIndex(
            ascend=ascend,
            descend=descend,
            bindings=bindings,
            unit_ranges=unit_ranges,
            jump_preorder=jump_preorder,
            signature=_edge_signature(sdg),
        )


# ---------------------------------------------------------------------------
# Lifecycle: knob, pressure, invalidation, build lock, salvage
# ---------------------------------------------------------------------------


def _build_lock(sdg: SDGAnalysis) -> threading.Lock:
    lock = getattr(sdg, "_closure_index_lock", None)
    if lock is None:
        with _create_lock:
            lock = getattr(sdg, "_closure_index_lock", None)
            if lock is None:
                lock = threading.Lock()
                sdg._closure_index_lock = lock
    return lock


def _salvage_key(analysis, sdg: SDGAnalysis) -> Tuple[Optional[object], Optional[str]]:
    """(unit cache, cache key) for whole-index salvage, or (None, None).

    The key covers the unit-digest vector (the program modulo
    formatting, under the same analysis options) plus every unit's
    formal-dependence pairs — the exact assumptions the summary edges
    rest on.  Equal digests imply the identical stitched SDG (same node
    ids, offsets, and summary-edge least fixpoint), so replaying the
    index is sound; any semantic edit changes a digest and misses.
    """
    from repro.service.incremental import incremental_enabled, units_digest

    if analysis is None or not incremental_enabled():
        return None, None
    cache = getattr(analysis, "_unit_cache", None)
    digests = getattr(analysis, "_unit_digests", None)
    pairs = getattr(sdg, "_unit_pairs", None)
    if cache is None or digests is None or pairs is None:
        return None, None
    digest = hashlib.sha256()
    digest.update(b"sdg-index|v1|")
    digest.update(units_digest(digests).encode("utf-8"))
    for unit in sorted(pairs):
        joined = ",".join(f"{i}:{j}" for i, j in sorted(pairs[unit]))
        digest.update(f"|{unit}=[{joined}]".encode("utf-8"))
    return cache, digest.hexdigest()


def ensure_sdg_index(
    sdg: SDGAnalysis, analysis=None
) -> Tuple[Optional[SDGClosureIndex], Dict[str, int]]:
    """Return (index, events) — the memoized index when fresh, else a
    salvaged or newly built one; ``None`` when disabled or deferred
    under deadline pressure (callers then take the worklist path).

    ``events`` reports what happened this call (``builds``,
    ``salvages``, ``pressure_skips``), feeding the per-slice counters
    the service aggregates into ``slang_sdg_index_*``.
    """
    events: Dict[str, int] = {}
    if not sdg_index_enabled():
        return None, events
    signature = _edge_signature(sdg)
    index = getattr(sdg, "_closure_index", None)
    if index is not None and index.signature == signature:
        return index, events
    if not index_build_allowed():
        events["pressure_skips"] = 1
        return None, events
    with _build_lock(sdg):
        index = getattr(sdg, "_closure_index", None)
        if index is not None and index.signature == signature:
            return index, events
        cache, key = _salvage_key(analysis, sdg)
        index = None
        if cache is not None:
            cached = cache.get_index(key)
            if (
                cached is not None
                and cached.signature == signature
            ):
                index = cached
                events["salvages"] = 1
                cache.stats.record("indexes_salvaged")
        if index is None:
            index = build_sdg_closure_index(sdg)
            events["builds"] = 1
            if cache is not None:
                cache.put_index(key, index)
        sdg._closure_index = index
    return index, events
