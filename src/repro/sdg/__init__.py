"""System-dependence-graph (SDG) subsystem: interprocedural slicing.

Modules
-------
``callgraph``
    Call-graph construction over a parsed program (pure AST level — the
    CFG builder uses it to shape call-site nodes without an import
    cycle).
``params``
    The value-result parameter model: per-procedure formals (including
    the implicit ``$in`` input cursor) and per-call-site actuals.
``builder``
    Per-procedure analyses stitched into an :class:`SDGAnalysis` with
    globally-numbered vertices and interprocedural edges.
``summary``
    Horwitz–Reps–Binkley summary edges (actual-in → actual-out) by
    fixed point over the call graph.
``slicer``
    The classic two-pass backward interprocedural slicer, with
    Agrawal's Fig. 7 jump correction applied per procedure.

Only :mod:`repro.sdg.callgraph` is imported eagerly; import the other
modules directly (they pull in the whole analysis stack).
"""

from repro.sdg.callgraph import CallGraph, build_call_graph  # noqa: F401
