"""System dependence graph construction (DESIGN.md §12).

The SDG is built as one :class:`ProgramAnalysis` per unit — the entire
intraprocedural pipeline (CFG, postdominator tree, lexical successor
tree, control/data dependence, PDG, closure index) is reused per
procedure, exactly as Horwitz–Reps–Binkley stitch per-procedure PDGs —
plus the interprocedural glue:

* a *local graph* per unit: the unit's PDG, plus control edges from each
  CALL node to its actual-in/actual-out chain (an actual parameter is
  meaningless without its call), plus the summary edges
  :mod:`repro.sdg.summary` computes;
* *parameter bindings* per call site: actual-in *i* ↔ formal-in *i* of
  the callee, formal-out *j* ↔ actual-out *j*;
* the *call binding*: CALL node ↔ callee ENTRY.

Node ids stay unit-local everywhere (the per-unit trees and the Fig. 7
jump tests only make sense per procedure); each unit gets a dense global
id ``offset`` so results can also be reported as one flat vertex space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.cfg.graph import NodeKind
from repro.lang.ast_nodes import MAIN_UNIT, Program
from repro.lang.parser import parse_program
from repro.obs.tracer import trace_span
from repro.pdg.builder import ProgramAnalysis, analyze_program
from repro.pdg.graph import CONTROL, ProgramDependenceGraph
from repro.sdg.callgraph import CallGraph, build_call_graph
from repro.sdg.params import ParamSignature, signatures
from repro.service.resilience import budget_check_nodes

#: Edge kind of the Horwitz–Reps–Binkley summary edges (actual-in →
#: actual-out; transitive dependence through the callee).
SUMMARY = "summary"


@dataclass
class CallSiteNodes:
    """The node chain of one call site, by role (unit-local ids)."""

    caller: str
    callee: str
    call_id: int
    #: parameter index → actual-in node id (every position has one).
    actual_in: Dict[int, int] = field(default_factory=dict)
    #: parameter index → actual-out node id (only copy-out positions).
    actual_out: Dict[int, int] = field(default_factory=dict)


@dataclass
class ProcedureInfo:
    """One unit's share of the SDG."""

    name: str
    analysis: ProgramAnalysis
    #: The unit-local slicing graph: PDG ∪ call-control ∪ summary edges.
    local: ProgramDependenceGraph
    #: Global vertex id of this unit's local node 0.
    offset: int
    #: parameter index → formal-in / formal-out node id (procs only).
    formal_in: Dict[int, int] = field(default_factory=dict)
    formal_out: Dict[int, int] = field(default_factory=dict)
    #: Call sites *inside* this unit, in lexical order.
    sites: List[CallSiteNodes] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.analysis.cfg.nodes)


@dataclass
class SDGAnalysis:
    """The stitched system dependence graph of one program."""

    program: Program
    graph: CallGraph
    signatures: Dict[str, ParamSignature]
    #: Unit name → per-unit share, main first, declaration order after.
    procs: Dict[str, ProcedureInfo]
    #: Callee name → the call sites that invoke it (across all units).
    sites_of: Dict[str, List[CallSiteNodes]]
    summary_edges: int = 0
    summary_iterations: int = 0

    def proc_of_global(self, global_id: int) -> str:
        """The unit owning a flat vertex id."""
        for name, info in self.procs.items():
            if info.offset <= global_id < info.offset + info.size:
                return name
        raise KeyError(f"global vertex {global_id} out of range")

    def global_id(self, unit: str, local_id: int) -> int:
        return self.procs[unit].offset + local_id

    @property
    def is_degenerate(self) -> bool:
        """True for a single-unit program (no procedures): the SDG is
        exactly the main unit's PDG and interprocedural slicing must
        coincide node-for-node with the intraprocedural algorithms."""
        return not self.program.procs


def _local_graph(analysis: ProgramAnalysis) -> ProgramDependenceGraph:
    """The unit's slicing graph: a copy of its PDG (the shared analysis
    object must not grow summary or call edges other algorithms would
    see) plus a control edge from every CALL node to each parameter node
    of its chain."""
    local = ProgramDependenceGraph()
    for node_id in analysis.pdg.nodes:
        local.add_node(node_id)
    for src, dst, kind, detail in analysis.pdg.edges():
        local.add_edge(src, dst, kind, detail)
    for call_id, chain in analysis.cfg.call_chains.items():
        for member in chain:
            if member != call_id:
                local.add_edge(call_id, member, CONTROL, "call")
    return local


def _site_nodes(analysis: ProgramAnalysis, unit: str) -> List[CallSiteNodes]:
    cfg = analysis.cfg
    sites: List[CallSiteNodes] = []
    for call_id in sorted(cfg.call_chains):
        call_node = cfg.nodes[call_id]
        site = CallSiteNodes(
            caller=unit, callee=call_node.call_name, call_id=call_id
        )
        for member in cfg.call_chains[call_id]:
            node = cfg.nodes[member]
            if node.kind is NodeKind.ACTUAL_IN:
                site.actual_in[node.param_index] = member
            elif node.kind is NodeKind.ACTUAL_OUT:
                site.actual_out[node.param_index] = member
        sites.append(site)
    return sites


def build_sdg(
    source_or_program: Union[str, Program],
    main_analysis: Optional[ProgramAnalysis] = None,
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    dominator_algorithm: str = "iterative",
) -> SDGAnalysis:
    """Build the SDG: one analysis per unit, stitched, summary edges
    computed to a fixed point.

    ``main_analysis`` lets the service reuse its cached main-unit
    analysis instead of rebuilding it; the remaining units are analysed
    with the same front-end options.
    """
    with trace_span("sdg-build") as span:
        if isinstance(source_or_program, str):
            with trace_span("parse", bytes=len(source_or_program)):
                program = parse_program(source_or_program)
        else:
            program = source_or_program
        if main_analysis is not None:
            program = main_analysis.program
        with trace_span("sdg-callgraph"):
            graph = build_call_graph(program)
            sigs = signatures(program, graph)

        procs: Dict[str, ProcedureInfo] = {}
        sites_of: Dict[str, List[CallSiteNodes]] = {
            unit: [] for unit in graph.units
        }
        offset = 0
        for unit in graph.units:
            with trace_span("sdg-unit", unit=unit):
                if unit == MAIN_UNIT and main_analysis is not None:
                    analysis = main_analysis
                else:
                    analysis = analyze_program(
                        program,
                        fuse_cond_goto=fuse_cond_goto,
                        chain_io=chain_io,
                        dominator_algorithm=dominator_algorithm,
                        unit=None if unit == MAIN_UNIT else unit,
                    )
                cfg = analysis.cfg
                info = ProcedureInfo(
                    name=unit,
                    analysis=analysis,
                    local=_local_graph(analysis),
                    offset=offset,
                )
                for node_id in cfg.formal_ins:
                    info.formal_in[cfg.nodes[node_id].param_index] = node_id
                for node_id in cfg.formal_outs:
                    info.formal_out[cfg.nodes[node_id].param_index] = node_id
                info.sites = _site_nodes(analysis, unit)
                for site in info.sites:
                    sites_of[site.callee].append(site)
                procs[unit] = info
                offset += info.size
                # Per-unit budget stop: the cumulative SDG vertex count
                # honors the request's node cap (the analysis cache only
                # guards the main unit), and the deadline is polled
                # between unit analyses.
                budget_check_nodes(offset, "sdg-build")

        sdg = SDGAnalysis(
            program=program,
            graph=graph,
            signatures=sigs,
            procs=procs,
            sites_of=sites_of,
        )
        if program.procs:
            from repro.sdg.summary import compute_summary_edges

            with trace_span("sdg-summary") as summary_span:
                compute_summary_edges(sdg)
                summary_span.set(
                    edges=sdg.summary_edges,
                    iterations=sdg.summary_iterations,
                )
        span.set(
            units=len(procs),
            vertices=offset,
            summary_edges=sdg.summary_edges,
        )
        return sdg


def sdg_for_analysis(analysis: ProgramAnalysis) -> SDGAnalysis:
    """The SDG of an already-analysed program, memoized on the analysis
    object (same lifetime argument as the slice memo: an evicted
    analysis takes its SDG with it).

    An analysis that came through the incremental path carries a
    ``_unit_cache``; its SDG is then assembled by
    :func:`repro.service.incremental.build_sdg_incremental`, which
    salvages untouched units' analyses and stitched local graphs and
    produces the identical graph (same node ids, same summary-edge
    sets) the monolithic build would.
    """
    sdg = getattr(analysis, "_sdg", None)
    if sdg is None:
        unit_cache = getattr(analysis, "_unit_cache", None)
        if unit_cache is not None:
            from repro.service.incremental import (
                build_sdg_incremental,
                incremental_enabled,
            )

            if incremental_enabled():
                sdg = build_sdg_incremental(
                    analysis.program, analysis, unit_cache
                )
        if sdg is None:
            sdg = build_sdg(analysis.program, main_analysis=analysis)
        analysis._sdg = sdg
    return sdg
