"""Call-graph construction for multi-procedure SL programs.

Pure AST level: this module imports nothing beyond
:mod:`repro.lang.ast_nodes`, so the CFG builder can consult it while
shaping call-site node chains without creating an import cycle (the
rest of the ``sdg`` package sits *above* the PDG layer).

The graph records, per unit (main or ``proc``), its call sites and
callees; derived facts — which units are reachable from main, which
transitively touch the input stream (and therefore carry the implicit
``$in`` parameter), whether any recursion exists — are computed once at
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lang.ast_nodes import (
    CallStmt,
    MAIN_UNIT,
    Program,
    Read,
    Stmt,
    walk_statements,
)


@dataclass
class CallGraph:
    """Who calls whom, plus the derived interprocedural facts."""

    #: Unit names in declaration order, main first.
    units: List[str] = field(default_factory=list)
    #: unit -> list of (call statement, callee name), in lexical order.
    sites: Dict[str, List[Tuple[CallStmt, str]]] = field(default_factory=dict)
    #: unit -> set of callee names.
    callees: Dict[str, Set[str]] = field(default_factory=dict)
    #: unit -> set of caller unit names.
    callers: Dict[str, Set[str]] = field(default_factory=dict)
    #: Units reachable from main through call edges (main included).
    reachable: Set[str] = field(default_factory=set)
    #: Units that read input directly or through a transitive callee —
    #: exactly the units that carry the implicit ``$in`` parameter.
    io_units: Set[str] = field(default_factory=set)
    #: Units on a call-graph cycle (self-calls included).
    recursive: Set[str] = field(default_factory=set)

    def calls_between(self, caller: str, callee: str) -> List[CallStmt]:
        return [
            stmt
            for stmt, name in self.sites.get(caller, [])
            if name == callee
        ]


def _unit_statements(body: List[Stmt]):
    for top in body:
        yield from walk_statements(top)


def _touches_input(body: List[Stmt]) -> bool:
    """Does the unit itself read input or test ``eof()``?"""
    for stmt in _unit_statements(body):
        if isinstance(stmt, Read):
            return True
        for attr in ("value", "cond", "subject"):
            expr = getattr(stmt, attr, None)
            if expr is not None and hasattr(expr, "calls"):
                if "eof" in expr.calls():
                    return True
        if isinstance(stmt, CallStmt):
            for arg in stmt.args:
                if "eof" in arg.calls():
                    return True
    return False


def build_call_graph(program: Program) -> CallGraph:
    """Build the call graph of *program* (valid call targets only;
    validation reports dangling ``call`` statements separately)."""
    graph = CallGraph()
    declared = {proc.name for proc in program.procs}
    direct_io: Set[str] = set()

    for unit_name, body in program.units():
        graph.units.append(unit_name)
        graph.sites[unit_name] = []
        graph.callees[unit_name] = set()
        graph.callers.setdefault(unit_name, set())
        for stmt in _unit_statements(body):
            if isinstance(stmt, CallStmt) and stmt.name in declared:
                graph.sites[unit_name].append((stmt, stmt.name))
                graph.callees[unit_name].add(stmt.name)
        if _touches_input(body):
            direct_io.add(unit_name)

    for caller, callees in graph.callees.items():
        for callee in callees:
            graph.callers.setdefault(callee, set()).add(caller)

    # Reachability from main.
    worklist = [MAIN_UNIT]
    while worklist:
        unit = worklist.pop()
        if unit in graph.reachable:
            continue
        graph.reachable.add(unit)
        worklist.extend(graph.callees.get(unit, ()))

    # Transitive input use: propagate backwards over call edges to a
    # fixed point (a caller of an io unit is an io unit).
    graph.io_units = set(direct_io)
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.callees.items():
            if caller not in graph.io_units and callees & graph.io_units:
                graph.io_units.add(caller)
                changed = True

    # Recursion: units that can reach themselves.
    for unit in graph.units:
        seen: Set[str] = set()
        stack = list(graph.callees.get(unit, ()))
        while stack:
            current = stack.pop()
            if current == unit:
                graph.recursive.add(unit)
                break
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.callees.get(current, ()))

    return graph
