"""Horwitz–Reps–Binkley summary edges.

A summary edge ``actual-in i → actual-out j`` at a call site records
that the callee's formal-out *j* transitively depends on its formal-in
*i* — the caller-local shortcut that lets the two-pass slicer cross a
call's effect without descending into the callee on the first pass.

The dependence "formal-out *j* on formal-in *i*" is itself computed from
the callee's local graph, which contains summary edges for the calls
*inside* the callee — so the computation iterates over the call graph to
a fixed point.  Each procedure's dependence set only grows (adding
summary edges adds dependence paths, never removes them), so the
worklist terminates; recursion needs no special casing — a recursive
procedure simply re-enters the worklist until its set stabilises.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Set, Tuple

from repro.lang.ast_nodes import MAIN_UNIT
from repro.obs.tracer import trace_span
from repro.service.resilience import budget_round, budget_tick


def formal_dependences(sdg, unit: str) -> FrozenSet[Tuple[int, int]]:
    """Pairs ``(i, j)``: formal-out *j* of *unit* depends on formal-in
    *i*, under the *current* summary-edge approximation of the calls
    inside *unit*."""
    info = sdg.procs[unit]
    pairs: Set[Tuple[int, int]] = set()
    for j, f_out in info.formal_out.items():
        closure = info.local.backward_closure([f_out])
        for i, f_in in info.formal_in.items():
            if f_in in closure:
                pairs.add((i, j))
    return frozenset(pairs)


def compute_summary_edges(sdg) -> None:
    """Add every summary edge to the callers' local graphs (fixed point
    over the call graph); records edge and iteration counts on *sdg*."""
    dep: Dict[str, FrozenSet[Tuple[int, int]]] = {}
    added: Set[Tuple[str, int, int]] = set()
    worklist = deque(unit for unit in sdg.procs if unit != MAIN_UNIT)
    queued = set(worklist)
    iterations = 0
    while worklist:
        unit = worklist.popleft()
        queued.discard(unit)
        iterations += 1
        # Each worklist pop is one fixed-point round: the traversal cap
        # (and its exhaust-budget fault) stops a runaway call graph with
        # a structured sdg-* phase, and the deadline is polled too.
        budget_round("sdg-summary")
        budget_tick("sdg-summary")
        pairs = formal_dependences(sdg, unit)
        if pairs == dep.get(unit):
            continue
        dep[unit] = pairs
        dirty_callers: Set[str] = set()
        for site in sdg.sites_of[unit]:
            caller = sdg.procs[site.caller]
            for i, j in pairs:
                ai = site.actual_in.get(i)
                ao = site.actual_out.get(j)
                if ai is None or ao is None:
                    continue
                key = (site.caller, ai, ao)
                if key in added:
                    continue
                added.add(key)
                caller.local.add_edge(ai, ao, "summary", unit)
                dirty_callers.add(site.caller)
        for caller_name in dirty_callers:
            if caller_name != MAIN_UNIT and caller_name not in queued:
                worklist.append(caller_name)
                queued.add(caller_name)
    sdg.summary_edges = len(added)
    sdg.summary_iterations = iterations


def summary_edge_list(sdg):
    """Every summary edge as ``(caller, ai_local, ao_local, callee)``,
    sorted — for DOT rendering, benches, and tests."""
    out = []
    for unit, info in sdg.procs.items():
        for src, dst, kind, detail in info.local.edges():
            if kind == "summary":
                out.append((unit, src, dst, detail))
    return sorted(out)
