"""The CFG interpreter.

Execution walks the control-flow graph node by node, so unstructured
control flow needs no special handling.  Semantics follow C where C is
deterministic and are *totalised* where C is not, so that any
syntactically valid program has a defined run (important when executing
thousands of randomly generated programs):

* uninitialised variables read as 0;
* division and modulo truncate toward zero (C); division by zero yields 0
  (totalised, documented);
* ``read(v)`` past the end of input stores 0 and leaves the cursor at the
  end (``eof()`` stays true);
* a step limit bounds runaway loops (:class:`InterpreterError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph, EdgeLabel, NodeKind
from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Call,
    CallStmt,
    Expr,
    If,
    Num,
    Program,
    Read,
    Return,
    Switch,
    Unary,
    Var,
    While,
    DoWhile,
    For,
    Write,
)
from repro.lang.errors import InterpreterError
from repro.lang.parser import parse_program

#: Default bound on executed CFG nodes per run.
DEFAULT_STEP_LIMIT = 200_000


@dataclass
class ExecutionResult:
    """Everything observable about one program run."""

    outputs: List[int]
    env: Dict[str, int]
    steps: int
    returned: Optional[int] = None
    #: node id -> recorded values of the watched variable, one per visit.
    trajectories: Dict[int, List[int]] = field(default_factory=dict)


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _trunc_mod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _trunc_div(a, b) * b


class Interpreter:
    """Executes one CFG repeatedly over different inputs.

    ``program`` enables procedure calls: each callee's CFG is built
    lazily on first call and executed on its own frame, with
    value-result copy-in/copy-out (the SL parameter semantics).  A CFG
    containing ``call`` nodes but no program to resolve them against
    raises a clean :class:`InterpreterError` at the call.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
        step_limit: int = DEFAULT_STEP_LIMIT,
        program: Optional[Program] = None,
    ) -> None:
        self.cfg = cfg
        self.intrinsics = intrinsics
        self.step_limit = step_limit
        self.program = program
        self._by_label = self._label_table(cfg)
        self._unit_cfgs: Dict[str, ControlFlowGraph] = {}
        self._unit_tables: Dict[str, Dict[int, Dict[str, int]]] = {}
        self._signatures = None

    @staticmethod
    def _label_table(cfg: ControlFlowGraph) -> Dict[int, Dict[str, int]]:
        """Labelled successor lookup per node."""
        tables: Dict[int, Dict[str, int]] = {}
        for node_id in cfg.nodes:
            table: Dict[str, int] = {}
            for dst, label in cfg.successors(node_id):
                table.setdefault(label, dst)
            tables[node_id] = table
        return tables

    def _callee(self, name: str):
        """The (cfg, label table, signature) of one procedure."""
        if self.program is None or self.program.proc_named(name) is None:
            raise InterpreterError(
                f"cannot execute call to {name!r}: no such procedure "
                "is available to this interpreter"
            )
        if self._signatures is None:
            from repro.sdg.callgraph import build_call_graph
            from repro.sdg.params import signatures

            self._signatures = signatures(
                self.program, build_call_graph(self.program)
            )
        if name not in self._unit_cfgs:
            cfg = build_cfg(self.program, unit=name)
            self._unit_cfgs[name] = cfg
            self._unit_tables[name] = self._label_table(cfg)
        return (
            self._unit_cfgs[name],
            self._unit_tables[name],
            self._signatures[name],
        )

    # ------------------------------------------------------------------

    def run(
        self,
        inputs: Sequence[int] = (),
        initial_env: Optional[Dict[str, int]] = None,
        watch: Optional[Dict[int, str]] = None,
        tracer=None,
    ) -> ExecutionResult:
        """Execute the program.

        Parameters
        ----------
        inputs:
            The input stream consumed by ``read``.
        initial_env:
            Pre-set variable values (free variables like the ``c1`` of
            paper Fig. 10 are supplied this way).
        watch:
            ``node id → variable name``: every time control *reaches*
            that node, the variable's current value is appended to the
            node's trajectory — the paper's "value(s) of var at loc".
        tracer:
            Optional callable invoked with each executed node id, in
            execution order (before the node runs) — the hook the
            dynamic slicer uses to record execution histories.
        """
        env: Dict[str, int] = dict(initial_env or {})
        cursor = 0
        outputs: List[int] = []
        trajectories: Dict[int, List[int]] = {
            node_id: [] for node_id in (watch or {})
        }
        watch = watch or {}
        cfg = self.cfg
        table = self._by_label
        current = cfg.entry_id
        steps = 0
        returned: Optional[int] = None
        # Suspended caller frames: (cfg, label table, env, resume node,
        # value-result copy-out bindings of the active callee).
        frames: List[tuple] = []

        def follow(node_id: int, label: str) -> int:
            entry = table[node_id]
            if label in entry:
                return entry[label]
            raise InterpreterError(
                f"node {node_id} has no outgoing {label!r} edge"
            )

        def evaluate(expr: Expr) -> int:
            if isinstance(expr, Num):
                return expr.value
            if isinstance(expr, Var):
                return env.get(expr.name, 0)
            if isinstance(expr, Unary):
                value = evaluate(expr.operand)
                if expr.op == "!":
                    return 0 if value else 1
                return -value
            if isinstance(expr, Binary):
                return self._binary(expr, evaluate)
            if isinstance(expr, Call):
                if expr.name == "eof":
                    return 1 if cursor >= len(inputs) else 0
                args = [evaluate(arg) for arg in expr.args]
                return self.intrinsics.call(expr.name, args)
            raise InterpreterError(f"cannot evaluate {expr!r}")

        while True:
            if current == cfg.exit_id:
                if not frames:
                    break
                # Callee finished: value-result copy-out, resume caller.
                callee_env = env
                cfg, table, env, current, out_bindings = frames.pop()
                for param, out_var in out_bindings:
                    env[out_var] = callee_env.get(param, 0)
                continue
            steps += 1
            if steps > self.step_limit:
                raise InterpreterError(
                    f"step limit ({self.step_limit}) exceeded at node "
                    f"{current} ({cfg.nodes[current].text!r})"
                )
            node = cfg.nodes[current]
            # Watch and trace speak main-unit node ids only (the dynamic
            # slicer and trajectory oracle are intraprocedural).
            if not frames:
                if current in watch:
                    trajectories[current].append(env.get(watch[current], 0))
                if tracer is not None:
                    tracer(current)
            kind = node.kind
            if kind is NodeKind.ENTRY:
                current = cfg.succ_ids(current)[0]
            elif kind is NodeKind.ASSIGN:
                stmt = node.stmt
                assert isinstance(stmt, Assign)
                env[stmt.target] = evaluate(stmt.value)
                current = follow(current, EdgeLabel.FALL)
            elif kind is NodeKind.READ:
                stmt = node.stmt
                assert isinstance(stmt, Read)
                if cursor < len(inputs):
                    env[stmt.target] = int(inputs[cursor])
                    cursor += 1
                else:
                    env[stmt.target] = 0
                current = follow(current, EdgeLabel.FALL)
            elif kind is NodeKind.WRITE:
                stmt = node.stmt
                assert isinstance(stmt, Write)
                outputs.append(evaluate(stmt.value))
                current = follow(current, EdgeLabel.FALL)
            elif kind is NodeKind.SKIP:
                current = follow(current, EdgeLabel.FALL)
            elif kind in (NodeKind.PREDICATE, NodeKind.CONDGOTO):
                cond = self._condition_of(node)
                branch = EdgeLabel.TRUE if evaluate(cond) else EdgeLabel.FALSE
                current = follow(current, branch)
            elif kind is NodeKind.SWITCH:
                stmt = node.stmt
                assert isinstance(stmt, Switch)
                value = evaluate(stmt.subject)
                label = EdgeLabel.case(value)
                if label in table[current]:
                    current = table[current][label]
                else:
                    current = follow(current, EdgeLabel.DEFAULT)
            elif kind in (NodeKind.GOTO, NodeKind.BREAK, NodeKind.CONTINUE):
                current = follow(current, EdgeLabel.JUMP)
            elif kind is NodeKind.RETURN:
                stmt = node.stmt
                assert isinstance(stmt, Return)
                if stmt.value is not None and not frames:
                    returned = evaluate(stmt.value)
                current = follow(current, EdgeLabel.JUMP)
            elif kind in (
                NodeKind.ACTUAL_IN,
                NodeKind.ACTUAL_OUT,
                NodeKind.FORMAL_IN,
                NodeKind.FORMAL_OUT,
            ):
                # Copy-in happens at the CALL node, copy-out at frame
                # pop; the parameter nodes exist for dependence
                # analysis and are execution no-ops.
                current = follow(current, EdgeLabel.FALL)
            elif kind is NodeKind.CALL:
                stmt = node.stmt
                assert isinstance(stmt, CallStmt)
                callee_cfg, callee_table, signature = self._callee(stmt.name)
                from repro.sdg.params import actuals_for

                callee_env: Dict[str, int] = {}
                out_bindings: List[tuple] = []
                for spec in actuals_for(stmt, signature):
                    if spec.expr is not None:
                        callee_env[spec.param] = evaluate(spec.expr)
                    if spec.out_var is not None:
                        out_bindings.append((spec.param, spec.out_var))
                frames.append(
                    (cfg, table, env,
                     follow(current, EdgeLabel.FALL), out_bindings)
                )
                cfg, table, env = callee_cfg, callee_table, callee_env
                current = cfg.entry_id
            else:
                raise InterpreterError(f"cannot execute node {node!r}")

        return ExecutionResult(
            outputs=outputs,
            env=env,
            steps=steps,
            returned=returned,
            trajectories=trajectories,
        )

    # ------------------------------------------------------------------

    def _follow(self, node_id: int, label: str) -> int:
        table = self._by_label[node_id]
        if label in table:
            return table[label]
        raise InterpreterError(
            f"node {node_id} has no outgoing {label!r} edge"
        )

    @staticmethod
    def _condition_of(node) -> Expr:
        stmt = node.stmt
        if isinstance(stmt, If):
            return stmt.cond
        if isinstance(stmt, (While, DoWhile)):
            return stmt.cond
        if isinstance(stmt, For):
            return stmt.cond if stmt.cond is not None else Num(1)
        raise InterpreterError(f"node {node!r} is not a predicate")

    def _binary(self, expr: Binary, evaluate) -> int:
        op = expr.op
        if op == "&&":
            return 1 if evaluate(expr.left) and evaluate(expr.right) else 0
        if op == "||":
            return 1 if evaluate(expr.left) or evaluate(expr.right) else 0
        a = evaluate(expr.left)
        b = evaluate(expr.right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return _trunc_div(a, b)
        if op == "%":
            return _trunc_mod(a, b)
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        raise InterpreterError(f"unknown binary operator {op!r}")


def run_program(
    program: Union[Program, ControlFlowGraph],
    inputs: Sequence[int] = (),
    initial_env: Optional[Dict[str, int]] = None,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
    watch: Optional[Dict[int, str]] = None,
) -> ExecutionResult:
    """Execute a program (AST or prebuilt CFG) over *inputs*."""
    if isinstance(program, ControlFlowGraph):
        cfg, ast = program, None
    else:
        cfg, ast = build_cfg(program), program
    interpreter = Interpreter(
        cfg, intrinsics=intrinsics, step_limit=step_limit, program=ast
    )
    return interpreter.run(inputs, initial_env=initial_env, watch=watch)


def run_source(
    source: str,
    inputs: Sequence[int] = (),
    initial_env: Optional[Dict[str, int]] = None,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> ExecutionResult:
    """Parse and execute SL source text."""
    return run_program(
        parse_program(source),
        inputs,
        initial_env=initial_env,
        intrinsics=intrinsics,
        step_limit=step_limit,
    )
