"""Intrinsic (pure, built-in) functions for SL programs.

The paper's examples call opaque pure functions — ``f1``, ``f2``, ``f3``
over ``x`` and ``g1``, ``g2`` over ``y``.  SL models them as intrinsics
registered with the interpreter.  The defaults below are arbitrary but
fixed, injective-ish integer functions, so different slices of the same
program are distinguishable by their outputs.

``eof`` is special-cased by the interpreter (it inspects the input
stream) and must not be registered here.

Unknown intrinsics evaluate through :func:`opaque_function` — a
deterministic hash-based pure function — so any syntactically valid
program can run without pre-registration (important for the random
program generator).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Sequence

from repro.lang.errors import InterpreterError

IntrinsicFn = Callable[..., int]


def opaque_function(name: str, args: Sequence[int]) -> int:
    """A deterministic pure function of (name, args) used for intrinsics
    that have no registered definition."""
    payload = f"{name}:{','.join(str(a) for a in args)}".encode()
    digest = hashlib.sha256(payload).digest()
    value = int.from_bytes(digest[:4], "big") % 2001 - 1000
    return value


class IntrinsicRegistry:
    """A name → pure-function table, copy-on-write friendly."""

    def __init__(self, table: Dict[str, IntrinsicFn]) -> None:
        if "eof" in table:
            raise InterpreterError(
                "'eof' is handled by the interpreter and cannot be "
                "registered as an intrinsic"
            )
        self._table = dict(table)

    def with_function(self, name: str, fn: IntrinsicFn) -> "IntrinsicRegistry":
        table = dict(self._table)
        table[name] = fn
        return IntrinsicRegistry(table)

    def call(self, name: str, args: Sequence[int]) -> int:
        fn = self._table.get(name)
        if fn is None:
            return opaque_function(name, args)
        try:
            return int(fn(*args))
        except TypeError as exc:
            raise InterpreterError(
                f"intrinsic {name!r} called with {len(args)} argument(s): {exc}"
            ) from exc

    def names(self):
        return sorted(self._table)


#: The default registry: the paper's running-example functions plus a few
#: generic helpers the examples and the generator use.
DEFAULT_INTRINSICS = IntrinsicRegistry(
    {
        "f1": lambda x: 2 * x + 1,
        "f2": lambda x: x * x,
        "f3": lambda x: x - 3,
        "g1": lambda y: y + 7,
        "g2": lambda y: 2 * y,
        "abs": lambda x: abs(x),
        "min": lambda a, b: min(a, b),
        "max": lambda a, b: max(a, b),
        "sign": lambda x: (x > 0) - (x < 0),
    }
)
