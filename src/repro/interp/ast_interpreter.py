"""A tree-walking interpreter for *structured* SL programs.

An independent second implementation of SL semantics, used by the test
suite for differential testing against the CFG interpreter: both must
produce identical outputs, final environments, and return values on
every structured program (goto needs the CFG; this interpreter refuses
it).

Control flow uses exceptions for the structured jumps, the classic
tree-walker technique — which also makes this module a worked example of
*why* the paper's jump statements resist structured treatment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.interp.interpreter import (
    DEFAULT_STEP_LIMIT,
    ExecutionResult,
    _trunc_div,
    _trunc_mod,
)
from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    Num,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Switch,
    Unary,
    Var,
    While,
    Write,
)
from repro.lang.errors import InterpreterError


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[int]) -> None:
        self.value = value


@dataclass
class _State:
    env: Dict[str, int]
    inputs: Sequence[int]
    cursor: int
    outputs: List[int]
    steps: int
    step_limit: int
    intrinsics: IntrinsicRegistry

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise InterpreterError(
                f"step limit ({self.step_limit}) exceeded"
            )


def _evaluate(expr: Expr, state: _State) -> int:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Var):
        return state.env.get(expr.name, 0)
    if isinstance(expr, Unary):
        value = _evaluate(expr.operand, state)
        return (0 if value else 1) if expr.op == "!" else -value
    if isinstance(expr, Binary):
        if expr.op == "&&":
            return (
                1
                if _evaluate(expr.left, state) and _evaluate(expr.right, state)
                else 0
            )
        if expr.op == "||":
            return (
                1
                if _evaluate(expr.left, state) or _evaluate(expr.right, state)
                else 0
            )
        left = _evaluate(expr.left, state)
        right = _evaluate(expr.right, state)
        table = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: _trunc_div(left, right),
            "%": lambda: _trunc_mod(left, right),
            "<": lambda: int(left < right),
            "<=": lambda: int(left <= right),
            ">": lambda: int(left > right),
            ">=": lambda: int(left >= right),
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
        }
        return table[expr.op]()
    if isinstance(expr, Call):
        if expr.name == "eof":
            return 1 if state.cursor >= len(state.inputs) else 0
        args = [_evaluate(arg, state) for arg in expr.args]
        return state.intrinsics.call(expr.name, args)
    raise InterpreterError(f"cannot evaluate {expr!r}")


def _execute(stmt: Stmt, state: _State) -> None:
    state.tick()
    if isinstance(stmt, Skip):
        return
    if isinstance(stmt, Assign):
        state.env[stmt.target] = _evaluate(stmt.value, state)
        return
    if isinstance(stmt, Read):
        if state.cursor < len(state.inputs):
            state.env[stmt.target] = int(state.inputs[state.cursor])
            state.cursor += 1
        else:
            state.env[stmt.target] = 0
        return
    if isinstance(stmt, Write):
        state.outputs.append(_evaluate(stmt.value, state))
        return
    if isinstance(stmt, Block):
        for inner in stmt.stmts:
            _execute(inner, state)
        return
    if isinstance(stmt, If):
        if _evaluate(stmt.cond, state):
            if stmt.then_branch is not None:
                _execute(stmt.then_branch, state)
        elif stmt.else_branch is not None:
            _execute(stmt.else_branch, state)
        return
    if isinstance(stmt, While):
        while _evaluate(stmt.cond, state):
            state.tick()
            try:
                if stmt.body is not None:
                    _execute(stmt.body, state)
            except _BreakSignal:
                return
            except _ContinueSignal:
                continue
        return
    if isinstance(stmt, DoWhile):
        while True:
            state.tick()
            try:
                if stmt.body is not None:
                    _execute(stmt.body, state)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if not _evaluate(stmt.cond, state):
                return
    if isinstance(stmt, For):
        if stmt.init is not None:
            _execute(stmt.init, state)
        while stmt.cond is None or _evaluate(stmt.cond, state):
            state.tick()
            try:
                if stmt.body is not None:
                    _execute(stmt.body, state)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                _execute(stmt.step, state)
        return
    if isinstance(stmt, Switch):
        value = _evaluate(stmt.subject, state)
        start: Optional[int] = None
        default: Optional[int] = None
        for index, case in enumerate(stmt.cases):
            if value in case.matches:
                start = index
                break
            if None in case.matches and default is None:
                default = index
        if start is None:
            start = default
        if start is None:
            return
        try:
            for case in stmt.cases[start:]:  # C fall-through
                for inner in case.stmts:
                    _execute(inner, state)
        except _BreakSignal:
            return
        return
    if isinstance(stmt, Break):
        raise _BreakSignal()
    if isinstance(stmt, Continue):
        raise _ContinueSignal()
    if isinstance(stmt, Return):
        raise _ReturnSignal(
            _evaluate(stmt.value, state) if stmt.value is not None else None
        )
    if isinstance(stmt, Goto):
        raise InterpreterError(
            f"line {stmt.line}: the tree-walking interpreter cannot "
            "execute goto; use the CFG interpreter"
        )
    raise InterpreterError(f"cannot execute {stmt!r}")


def run_ast(
    program: Program,
    inputs: Sequence[int] = (),
    initial_env: Optional[Dict[str, int]] = None,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> ExecutionResult:
    """Execute a structured SL program by walking its AST."""
    state = _State(
        env=dict(initial_env or {}),
        inputs=inputs,
        cursor=0,
        outputs=[],
        steps=0,
        step_limit=step_limit,
        intrinsics=intrinsics,
    )
    returned: Optional[int] = None
    try:
        for stmt in program.body:
            _execute(stmt, state)
    except _ReturnSignal as signal:
        returned = signal.value
    except (_BreakSignal, _ContinueSignal):
        raise InterpreterError("break/continue escaped to top level")
    return ExecutionResult(
        outputs=state.outputs,
        env=state.env,
        steps=state.steps,
        returned=returned,
        trajectories={},
    )
