"""The slice-correctness oracle.

The paper's definition (§1): a slice P' of P with respect to (var, loc)
must compute the same value(s) of var at loc as P does.  Operationally:
for any input, the sequence of values *var* holds each time control
reaches *loc* must be identical in P and in the extracted slice.

:func:`check_slice_correctness` runs both programs over a battery of
inputs and compares those trajectories, raising
:class:`TrajectoryMismatch` with a full report on the first divergence.
This is the weapon the property-based tests point at every algorithm —
and at the known-unsound baselines, expecting them to fail (Fig. 16).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cfg.builder import build_cfg
from repro.interp.interpreter import (
    DEFAULT_STEP_LIMIT,
    Interpreter,
)
from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry
from repro.lang.errors import SlangError
from repro.lang.pretty import pretty
from repro.pdg.builder import ProgramAnalysis
from repro.slicing.common import SliceResult
from repro.slicing.criterion import SlicingCriterion, resolve_criterion
from repro.slicing.extract import extract_slice


class TrajectoryMismatch(SlangError):
    """The slice's criterion trajectory diverged from the original's."""

    def __init__(
        self,
        message: str,
        inputs: Sequence[int],
        expected: List[int],
        actual: List[int],
        slice_source: str,
    ) -> None:
        self.inputs = list(inputs)
        self.expected = expected
        self.actual = actual
        self.slice_source = slice_source
        super().__init__(
            f"{message}\n  inputs:   {list(inputs)}\n"
            f"  original: {expected}\n  slice:    {actual}\n"
            f"  extracted slice:\n{_indent(slice_source)}"
        )


def _indent(text: str) -> str:
    return "\n".join(f"    {line}" for line in text.splitlines())


def criterion_trajectory(
    analysis: ProgramAnalysis,
    criterion: SlicingCriterion,
    inputs: Sequence[int],
    initial_env: Optional[Dict[str, int]] = None,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> List[int]:
    """The sequence of values *criterion.var* holds each time control
    reaches the criterion statement."""
    resolved = resolve_criterion(analysis, criterion)
    interpreter = Interpreter(
        analysis.cfg, intrinsics=intrinsics, step_limit=step_limit
    )
    result = interpreter.run(
        inputs,
        initial_env=initial_env,
        watch={resolved.node_id: criterion.var},
    )
    return result.trajectories[resolved.node_id]


def check_slice_correctness(
    result: SliceResult,
    input_sets: Sequence[Sequence[int]],
    initial_env: Optional[Dict[str, int]] = None,
    intrinsics: IntrinsicRegistry = DEFAULT_INTRINSICS,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> int:
    """Verify *result* against the paper's semantic contract.

    Runs the original program and the extracted slice over every input
    set in *input_sets* and compares the criterion trajectories.

    Returns the number of input sets checked; raises
    :class:`TrajectoryMismatch` on the first divergence.  Step-limit or
    other interpreter errors in the *original* program propagate (callers
    doing property-based testing typically ``assume`` them away); the
    slice gets double the step budget, since a correct slice never takes
    more steps than its original.
    """
    analysis = result.analysis
    criterion = result.criterion
    resolved = result.resolved
    extracted = extract_slice(result)
    slice_source = pretty(extracted.program)

    original_stmt = analysis.cfg.nodes[resolved.node_id].stmt
    new_stmt = extracted.find(original_stmt)
    if new_stmt is None:
        raise TrajectoryMismatch(
            "criterion statement missing from the extracted slice",
            inputs=[],
            expected=[],
            actual=[],
            slice_source=slice_source,
        )
    slice_cfg = build_cfg(extracted.program)
    slice_node = slice_cfg.node_of(new_stmt)

    original_interp = Interpreter(
        analysis.cfg, intrinsics=intrinsics, step_limit=step_limit
    )
    slice_interp = Interpreter(
        slice_cfg, intrinsics=intrinsics, step_limit=2 * step_limit
    )

    for inputs in input_sets:
        expected = original_interp.run(
            inputs,
            initial_env=initial_env,
            watch={resolved.node_id: criterion.var},
        ).trajectories[resolved.node_id]
        actual = slice_interp.run(
            inputs,
            initial_env=initial_env,
            watch={slice_node: criterion.var},
        ).trajectories[slice_node]
        if expected != actual:
            raise TrajectoryMismatch(
                f"slice by {result.algorithm!r} diverges on criterion "
                f"{criterion}",
                inputs=inputs,
                expected=expected,
                actual=actual,
                slice_source=slice_source,
            )
    return len(input_sets)
