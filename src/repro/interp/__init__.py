"""A CFG-level interpreter for SL — the semantic oracle.

Executing the CFG (rather than the AST) makes ``goto`` trivial: a jump is
just following an edge.  The interpreter records *trajectories* — the
sequence of values a variable holds each time control reaches a given
statement — which is exactly the paper's correctness contract for a
slice: "P' computes the same value(s) of var at loc as that computed by
P" (§1).
"""

from repro.interp.intrinsics import DEFAULT_INTRINSICS, IntrinsicRegistry
from repro.interp.interpreter import (
    ExecutionResult,
    Interpreter,
    run_program,
    run_source,
)
from repro.interp.oracle import (
    TrajectoryMismatch,
    check_slice_correctness,
    criterion_trajectory,
)

__all__ = [
    "DEFAULT_INTRINSICS",
    "ExecutionResult",
    "Interpreter",
    "IntrinsicRegistry",
    "TrajectoryMismatch",
    "check_slice_correctness",
    "criterion_trajectory",
    "run_program",
    "run_source",
]
