"""Condensed-PDG closure index — amortized backward slicing.

Every slice the reproduction computes bottoms out in
``backward_closure``: the conventional base, each jump Fig. 7 adds, each
jump Fig. 13 and Lyle add, and the SL20x verifier's re-derivation.  A
breadth-first search per query re-walks the same dependence edges over
and over; on the batch/bulk service paths that is the dominant cost.

This module pays the walk once per graph.  The PDG is condensed by
strongly connected components (Tarjan, iterative — dependence cycles
through loops are common), and the condensation — a DAG — admits a
one-pass transitive-closure computation: visiting components
suppliers-first, each component's closure mask is its own bit OR the
(already complete) masks of its supplier components.  After that a
``backward_closure(seeds)`` query is one OR over the seeds' component
masks plus a decode — no graph traversal at all.

The index is *query infrastructure*, not a different algorithm: decoded
results are node-for-node identical to the BFS reference, which the
differential property suite enforces across every registry algorithm.

Construction is budget-ticked (phase ``"closure-index"``) and traced
under its own span.  Under deadline pressure the caller should skip
building and fall back to BFS — :func:`index_build_allowed` encodes the
rule — because an index built at the deadline's edge helps nobody.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.obs.tracer import trace_span
from repro.service.resilience import current_budget

#: Process-wide enablement knob (CLI ``--closure-index on|off``).  The
#: index is pure acceleration, so it defaults on; the knob exists for
#: differential testing and for benchmarking the reference path.
_enabled = True

#: Don't start an index build with less than this much wall clock left —
#: the build would eat the remaining deadline that a plain BFS answer
#: could have fit into.
MIN_BUILD_HEADROOM_SECONDS = 0.05


def closure_index_enabled() -> bool:
    return _enabled


def set_closure_index_enabled(enabled: bool) -> None:
    global _enabled
    _enabled = bool(enabled)


@contextlib.contextmanager
def closure_index(enabled: bool) -> Iterator[None]:
    """Temporarily force the index on or off (tests, benches)."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous


def index_build_allowed() -> bool:
    """Whether a lazy index build should start right now.

    False only under budget pressure: an active deadline with less than
    :data:`MIN_BUILD_HEADROOM_SECONDS` remaining.  Node caps and
    traversal caps are unaffected — the build ticks the budget itself
    and aborts cleanly if they trip.
    """
    budget = current_budget()
    if budget is None:
        return True
    remaining = budget.remaining_seconds()
    return remaining is None or remaining >= MIN_BUILD_HEADROOM_SECONDS


class ClosureIndex:
    """Precomputed backward-transitive-closure masks over an SCC
    condensation.

    Immutable once built; the owning graph discards it on mutation.
    """

    __slots__ = ("_comp_of", "_comp_nodes", "_comp_mask", "node_count")

    def __init__(
        self,
        comp_of: Dict[int, int],
        comp_nodes: List[Tuple[int, ...]],
        comp_mask: List[int],
    ) -> None:
        self._comp_of = comp_of
        self._comp_nodes = comp_nodes
        self._comp_mask = comp_mask
        self.node_count = len(comp_of)

    @property
    def component_count(self) -> int:
        return len(self._comp_nodes)

    def backward_closure(self, seeds: Iterable[int]) -> FrozenSet[int]:
        """All nodes the seeds transitively depend on, seeds included.

        Seeds unknown to the index (nodes the PDG never saw an edge or
        ``add_node`` for) contribute just themselves, mirroring the BFS
        reference.
        """
        comp_of = self._comp_of
        mask = 0
        extra: List[int] = []
        for seed in seeds:
            comp = comp_of.get(seed)
            if comp is None:
                extra.append(seed)
            else:
                mask |= self._comp_mask[comp]
        out = set(extra)
        comp_nodes = self._comp_nodes
        while mask:
            low = mask & -mask
            out.update(comp_nodes[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)


def condense(
    node_ids: Sequence[int],
    suppliers_of: Callable[[int], Iterable[int]],
) -> Tuple[Dict[int, int], List[Tuple[int, ...]]]:
    """SCC-condense a backward dependence adjacency (iterative Tarjan).

    Returns ``(comp_of, comp_nodes)`` where components appear in
    *suppliers-first* emission order: Tarjan finalizes an SCC only after
    every SCC it can reach — here, its transitive suppliers — so a single
    forward sweep over ``comp_nodes`` sees every supplier component
    before its consumers.  Shared by the per-PDG index below and the
    whole-SDG ascend/descend indexes in ``sdg/closure.py``.
    """
    budget = current_budget()
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    comp_of: Dict[int, int] = {}
    comp_nodes: List[Tuple[int, ...]] = []
    tarjan_stack: List[int] = []
    counter = 0

    for root in sorted(node_ids):
        if root in index_of:
            continue
        # Iterative Tarjan: (node, iterator over its suppliers).
        work: List[Tuple[int, Iterator[int]]] = []
        index_of[root] = lowlink[root] = counter
        counter += 1
        tarjan_stack.append(root)
        on_stack[root] = True
        work.append((root, iter(suppliers_of(root))))
        while work:
            if budget is not None:
                budget.tick("closure-index")
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    tarjan_stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(suppliers_of(child))))
                    advanced = True
                    break
                if on_stack.get(child):
                    if index_of[child] < lowlink[node]:
                        lowlink[node] = index_of[child]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                members: List[int] = []
                while True:
                    member = tarjan_stack.pop()
                    on_stack[member] = False
                    comp_of[member] = len(comp_nodes)
                    members.append(member)
                    if member == node:
                        break
                comp_nodes.append(tuple(members))

    return comp_of, comp_nodes


def build_closure_index(
    node_ids: Sequence[int],
    suppliers_of: Callable[[int], Iterable[int]],
) -> ClosureIndex:
    """Condense the dependence graph and precompute closure masks.

    *suppliers_of(n)* yields the nodes *n* directly depends on (the
    graph's backward adjacency).  Components emerge from
    :func:`condense` suppliers-first, so one forward sweep over the
    emission order completes every mask.
    """
    budget = current_budget()
    with trace_span("closure-index-build", nodes=len(node_ids)) as span:
        comp_of, comp_nodes = condense(node_ids, suppliers_of)

        # Suppliers-first sweep: every supplier component of comp was
        # emitted earlier, so its mask is already complete.
        comp_mask: List[int] = []
        for comp, members in enumerate(comp_nodes):
            if budget is not None:
                budget.tick("closure-index")
            mask = 1 << comp
            for member in members:
                for supplier in suppliers_of(member):
                    supplier_comp = comp_of[supplier]
                    if supplier_comp != comp:
                        mask |= comp_mask[supplier_comp]
            comp_mask.append(mask)

        span.set(components=len(comp_nodes))
        return ClosureIndex(comp_of, comp_nodes, comp_mask)
