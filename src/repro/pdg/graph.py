"""The program dependence graph structure.

Edges are typed ``"control"`` or ``"data"``; the conventional slicing
algorithm is a backward reachability closure over both kinds at once
(paper §2: "finding the transitive closure of the data and control
dependences of the appropriate node(s)").
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.pdg.closure import (
    ClosureIndex,
    build_closure_index,
    closure_index_enabled,
    index_build_allowed,
)

CONTROL = "control"
DATA = "data"


class ProgramDependenceGraph:
    """A dependence graph over CFG node ids.

    ``dependences_of(n)`` lists the nodes *n* depends on (edges point
    dependence-wise: def → use and controller → controlled, so slicing
    walks edges backwards).
    """

    def __init__(self) -> None:
        #: dependent -> [(supplier, kind, detail)]
        self._back: Dict[int, List[Tuple[int, str, str]]] = {}
        #: supplier -> [(dependent, kind, detail)]
        self._forward: Dict[int, List[Tuple[int, str, str]]] = {}
        self._edge_set: Set[Tuple[int, int, str, str]] = set()
        self.nodes: Set[int] = set()
        #: Lazily built closure index (repro.pdg.closure); discarded on
        #: any mutation so it can never serve stale closures.
        self._closure_index: Optional[ClosureIndex] = None

    def add_node(self, node_id: int) -> None:
        self.nodes.add(node_id)
        self._closure_index = None

    def add_edge(self, src: int, dst: int, kind: str, detail: str = "") -> None:
        """Record that *dst* depends on *src* (kind: control/data)."""
        if (src, dst, kind, detail) in self._edge_set:
            return
        self._edge_set.add((src, dst, kind, detail))
        self.nodes.add(src)
        self.nodes.add(dst)
        self._back.setdefault(dst, []).append((src, kind, detail))
        self._forward.setdefault(src, []).append((dst, kind, detail))
        self._closure_index = None

    # ------------------------------------------------------------------

    def dependences_of(self, node: int) -> List[int]:
        """Nodes *node* directly depends on (deduped, sorted)."""
        return sorted({src for src, _, _ in self._back.get(node, [])})

    def dependents_of(self, node: int) -> List[int]:
        """Nodes directly depending on *node* (deduped, sorted)."""
        return sorted({dst for dst, _, _ in self._forward.get(node, [])})

    def control_parents_of(self, node: int) -> List[int]:
        return sorted(
            {src for src, kind, _ in self._back.get(node, []) if kind == CONTROL}
        )

    def data_parents_of(self, node: int) -> List[int]:
        return sorted(
            {src for src, kind, _ in self._back.get(node, []) if kind == DATA}
        )

    def edges(self) -> Iterator[Tuple[int, int, str, str]]:
        return iter(sorted(self._edge_set))

    def has_edge(self, src: int, dst: int, kind: str, detail: str = "") -> bool:
        """Exact-edge membership (the incremental SDG assembly uses it
        to keep summary-edge counts dedupe-exact across fixpoint
        rounds)."""
        return (src, dst, kind, detail) in self._edge_set

    def __len__(self) -> int:
        return len(self._edge_set)

    # ------------------------------------------------------------------

    def _suppliers(self, node: int) -> List[int]:
        return [src for src, _, _ in self._back.get(node, [])]

    def ensure_closure_index(self) -> Optional[ClosureIndex]:
        """Build (or return) the closure index, honouring the global
        enablement knob and the budget-pressure skip rule.

        Returns None when the index is disabled or deferred; callers
        then take the BFS path.  The index is assembled fully before the
        single attribute assignment, so a budget abort mid-build leaves
        no partial state and a concurrent reader sees either nothing or
        a complete index.
        """
        if not closure_index_enabled():
            return None
        index = self._closure_index
        if index is None:
            if not index_build_allowed():
                return None
            index = build_closure_index(sorted(self.nodes), self._suppliers)
            self._closure_index = index
        return index

    def backward_closure(self, seeds: Iterable[int]) -> FrozenSet[int]:
        """All nodes the *seeds* transitively depend on, seeds included —
        the conventional slice as a node set.

        Served from the closure index when enabled (one mask OR per
        seed); the BFS below is the reference path and the fallback
        under budget pressure."""
        index = self.ensure_closure_index()
        if index is not None:
            return index.backward_closure(seeds)
        seen: Set[int] = set(seeds)
        queue = deque(seen)
        while queue:
            current = queue.popleft()
            for supplier, _, _ in self._back.get(current, []):
                if supplier not in seen:
                    seen.add(supplier)
                    queue.append(supplier)
        return frozenset(seen)

    def forward_closure(self, seeds: Iterable[int]) -> FrozenSet[int]:
        """All nodes transitively depending on the *seeds* (forward
        slice), seeds included."""
        seen: Set[int] = set(seeds)
        queue = deque(seen)
        while queue:
            current = queue.popleft()
            for dependent, _, _ in self._forward.get(current, []):
                if dependent not in seen:
                    seen.add(dependent)
                    queue.append(dependent)
        return frozenset(seen)
