"""Program dependence graphs (paper §2).

The PDG merges the control- and data-dependence graphs of a program.
:func:`build_pdg` produces the standard PDG (control dependence from the
plain flowgraph); :func:`build_augmented_pdg` produces the Ball–Horwitz /
Choi–Ferrante variant (control dependence from the augmented flowgraph,
data dependence still from the plain one — exactly the paper's §5
description of those algorithms).
"""

from repro.pdg.graph import ProgramDependenceGraph
from repro.pdg.builder import ProgramAnalysis, analyze_program, build_augmented_pdg, build_pdg

__all__ = [
    "ProgramAnalysis",
    "ProgramDependenceGraph",
    "analyze_program",
    "build_augmented_pdg",
    "build_pdg",
]
