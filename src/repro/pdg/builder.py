"""PDG construction and the :class:`ProgramAnalysis` bundle.

:func:`analyze_program` runs the whole front-end pipeline once — parse
(when given source text), CFG, postdominator tree, lexical successor
tree, control and data dependence, PDG — and hands back one object the
slicing algorithms share.  The augmented variants (Ball–Horwitz) are
computed lazily since only that baseline needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.control_dependence import (
    ControlDependenceGraph,
    compute_control_dependence,
)
from repro.analysis.dataflow import DataflowResult
from repro.analysis.defuse import DataDependenceGraph, compute_data_dependence
from repro.analysis.lexical import LexicalSuccessorTree, build_lst
from repro.analysis.reaching_defs import compute_reaching_definitions
from repro.analysis.postdominance import build_postdominator_tree
from repro.analysis.tree import Tree
from repro.cfg.augmented import build_augmented_cfg
from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph, NodeKind
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.obs.tracer import trace_span
from repro.pdg.graph import CONTROL, DATA, ProgramDependenceGraph


def build_pdg(
    cfg: ControlFlowGraph,
    cdg: Optional[ControlDependenceGraph] = None,
    ddg: Optional[DataDependenceGraph] = None,
    pdt: Optional[Tree] = None,
) -> ProgramDependenceGraph:
    """Merge control and data dependence into a PDG.

    Any of the ingredient graphs may be passed in to avoid recomputation;
    missing ones are computed from *cfg*.
    """
    if cdg is None:
        if pdt is None:
            pdt = build_postdominator_tree(cfg)
        cdg = compute_control_dependence(cfg, pdt)
    if ddg is None:
        ddg = compute_data_dependence(cfg)
    pdg = ProgramDependenceGraph()
    for node_id in cfg.nodes:
        pdg.add_node(node_id)
    for src, dst, label in cdg.edges():
        pdg.add_edge(src, dst, CONTROL, label)
    for src, dst, var in ddg.edges():
        pdg.add_edge(src, dst, DATA, var)
    return pdg


def build_augmented_pdg(
    cfg: ControlFlowGraph,
    ddg: Optional[DataDependenceGraph] = None,
) -> ProgramDependenceGraph:
    """The Ball–Horwitz / Choi–Ferrante augmented PDG: control dependence
    from the **augmented** flowgraph, data dependence from the **plain**
    one (paper §5)."""
    augmented = build_augmented_cfg(cfg)
    pdt = build_postdominator_tree(augmented)
    cdg = compute_control_dependence(augmented, pdt)
    if ddg is None:
        ddg = compute_data_dependence(cfg)
    pdg = ProgramDependenceGraph()
    for node_id in cfg.nodes:
        pdg.add_node(node_id)
    for src, dst, label in cdg.edges():
        pdg.add_edge(src, dst, CONTROL, label)
    for src, dst, var in ddg.edges():
        pdg.add_edge(src, dst, DATA, var)
    return pdg


@dataclass
class ProgramAnalysis:
    """Every analysis artefact for one program, computed once.

    Attributes mirror the paper's figures: ``cfg`` (the flowgraph),
    ``pdt`` (postdominator tree), ``cdg`` (control dependence graph),
    ``lst`` (lexical successor tree), ``ddg``/``pdg`` (data / program
    dependence graphs).
    """

    program: Program
    cfg: ControlFlowGraph
    pdt: Tree
    lst: LexicalSuccessorTree
    cdg: ControlDependenceGraph
    ddg: DataDependenceGraph
    pdg: ProgramDependenceGraph
    reaching: Optional[DataflowResult] = field(default=None, repr=False)
    _augmented_cfg: Optional[ControlFlowGraph] = field(default=None, repr=False)
    _augmented_pdg: Optional[ProgramDependenceGraph] = field(
        default=None, repr=False
    )
    #: (node, var) -> reaching definition sites, built on the first
    #: reaching_defs_of call; criterion resolution hits that method per
    #: query, so the old linear scan of reaching.in_[node] was O(defs)
    #: per lookup in batch workloads.
    _reaching_index: Optional[Dict[Tuple[int, str], List[int]]] = field(
        default=None, repr=False, compare=False
    )
    #: Per-analysis slice memo slot, owned and populated by
    #: repro.service.cache.SliceMemo via the engine; lives here so the
    #: memo's lifetime is exactly the analysis's (an evicted analysis
    #: takes its memo with it, and a recycled id can never alias).
    _slice_memo: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    #: Content address of this analysis (repro.service.cache.analysis_key),
    #: stashed by the AnalysisCache so the engine can derive durable-store
    #: keys without re-hashing the source on every slice.
    _content_key: Optional[str] = field(
        default=None, repr=False, compare=False
    )
    #: line -> statement node ids at that line (criterion resolution
    #: runs once per request; the scan of every statement node per
    #: lookup dominated multi-criterion batches).
    _line_index: Optional[Dict[int, Tuple[int, ...]]] = field(
        default=None, repr=False, compare=False
    )
    #: (node id, label, target id) for every goto/condgoto, in node-id
    #: order — the only nodes label re-association can touch.
    _goto_sites: Optional[Tuple[Tuple[int, str, int], ...]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def augmented_cfg(self) -> ControlFlowGraph:
        if self._augmented_cfg is None:
            with trace_span("augmented-cfg"):
                self._augmented_cfg = build_augmented_cfg(self.cfg)
        return self._augmented_cfg

    @property
    def augmented_pdg(self) -> ProgramDependenceGraph:
        if self._augmented_pdg is None:
            with trace_span("augmented-pdg"):
                self._augmented_pdg = build_augmented_pdg(
                    self.cfg, ddg=self.ddg
                )
        return self._augmented_pdg

    def node_text(self, node_id: int) -> str:
        return self.cfg.nodes[node_id].text

    def nodes_at_line(self, line: int) -> Tuple[int, ...]:
        """Statement node ids at *line*, from a per-analysis index.

        Safe to build once: the analysis (and its CFG) is immutable
        after construction (DESIGN.md §7)."""
        index = self._line_index
        if index is None:
            index = {}
            for node in self.cfg.statement_nodes():
                index.setdefault(node.line, []).append(node.id)
            index = {
                line_no: tuple(ids) for line_no, ids in index.items()
            }
            self._line_index = index
        return index.get(line, ())

    def statement_lines(self) -> List[int]:
        """All lines that hold at least one statement, sorted."""
        if self._line_index is None:
            self.nodes_at_line(0)
        return sorted(self._line_index)

    def goto_sites(self) -> Tuple[Tuple[int, str, int], ...]:
        """(node id, label, target node id) for every goto/condgoto, in
        node-id order — precomputed so label re-association visits only
        jump sites instead of scanning the whole slice."""
        sites = self._goto_sites
        if sites is None:
            cfg = self.cfg
            sites = tuple(
                (node.id, node.goto_target, cfg.label_entry[node.goto_target])
                for node in cfg.statement_nodes()
                if node.goto_target is not None
                and node.kind in (NodeKind.GOTO, NodeKind.CONDGOTO)
            )
            self._goto_sites = sites
        return sites

    def reaching_defs_of(self, node_id: int, var: str):
        """Nodes whose definition of *var* may reach the entry of
        *node_id* (used to resolve criteria naming a variable the
        criterion statement does not itself use).

        Answers come from a per-(node, var) index built on first call —
        one pass over the fixed point instead of a linear scan of
        ``reaching.in_[node_id]`` per query.
        """
        index = self._reaching_index
        if index is None:
            if self.reaching is None:
                with trace_span("reaching-defs"):
                    self.reaching = compute_reaching_definitions(self.cfg)
            built: Dict[Tuple[int, str], List[int]] = {}
            for entry_node, definitions in self.reaching.in_.items():
                per_var: Dict[str, set] = {}
                for definition in definitions:
                    per_var.setdefault(definition.var, set()).add(
                        definition.node
                    )
                for var_name, sites in per_var.items():
                    built[(entry_node, var_name)] = sorted(sites)
            index = built
            self._reaching_index = index
        return list(index.get((node_id, var), []))

    def lines_of(self, node_ids) -> Dict[int, int]:
        """Map node id → source line for a node set (reporting helper)."""
        return {
            node_id: self.cfg.nodes[node_id].line for node_id in sorted(node_ids)
        }


def analyze_program(
    source_or_program: Union[str, Program],
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    dominator_algorithm: str = "iterative",
    unit: Optional[str] = None,
) -> ProgramAnalysis:
    """Run the full analysis pipeline on SL source text or a parsed AST.

    ``unit`` selects which unit of a multi-procedure program to analyse
    (``None`` = main); the SDG builder runs this pipeline once per
    procedure and stitches the results together.

    Each phase runs under an observability span (no-ops unless a
    :class:`repro.obs.Tracer` is installed), so a traced request or a
    ``slang slice --trace`` run can attribute front-end cost to parse
    vs. CFG vs. dominance vs. dependence construction.
    """
    with trace_span("analyze") as span:
        if isinstance(source_or_program, str):
            with trace_span("parse", bytes=len(source_or_program)):
                program = parse_program(source_or_program)
        else:
            program = source_or_program
        with trace_span("cfg-build", unit=unit or "main"):
            cfg = build_cfg(
                program,
                fuse_cond_goto=fuse_cond_goto,
                chain_io=chain_io,
                unit=unit,
            )
        if unit is not None:
            # Downstream consumers (syntactic LST rebuild, extraction)
            # read ``analysis.program.body`` as *this unit's* body, so a
            # procedure analysis carries a unit view of the program.
            proc = program.proc_named(unit)
            program = Program(
                body=proc.body, source=program.source, procs=program.procs
            )
        span.set(nodes=len(cfg.nodes))
        with trace_span("postdominance", algorithm=dominator_algorithm):
            pdt = build_postdominator_tree(
                cfg, algorithm=dominator_algorithm
            )
        with trace_span("lexical-successor-tree"):
            lst = build_lst(cfg)
        with trace_span("control-dependence"):
            cdg = compute_control_dependence(cfg, pdt)
        with trace_span("reaching-defs"):
            reaching = compute_reaching_definitions(cfg)
        with trace_span("data-dependence"):
            ddg = compute_data_dependence(cfg, reaching)
        with trace_span("pdg-build"):
            pdg = build_pdg(cfg, cdg=cdg, ddg=ddg)
    return ProgramAnalysis(
        program=program,
        cfg=cfg,
        pdt=pdt,
        lst=lst,
        cdg=cdg,
        ddg=ddg,
        pdg=pdg,
        reaching=reaching,
    )
