"""A recursive-descent parser for SL.

The grammar (EBNF; ``//`` comments elided by the lexer)::

    program    := (proc | stmt)* EOF
    proc       := 'proc' IDENT '(' (IDENT (',' IDENT)*)? ')' '{' stmt* '}'
    stmt       := IDENT ':' stmt            // statement label
                | 'if' '(' expr ')' stmt ('else' stmt)?
                | 'while' '(' expr ')' stmt
                | 'do' stmt 'while' '(' expr ')' ';'
                | 'for' '(' simple? ';' expr? ';' simple? ')' stmt
                | 'switch' '(' expr ')' '{' arm* '}'
                | '{' stmt* '}'
                | 'call' IDENT '(' (expr (',' expr)*)? ')' ';'
                | 'break' ';' | 'continue' ';' | 'goto' IDENT ';'
                | 'return' expr? ';'
                | 'read' '(' IDENT ')' ';'
                | 'write' '(' expr ')' ';'
                | IDENT '=' expr ';'
                | ';'
    arm        := (('case' ['-'] INT | 'default') ':')+ stmt*
    simple     := IDENT '=' expr | 'read' '(' IDENT ')'
    expr       := or
    or         := and ('||' and)*
    and        := equality ('&&' equality)*
    equality   := relational (('==' | '!=') relational)*
    relational := additive (('<' | '<=' | '>' | '>=') additive)*
    additive   := multiplicative (('+' | '-') multiplicative)*
    multiplicative := unary (('*' | '/' | '%') unary)*
    unary      := ('!' | '-') unary | primary
    primary    := INT | IDENT | IDENT '(' (expr (',' expr)*)? ')' | '(' expr ')'

Case labels of consecutive ``case``/``default`` tokens merge into one
switch arm (C fall-through between arms is modelled in the CFG builder,
not the parser).
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CallStmt,
    Continue,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    Num,
    ProcDecl,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Switch,
    SwitchCase,
    Unary,
    Var,
    While,
    Write,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

#: Operator precedence tiers for the expression grammar, lowest first.
_BINARY_TIERS = [
    {TokenKind.OR: "||"},
    {TokenKind.AND: "&&"},
    {TokenKind.EQ: "==", TokenKind.NE: "!="},
    {
        TokenKind.LT: "<",
        TokenKind.LE: "<=",
        TokenKind.GT: ">",
        TokenKind.GE: ">=",
    },
    {TokenKind.PLUS: "+", TokenKind.MINUS: "-"},
    {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"},
]


class Parser:
    """Parses a token stream into an SL AST."""

    def __init__(self, tokens: List[Token], source: Optional[str] = None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # ------------------------------------------------------------------
    # Token stream helpers.
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found "
                f"{token.text or token.kind.value!r}",
                token.location,
                self._source,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse the whole token stream into a :class:`Program`.

        ``proc`` declarations may appear anywhere at the top level;
        they are collected into :attr:`Program.procs` while the
        remaining top-level statements form the main unit.
        """
        body: List[Stmt] = []
        procs: List[ProcDecl] = []
        while not self._check(TokenKind.EOF):
            if self._check(TokenKind.PROC):
                procs.append(self._parse_proc())
            else:
                body.append(self.parse_statement())
        return Program(body=body, source=self._source, procs=procs)

    def _parse_proc(self) -> ProcDecl:
        token = self._expect(TokenKind.PROC, "at start of procedure")
        name = self._expect(TokenKind.IDENT, "after 'proc'")
        self._expect(TokenKind.LPAREN, "after procedure name")
        params: List[str] = []
        if not self._check(TokenKind.RPAREN):
            params.append(
                self._expect(TokenKind.IDENT, "in parameter list").text
            )
            while self._match(TokenKind.COMMA):
                params.append(
                    self._expect(TokenKind.IDENT, "in parameter list").text
                )
        self._expect(TokenKind.RPAREN, "after parameter list")
        brace = self._expect(TokenKind.LBRACE, "to open procedure body")
        body: List[Stmt] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError(
                    f"unterminated body of proc {name.text!r}",
                    brace.location,
                    self._source,
                )
            if self._check(TokenKind.PROC):
                raise ParseError(
                    "procedures cannot nest; close "
                    f"proc {name.text!r} before declaring another",
                    self._peek().location,
                    self._source,
                )
            body.append(self.parse_statement())
        self._expect(TokenKind.RBRACE, "to close procedure body")
        return ProcDecl(
            name=name.text,
            params=params,
            body=body,
            line=token.location.line,
        )

    def parse_statement(self) -> Stmt:
        """Parse one (possibly labelled) statement."""
        if self._check(TokenKind.IDENT) and self._peek(1).kind is TokenKind.COLON:
            label_token = self._advance()
            self._advance()  # ':'
            stmt = self.parse_statement()
            if stmt.label is not None:
                raise ParseError(
                    f"statement already labelled {stmt.label!r}; "
                    f"second label {label_token.text!r} not supported",
                    label_token.location,
                    self._source,
                )
            stmt.label = label_token.text
            # The label is the statement's first token; the paper numbers
            # the labelled statement by the label's line.
            stmt.line = min(stmt.line, label_token.location.line) or (
                label_token.location.line
            )
            return stmt
        return self._parse_unlabelled()

    def _parse_unlabelled(self) -> Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.WHILE:
            return self._parse_while()
        if kind is TokenKind.DO:
            return self._parse_do_while()
        if kind is TokenKind.FOR:
            return self._parse_for()
        if kind is TokenKind.SWITCH:
            return self._parse_switch()
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.BREAK:
            self._advance()
            self._expect(TokenKind.SEMI, "after 'break'")
            return Break(line=token.location.line)
        if kind is TokenKind.CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI, "after 'continue'")
            return Continue(line=token.location.line)
        if kind is TokenKind.CALL:
            self._advance()
            name = self._expect(TokenKind.IDENT, "after 'call'")
            self._expect(TokenKind.LPAREN, "after callee name")
            args: List[Expr] = []
            if not self._check(TokenKind.RPAREN):
                args.append(self.parse_expr())
                while self._match(TokenKind.COMMA):
                    args.append(self.parse_expr())
            self._expect(TokenKind.RPAREN, "to close call arguments")
            self._expect(TokenKind.SEMI, "after 'call ...()'")
            return CallStmt(
                line=token.location.line, name=name.text, args=args
            )
        if kind is TokenKind.GOTO:
            self._advance()
            target = self._expect(TokenKind.IDENT, "after 'goto'")
            self._expect(TokenKind.SEMI, "after goto target")
            return Goto(line=token.location.line, target=target.text)
        if kind is TokenKind.RETURN:
            self._advance()
            value: Optional[Expr] = None
            if not self._check(TokenKind.SEMI):
                value = self.parse_expr()
            self._expect(TokenKind.SEMI, "after 'return'")
            return Return(line=token.location.line, value=value)
        if kind is TokenKind.READ:
            stmt = self._parse_read_core()
            self._expect(TokenKind.SEMI, "after 'read(...)'")
            return stmt
        if kind is TokenKind.WRITE:
            self._advance()
            self._expect(TokenKind.LPAREN, "after 'write'")
            value = self.parse_expr()
            self._expect(TokenKind.RPAREN, "after write expression")
            self._expect(TokenKind.SEMI, "after 'write(...)'")
            return Write(line=token.location.line, value=value)
        if kind is TokenKind.SEMI:
            self._advance()
            return Skip(line=token.location.line)
        if kind is TokenKind.IDENT:
            stmt = self._parse_assign_core()
            self._expect(TokenKind.SEMI, "after assignment")
            return stmt
        raise ParseError(
            f"expected a statement, found {token.text or token.kind.value!r}",
            token.location,
            self._source,
        )

    def _parse_read_core(self) -> Read:
        token = self._expect(TokenKind.READ, "at start of read statement")
        self._expect(TokenKind.LPAREN, "after 'read'")
        target = self._expect(TokenKind.IDENT, "inside 'read(...)'")
        self._expect(TokenKind.RPAREN, "after read target")
        return Read(line=token.location.line, target=target.text)

    def _parse_assign_core(self) -> Assign:
        target = self._expect(TokenKind.IDENT, "at start of assignment")
        self._expect(TokenKind.ASSIGN, "in assignment")
        value = self.parse_expr()
        return Assign(line=target.location.line, target=target.text, value=value)

    def _parse_simple(self, context: str) -> Stmt:
        """A for-header clause: assignment or read, no trailing ';'."""
        if self._check(TokenKind.READ):
            return self._parse_read_core()
        if self._check(TokenKind.IDENT):
            return self._parse_assign_core()
        token = self._peek()
        raise ParseError(
            f"expected an assignment or read {context}, found "
            f"{token.text or token.kind.value!r}",
            token.location,
            self._source,
        )

    def _parse_if(self) -> If:
        token = self._expect(TokenKind.IF, "at start of if")
        self._expect(TokenKind.LPAREN, "after 'if'")
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN, "after if condition")
        then_branch = self.parse_statement()
        else_branch: Optional[Stmt] = None
        if self._match(TokenKind.ELSE):
            else_branch = self.parse_statement()
        return If(
            line=token.location.line,
            cond=cond,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _parse_while(self) -> While:
        token = self._expect(TokenKind.WHILE, "at start of while")
        self._expect(TokenKind.LPAREN, "after 'while'")
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN, "after while condition")
        body = self.parse_statement()
        return While(line=token.location.line, cond=cond, body=body)

    def _parse_do_while(self) -> DoWhile:
        token = self._expect(TokenKind.DO, "at start of do-while")
        body = self.parse_statement()
        self._expect(TokenKind.WHILE, "after do-while body")
        self._expect(TokenKind.LPAREN, "after 'while'")
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN, "after do-while condition")
        self._expect(TokenKind.SEMI, "after do-while")
        return DoWhile(line=token.location.line, body=body, cond=cond)

    def _parse_for(self) -> For:
        token = self._expect(TokenKind.FOR, "at start of for")
        self._expect(TokenKind.LPAREN, "after 'for'")
        init: Optional[Stmt] = None
        if not self._check(TokenKind.SEMI):
            init = self._parse_simple("in for initialiser")
        self._expect(TokenKind.SEMI, "after for initialiser")
        cond: Optional[Expr] = None
        if not self._check(TokenKind.SEMI):
            cond = self.parse_expr()
        self._expect(TokenKind.SEMI, "after for condition")
        step: Optional[Stmt] = None
        if not self._check(TokenKind.RPAREN):
            step = self._parse_simple("in for step")
        self._expect(TokenKind.RPAREN, "after for header")
        body = self.parse_statement()
        return For(
            line=token.location.line, init=init, cond=cond, step=step, body=body
        )

    def _parse_switch(self) -> Switch:
        token = self._expect(TokenKind.SWITCH, "at start of switch")
        self._expect(TokenKind.LPAREN, "after 'switch'")
        subject = self.parse_expr()
        self._expect(TokenKind.RPAREN, "after switch subject")
        self._expect(TokenKind.LBRACE, "to open switch body")
        cases: List[SwitchCase] = []
        while not self._check(TokenKind.RBRACE):
            cases.append(self._parse_switch_arm())
        self._expect(TokenKind.RBRACE, "to close switch body")
        return Switch(line=token.location.line, subject=subject, cases=cases)

    def _parse_switch_arm(self) -> SwitchCase:
        arm = SwitchCase()
        token = self._peek()
        if token.kind not in (TokenKind.CASE, TokenKind.DEFAULT):
            raise ParseError(
                "switch body must start with 'case' or 'default', found "
                f"{token.text or token.kind.value!r}",
                token.location,
                self._source,
            )
        arm.line = token.location.line
        while self._peek().kind in (TokenKind.CASE, TokenKind.DEFAULT):
            head = self._advance()
            if head.kind is TokenKind.CASE:
                negative = self._match(TokenKind.MINUS) is not None
                value_token = self._expect(TokenKind.INT, "after 'case'")
                value = -value_token.value if negative else value_token.value
                arm.matches.append(value)
            else:
                arm.matches.append(None)
            self._expect(TokenKind.COLON, "after case label")
        while self._peek().kind not in (
            TokenKind.CASE,
            TokenKind.DEFAULT,
            TokenKind.RBRACE,
            TokenKind.EOF,
        ):
            arm.stmts.append(self.parse_statement())
        return arm

    def _parse_block(self) -> Block:
        token = self._expect(TokenKind.LBRACE, "to open block")
        stmts: List[Stmt] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError(
                    "unterminated block", token.location, self._source
                )
            stmts.append(self.parse_statement())
        self._expect(TokenKind.RBRACE, "to close block")
        return Block(line=token.location.line, stmts=stmts)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing over _BINARY_TIERS).
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, tier: int) -> Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        ops = _BINARY_TIERS[tier]
        left = self._parse_binary(tier + 1)
        while self._peek().kind in ops:
            op_token = self._advance()
            right = self._parse_binary(tier + 1)
            left = Binary(op=ops[op_token.kind], left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NOT:
            self._advance()
            return Unary(op="!", operand=self._parse_unary())
        if token.kind is TokenKind.MINUS:
            self._advance()
            return Unary(op="-", operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return Num(value=token.value)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._check(TokenKind.LPAREN):
                self._advance()
                args: List[Expr] = []
                if not self._check(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self._match(TokenKind.COMMA):
                        args.append(self.parse_expr())
                self._expect(TokenKind.RPAREN, "to close call arguments")
                return Call(name=token.text, args=tuple(args))
            return Var(name=token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN, "to close parenthesised expression")
            return inner
        raise ParseError(
            f"expected an expression, found {token.text or token.kind.value!r}",
            token.location,
            self._source,
        )


def parse_program(source: str) -> Program:
    """Parse SL *source* text into a :class:`Program`."""
    parser = Parser(tokenize(source), source=source)
    return parser.parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single SL expression (used by tests and the REPL)."""
    parser = Parser(tokenize(source), source=source)
    expr = parser.parse_expr()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.location,
            source,
        )
    return expr
