"""Token kinds and the :class:`Token` record produced by the SL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.lang.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every lexical category of SL."""

    # Literals and names.
    INT = "int-literal"
    IDENT = "identifier"

    # Keywords.
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    FOR = "for"
    SWITCH = "switch"
    CASE = "case"
    DEFAULT = "default"
    BREAK = "break"
    CONTINUE = "continue"
    RETURN = "return"
    GOTO = "goto"
    READ = "read"
    WRITE = "write"
    PROC = "proc"
    CALL = "call"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    COLON = ":"
    COMMA = ","

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    NOT = "!"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"

    # End of input sentinel.
    EOF = "<eof>"


#: Reserved words, mapped to their token kinds.  ``read``/``write`` are
#: keywords in SL (they are statements, not ordinary calls).
KEYWORDS: Dict[str, TokenKind] = {
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "do": TokenKind.DO,
    "for": TokenKind.FOR,
    "switch": TokenKind.SWITCH,
    "case": TokenKind.CASE,
    "default": TokenKind.DEFAULT,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "return": TokenKind.RETURN,
    "goto": TokenKind.GOTO,
    "read": TokenKind.READ,
    "write": TokenKind.WRITE,
    "proc": TokenKind.PROC,
    "call": TokenKind.CALL,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme.

    Attributes
    ----------
    kind:
        The lexical category.
    text:
        The exact source text of the lexeme.
    location:
        1-based line/column of the first character.
    value:
        For :attr:`TokenKind.INT` tokens, the parsed integer value.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: int = 0

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
