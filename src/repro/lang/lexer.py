"""A hand-written lexer for SL.

The lexer is a straightforward single-pass scanner.  It supports ``//``
line comments and ``/* ... */`` block comments, decimal integer literals,
identifiers, and the operator set listed in :mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenKind

#: Two-character operators, checked before single-character ones.
_TWO_CHAR_OPS = {
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.NOT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Scans SL source text into a list of :class:`Token`.

    The scanner tracks 1-based line/column positions so that every token
    (and therefore every AST node and CFG node) can be traced back to its
    source line — the paper identifies statements by line number, and the
    reproduction's corpus tests rely on that mapping.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    # ------------------------------------------------------------------
    # Character-level helpers.
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self) -> str:
        ch = self.source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col)

    def _at_end(self) -> bool:
        return self._pos >= len(self.source)

    # ------------------------------------------------------------------
    # Token-level scanning.
    # ------------------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace and both comment styles."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance()
                self._advance()
                while True:
                    if self._at_end():
                        raise LexError(
                            "unterminated block comment", start, self.source
                        )
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _scan_number(self) -> Token:
        start = self._location()
        text = []
        while not self._at_end() and self._peek().isdigit():
            text.append(self._advance())
        if not self._at_end() and (self._peek().isalpha() or self._peek() == "_"):
            raise LexError(
                f"malformed number: digit followed by {self._peek()!r}",
                self._location(),
                self.source,
            )
        lexeme = "".join(text)
        return Token(TokenKind.INT, lexeme, start, value=int(lexeme))

    def _scan_word(self) -> Token:
        start = self._location()
        text = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            text.append(self._advance())
        lexeme = "".join(text)
        kind = KEYWORDS.get(lexeme, TokenKind.IDENT)
        return Token(kind, lexeme, start)

    def next_token(self) -> Token:
        """Scan and return the next token (EOF at end of input)."""
        self._skip_trivia()
        if self._at_end():
            return Token(TokenKind.EOF, "", self._location())
        start = self._location()
        ch = self._peek()
        if ch.isdigit():
            return self._scan_number()
        if ch.isalpha() or ch == "_":
            return self._scan_word()
        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPS[two], two, start)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], ch, start)
        raise LexError(f"unexpected character {ch!r}", start, self.source)

    def tokens(self) -> Iterator[Token]:
        """Yield tokens up to and including the EOF sentinel."""
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(source: str) -> List[Token]:
    """Scan *source* into a token list ending with an EOF token."""
    return list(Lexer(source).tokens())
