"""Semantic validation of SL programs.

Checks performed before any analysis runs:

* every ``goto`` target names a label that exists;
* labels are unique;
* ``break`` only appears inside a loop or a switch;
* ``continue`` only appears inside a loop;
* no switch arm repeats a ``case`` value or has two ``default`` labels.

:func:`collect_labels` is shared with the CFG builder.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.ast_nodes import (
    Block,
    Break,
    Continue,
    DoWhile,
    For,
    Goto,
    If,
    Program,
    Stmt,
    Switch,
    While,
)
from repro.lang.errors import ValidationError


def collect_labels(program: Program) -> Dict[str, Stmt]:
    """Map each statement label to its statement.

    Raises
    ------
    ValidationError
        If two statements carry the same label.
    """
    labels: Dict[str, Stmt] = {}
    for stmt in program.statements():
        if stmt.label is None:
            continue
        if stmt.label in labels:
            raise ValidationError(
                f"duplicate label {stmt.label!r} "
                f"(lines {labels[stmt.label].line} and {stmt.line})"
            )
        labels[stmt.label] = stmt
    return labels


def check_program(program: Program) -> List[str]:
    """Return a list of diagnostic messages (empty when valid)."""
    diagnostics: List[str] = []
    labels: Dict[str, Stmt] = {}
    for stmt in program.statements():
        if stmt.label is not None:
            if stmt.label in labels:
                diagnostics.append(
                    f"line {stmt.line}: duplicate label {stmt.label!r} "
                    f"(first defined on line {labels[stmt.label].line})"
                )
            else:
                labels[stmt.label] = stmt

    for stmt in program.statements():
        if isinstance(stmt, Goto) and stmt.target not in labels:
            diagnostics.append(
                f"line {stmt.line}: goto to undefined label {stmt.target!r}"
            )

    for top in program.body:
        _check_jump_placement(top, diagnostics, in_loop=False, in_switch=False)

    for stmt in program.statements():
        if isinstance(stmt, Switch):
            _check_switch_arms(stmt, diagnostics)

    return diagnostics


def _check_jump_placement(
    stmt: Stmt, diagnostics: List[str], in_loop: bool, in_switch: bool
) -> None:
    """Recursively verify that break/continue appear in a legal context."""
    if isinstance(stmt, Break):
        if not (in_loop or in_switch):
            diagnostics.append(
                f"line {stmt.line}: 'break' outside a loop or switch"
            )
    elif isinstance(stmt, Continue):
        if not in_loop:
            diagnostics.append(f"line {stmt.line}: 'continue' outside a loop")
    elif isinstance(stmt, If):
        if stmt.then_branch is not None:
            _check_jump_placement(stmt.then_branch, diagnostics, in_loop, in_switch)
        if stmt.else_branch is not None:
            _check_jump_placement(stmt.else_branch, diagnostics, in_loop, in_switch)
    elif isinstance(stmt, (While, DoWhile)):
        if stmt.body is not None:
            # A new loop context: break leaves this loop, not any switch.
            _check_jump_placement(
                stmt.body, diagnostics, in_loop=True, in_switch=False
            )
    elif isinstance(stmt, For):
        if stmt.body is not None:
            _check_jump_placement(
                stmt.body, diagnostics, in_loop=True, in_switch=False
            )
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            for inner in case.stmts:
                _check_jump_placement(
                    inner, diagnostics, in_loop=in_loop, in_switch=True
                )
    elif isinstance(stmt, Block):
        for inner in stmt.stmts:
            _check_jump_placement(inner, diagnostics, in_loop, in_switch)


def _check_switch_arms(stmt: Switch, diagnostics: List[str]) -> None:
    seen: Dict[object, int] = {}
    for case in stmt.cases:
        for match in case.matches:
            key = "default" if match is None else match
            if key in seen:
                what = "'default'" if match is None else f"case {match}"
                diagnostics.append(
                    f"line {case.line}: duplicate {what} in switch "
                    f"(first on line {seen[key]})"
                )
            else:
                seen[key] = case.line


def validate_program(program: Program) -> List[str]:
    """Run all checks; raise :class:`ValidationError` on any failure.

    Returns the (empty) diagnostic list on success so callers can use it
    uniformly with :func:`check_program`.
    """
    diagnostics = check_program(program)
    if diagnostics:
        raise ValidationError(
            "program failed validation:\n  " + "\n  ".join(diagnostics)
        )
    return diagnostics
