"""Semantic validation of SL programs.

Checks performed before any analysis runs:

* every ``goto`` target names a label that exists *in the same unit*
  (labels are scoped to the unit — main or one ``proc`` — that defines
  them; jumping into another procedure is meaningless);
* labels are unique within their unit;
* ``break`` only appears inside a loop or a switch;
* ``continue`` only appears inside a loop;
* no switch arm repeats a ``case`` value or has two ``default`` labels;
* procedure declarations are unique (and never named ``main``, the
  reserved name of the top-level unit);
* every ``call`` names a declared procedure and passes exactly as many
  arguments as the procedure has parameters.

The core, :func:`check_program_diagnostics`, emits structured
:class:`~repro.lint.diagnostics.Diagnostic` objects (stable ``SL0xx``
codes, severity, position, fix hint) — the same model the ``slang
check`` rule engine uses.  :func:`check_program` remains as a thin
formatting shim returning the historical ``line N: ...`` strings, and
:func:`validate_program` still raises :class:`ValidationError` joining
them, so existing callers are unaffected.

:func:`collect_labels` is shared with the CFG builder.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.lang.ast_nodes import (
    Block,
    Break,
    CallStmt,
    Continue,
    DoWhile,
    For,
    Goto,
    If,
    MAIN_UNIT,
    ProcDecl,
    Program,
    Stmt,
    Switch,
    While,
    walk_statements,
)
from repro.lang.errors import ValidationError
from repro.lint.diagnostics import Diagnostic, Severity

#: Front-end diagnostic codes (the SL0xx block).  SL001 is reserved for
#: lexer/parser failures and is emitted by the lint driver, which is the
#: only place a syntax error can be reported rather than raised.
CODE_SYNTAX_ERROR = "SL001"
CODE_DUPLICATE_LABEL = "SL002"
CODE_UNDEFINED_GOTO = "SL003"
CODE_MISPLACED_BREAK = "SL004"
CODE_MISPLACED_CONTINUE = "SL005"
CODE_DUPLICATE_CASE = "SL006"
CODE_UNDEFINED_PROC = "SL007"
CODE_DUPLICATE_PROC = "SL008"
CODE_CALL_ARITY = "SL009"


def _unit_statements(stmts: Iterable[Stmt]):
    for top in stmts:
        yield from walk_statements(top)


def collect_labels(program: Program) -> Dict[str, Stmt]:
    """Map each main-unit statement label to its statement.

    Labels are unit-scoped; this helper covers the main unit only (the
    CFG builder collects per-procedure labels itself while wiring).

    Raises
    ------
    ValidationError
        If two statements carry the same label.
    """
    labels: Dict[str, Stmt] = {}
    for stmt in program.statements():
        if stmt.label is None:
            continue
        if stmt.label in labels:
            raise ValidationError(
                f"duplicate label {stmt.label!r} "
                f"(lines {labels[stmt.label].line} and {stmt.line})"
            )
        labels[stmt.label] = stmt
    return labels


def check_program_diagnostics(program: Program) -> List[Diagnostic]:
    """Return structured diagnostics (empty when valid).

    All front-end findings are errors: a program carrying any of them
    cannot be given a CFG.  Emission order matches the historical string
    API (labels, gotos, jump placement, switch arms, per unit in source
    order) so the shims below reproduce the old output byte for byte on
    procedure-free programs.
    """
    diagnostics: List[Diagnostic] = []

    proc_table: Dict[str, ProcDecl] = {}
    for proc in program.procs:
        if proc.name == MAIN_UNIT:
            diagnostics.append(
                _error(
                    CODE_DUPLICATE_PROC,
                    "reserved-proc-name",
                    proc.line,
                    f"procedure name {MAIN_UNIT!r} is reserved for the "
                    "top-level unit",
                    hint="rename the procedure",
                )
            )
        elif proc.name in proc_table:
            diagnostics.append(
                _error(
                    CODE_DUPLICATE_PROC,
                    "duplicate-proc",
                    proc.line,
                    f"duplicate procedure {proc.name!r} (first declared "
                    f"on line {proc_table[proc.name].line})",
                    hint="rename one of the procedures",
                )
            )
        else:
            proc_table[proc.name] = proc

    for unit_name, body in program.units():
        _check_unit(unit_name, body, proc_table, diagnostics)

    return diagnostics


def _check_unit(
    unit_name: str,
    body: List[Stmt],
    proc_table: Dict[str, ProcDecl],
    diagnostics: List[Diagnostic],
) -> None:
    in_proc = f" in proc {unit_name!r}" if unit_name != MAIN_UNIT else ""

    labels: Dict[str, Stmt] = {}
    for stmt in _unit_statements(body):
        if stmt.label is not None:
            if stmt.label in labels:
                diagnostics.append(
                    _error(
                        CODE_DUPLICATE_LABEL,
                        "duplicate-label",
                        stmt.line,
                        f"duplicate label {stmt.label!r} "
                        f"(first defined on line {labels[stmt.label].line})"
                        + in_proc,
                        hint="rename one of the labels",
                    )
                )
            else:
                labels[stmt.label] = stmt

    for stmt in _unit_statements(body):
        if isinstance(stmt, Goto) and stmt.target not in labels:
            diagnostics.append(
                _error(
                    CODE_UNDEFINED_GOTO,
                    "undefined-goto-target",
                    stmt.line,
                    f"goto to undefined label {stmt.target!r}" + in_proc,
                    hint=(
                        "add the label or fix the goto target (labels are "
                        "scoped to their unit; a goto cannot cross a "
                        "procedure boundary)"
                        if in_proc
                        else "add the label or fix the goto target"
                    ),
                )
            )

    for top in body:
        _check_jump_placement(top, diagnostics, in_loop=False, in_switch=False)

    for stmt in _unit_statements(body):
        if isinstance(stmt, Switch):
            _check_switch_arms(stmt, diagnostics)

    for stmt in _unit_statements(body):
        if not isinstance(stmt, CallStmt):
            continue
        callee = proc_table.get(stmt.name)
        if callee is None:
            diagnostics.append(
                _error(
                    CODE_UNDEFINED_PROC,
                    "undefined-proc-call",
                    stmt.line,
                    f"call to undefined procedure {stmt.name!r}" + in_proc,
                    hint="declare the procedure or fix the callee name",
                )
            )
        elif len(stmt.args) != len(callee.params):
            diagnostics.append(
                _error(
                    CODE_CALL_ARITY,
                    "call-arity-mismatch",
                    stmt.line,
                    f"call to {stmt.name!r} passes {len(stmt.args)} "
                    f"argument(s); the procedure declares "
                    f"{len(callee.params)} parameter(s) "
                    f"(line {callee.line})" + in_proc,
                    hint="match the call's argument count to the "
                    "procedure's parameter list",
                )
            )


def check_program(program: Program) -> List[str]:
    """Return a list of diagnostic messages (empty when valid).

    Formatting shim over :func:`check_program_diagnostics`, kept for the
    historical stringly-typed API.
    """
    return [
        f"line {diagnostic.line}: {diagnostic.message}"
        for diagnostic in check_program_diagnostics(program)
    ]


def _error(
    code: str, rule: str, line: int, message: str, hint: str = ""
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        line=line,
        message=message,
        rule=rule,
        hint=hint or None,
    )


def _check_jump_placement(
    stmt: Stmt, diagnostics: List[Diagnostic], in_loop: bool, in_switch: bool
) -> None:
    """Recursively verify that break/continue appear in a legal context."""
    if isinstance(stmt, Break):
        if not (in_loop or in_switch):
            diagnostics.append(
                _error(
                    CODE_MISPLACED_BREAK,
                    "misplaced-break",
                    stmt.line,
                    "'break' outside a loop or switch",
                )
            )
    elif isinstance(stmt, Continue):
        if not in_loop:
            diagnostics.append(
                _error(
                    CODE_MISPLACED_CONTINUE,
                    "misplaced-continue",
                    stmt.line,
                    "'continue' outside a loop",
                )
            )
    elif isinstance(stmt, If):
        if stmt.then_branch is not None:
            _check_jump_placement(stmt.then_branch, diagnostics, in_loop, in_switch)
        if stmt.else_branch is not None:
            _check_jump_placement(stmt.else_branch, diagnostics, in_loop, in_switch)
    elif isinstance(stmt, (While, DoWhile)):
        if stmt.body is not None:
            # A new loop context: break leaves this loop, not any switch.
            _check_jump_placement(
                stmt.body, diagnostics, in_loop=True, in_switch=False
            )
    elif isinstance(stmt, For):
        if stmt.body is not None:
            _check_jump_placement(
                stmt.body, diagnostics, in_loop=True, in_switch=False
            )
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            for inner in case.stmts:
                _check_jump_placement(
                    inner, diagnostics, in_loop=in_loop, in_switch=True
                )
    elif isinstance(stmt, Block):
        for inner in stmt.stmts:
            _check_jump_placement(inner, diagnostics, in_loop, in_switch)


def _check_switch_arms(stmt: Switch, diagnostics: List[Diagnostic]) -> None:
    seen: Dict[object, int] = {}
    for case in stmt.cases:
        for match in case.matches:
            key = "default" if match is None else match
            if key in seen:
                what = "'default'" if match is None else f"case {match}"
                diagnostics.append(
                    _error(
                        CODE_DUPLICATE_CASE,
                        "duplicate-switch-case",
                        case.line,
                        f"duplicate {what} in switch "
                        f"(first on line {seen[key]})",
                        hint="merge or remove the duplicate arm",
                    )
                )
            else:
                seen[key] = case.line


def validate_program(program: Program) -> List[str]:
    """Run all checks; raise :class:`ValidationError` on any failure.

    Returns the (empty) diagnostic list on success so callers can use it
    uniformly with :func:`check_program`.
    """
    diagnostics = check_program(program)
    if diagnostics:
        raise ValidationError(
            "program failed validation:\n  " + "\n  ".join(diagnostics)
        )
    return diagnostics
