"""Source locations and the diagnostic/error hierarchy for SL.

Every front-end and analysis error in the reproduction derives from
:class:`SlangError` so applications can catch a single exception type.
Errors carry a :class:`SourceLocation` when one is known and render a
``file:line:col`` prefix plus an optional source excerpt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A 1-based (line, column) position in a source buffer."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class SlangError(Exception):
    """Base class for every error raised by the reproduction.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    location:
        Where in the source the problem was detected, when known.
    source:
        The full source text; used to render an excerpt of the offending
        line under the message.
    """

    def __init__(
        self,
        message: str,
        location: Optional[SourceLocation] = None,
        source: Optional[str] = None,
    ) -> None:
        self.message = message
        self.location = location
        self.source = source
        super().__init__(self._render())

    def _render(self) -> str:
        parts: List[str] = []
        if self.location is not None:
            parts.append(f"{self.location}: {self.message}")
        else:
            parts.append(self.message)
        excerpt = self._excerpt()
        if excerpt:
            parts.append(excerpt)
        return "\n".join(parts)

    def _excerpt(self) -> Optional[str]:
        if self.source is None or self.location is None:
            return None
        lines = self.source.splitlines()
        if not (1 <= self.location.line <= len(lines)):
            return None
        text = lines[self.location.line - 1]
        caret = " " * max(self.location.column - 1, 0) + "^"
        return f"    {text}\n    {caret}"


class LexError(SlangError):
    """An unrecognised character or malformed token."""


class ParseError(SlangError):
    """A syntax error detected by the recursive-descent parser."""


class ValidationError(SlangError):
    """A semantic error: unresolved label, misplaced jump, and so on."""


class AnalysisError(SlangError):
    """An analysis precondition failed (for example, a CFG node cannot
    reach EXIT, so its postdominator is undefined)."""


class SliceError(SlangError):
    """A slicing request was malformed (unknown variable or location)."""


class UnreachableCriterionError(SliceError):
    """The criterion statement can never execute (no CFG path from
    ENTRY reaches it), so every slice with respect to it is vacuous —
    the empty program has the same (empty) trajectory.  Rejected so a
    "slice" of dead code is never mistaken for an answer; the ``slang
    check`` SL101 diagnostic points at the dead code itself."""


class InterpreterError(SlangError):
    """A runtime error while executing a program (for example, reading
    past the end of the input stream with no ``eof`` guard)."""
