"""SL: a small C-like imperative language used as the slicing substrate.

The paper slices C programs.  SL is a faithful miniature: assignments,
``read``/``write`` I/O, ``if``/``else``, ``while``, ``do``-``while``,
``for``, ``switch`` with C fall-through, ``break``, ``continue``,
``return``, and ``goto`` with statement labels.  Every example program in
the paper is expressible in SL with the paper's own statement numbering.

Public entry points:

* :func:`parse_program` — source text to AST (:class:`Program`).
* :func:`tokenize` — source text to a token stream.
* :func:`pretty` — AST back to canonical source text.
* :func:`validate_program` — semantic checks (label resolution, jump
  placement); returns the list of diagnostics and raises on errors.
"""

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    Num,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Switch,
    SwitchCase,
    Unary,
    Var,
    While,
    Write,
    walk_statements,
)
from repro.lang.errors import (
    LexError,
    ParseError,
    SlangError,
    SourceLocation,
    ValidationError,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_expression, parse_program
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program

__all__ = [
    "Assign",
    "Binary",
    "Block",
    "Break",
    "Call",
    "Continue",
    "DoWhile",
    "Expr",
    "For",
    "Goto",
    "If",
    "Lexer",
    "LexError",
    "Num",
    "ParseError",
    "Parser",
    "Program",
    "Read",
    "Return",
    "Skip",
    "SlangError",
    "SourceLocation",
    "Stmt",
    "Switch",
    "SwitchCase",
    "Unary",
    "ValidationError",
    "Var",
    "While",
    "Write",
    "parse_expression",
    "parse_program",
    "pretty",
    "tokenize",
    "validate_program",
    "walk_statements",
]
