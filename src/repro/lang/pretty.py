"""A pretty-printer for SL ASTs.

The printer emits canonical source that re-parses to a structurally equal
AST (checked by a property test).  It is also the engine behind slice
extraction: an extracted slice is an AST, and :func:`pretty` turns it back
into a runnable program.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CallStmt,
    Continue,
    DoWhile,
    Expr,
    For,
    Goto,
    If,
    Num,
    ProcDecl,
    Program,
    Read,
    Return,
    Skip,
    Stmt,
    Switch,
    Unary,
    Var,
    While,
    Write,
)

#: Precedence of binary operators; mirrors the parser's tiers.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_UNARY_PRECEDENCE = 7


def pretty_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render *expr* with a minimal set of parentheses."""
    if isinstance(expr, Num):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Call):
        args = ", ".join(pretty_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Unary):
        inner = pretty_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        # `- -x` must not lex as `--`; keep a space between unary minuses.
        if expr.op == "-" and inner.startswith("-"):
            text = f"- {inner}"
        if parent_precedence > _UNARY_PRECEDENCE:
            return f"({text})"
        return text
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, precedence)
        # Right operand gets precedence + 1: our binary operators are all
        # left-associative, so an equal-precedence right child needs parens.
        right = pretty_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if parent_precedence > precedence:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node: {expr!r}")


class _Printer:
    """Accumulates indented source lines for a statement tree."""

    def __init__(self, indent_unit: str = "    ") -> None:
        self._lines: List[str] = []
        self._indent_unit = indent_unit

    def _emit(self, depth: int, text: str) -> None:
        self._lines.append(f"{self._indent_unit * depth}{text}")

    def render(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")

    # ------------------------------------------------------------------

    def statement(self, stmt: Stmt, depth: int) -> None:
        prefix = f"{stmt.label}: " if stmt.label else ""
        if isinstance(stmt, Skip):
            self._emit(depth, f"{prefix};")
        elif isinstance(stmt, Assign):
            self._emit(
                depth, f"{prefix}{stmt.target} = {pretty_expr(stmt.value)};"
            )
        elif isinstance(stmt, Read):
            self._emit(depth, f"{prefix}read({stmt.target});")
        elif isinstance(stmt, Write):
            self._emit(depth, f"{prefix}write({pretty_expr(stmt.value)});")
        elif isinstance(stmt, Break):
            self._emit(depth, f"{prefix}break;")
        elif isinstance(stmt, Continue):
            self._emit(depth, f"{prefix}continue;")
        elif isinstance(stmt, Return):
            if stmt.value is None:
                self._emit(depth, f"{prefix}return;")
            else:
                self._emit(depth, f"{prefix}return {pretty_expr(stmt.value)};")
        elif isinstance(stmt, Goto):
            self._emit(depth, f"{prefix}goto {stmt.target};")
        elif isinstance(stmt, CallStmt):
            args = ", ".join(pretty_expr(arg) for arg in stmt.args)
            self._emit(depth, f"{prefix}call {stmt.name}({args});")
        elif isinstance(stmt, Block):
            self._emit(depth, f"{prefix}{{")
            for inner in stmt.stmts:
                self.statement(inner, depth + 1)
            self._emit(depth, "}")
        elif isinstance(stmt, If):
            # Conditional jumps print on one line, as the paper writes
            # them (`L3: if (eof()) goto L14;`).
            if (
                isinstance(stmt.then_branch, Goto)
                and stmt.then_branch.label is None
                and stmt.else_branch is None
            ):
                self._emit(
                    depth,
                    f"{prefix}if ({pretty_expr(stmt.cond)}) "
                    f"goto {stmt.then_branch.target};",
                )
                return
            self._emit(depth, f"{prefix}if ({pretty_expr(stmt.cond)})")
            self._branch(stmt.then_branch, depth)
            if stmt.else_branch is not None:
                self._emit(depth, "else")
                self._branch(stmt.else_branch, depth)
        elif isinstance(stmt, While):
            self._emit(depth, f"{prefix}while ({pretty_expr(stmt.cond)})")
            self._branch(stmt.body, depth)
        elif isinstance(stmt, DoWhile):
            self._emit(depth, f"{prefix}do")
            self._branch(stmt.body, depth)
            self._emit(depth, f"while ({pretty_expr(stmt.cond)});")
        elif isinstance(stmt, For):
            init = self._headerless(stmt.init)
            cond = pretty_expr(stmt.cond) if stmt.cond is not None else ""
            step = self._headerless(stmt.step)
            self._emit(depth, f"{prefix}for ({init}; {cond}; {step})")
            self._branch(stmt.body, depth)
        elif isinstance(stmt, Switch):
            self._emit(depth, f"{prefix}switch ({pretty_expr(stmt.subject)}) {{")
            for case in stmt.cases:
                for match in case.matches:
                    if match is None:
                        self._emit(depth + 1, "default:")
                    else:
                        self._emit(depth + 1, f"case {match}:")
                for inner in case.stmts:
                    self.statement(inner, depth + 2)
            self._emit(depth, "}")
        else:
            raise TypeError(f"unknown statement node: {stmt!r}")

    def proc(self, proc: ProcDecl, depth: int = 0) -> None:
        params = ", ".join(proc.params)
        self._emit(depth, f"proc {proc.name}({params}) {{")
        for inner in proc.body:
            self.statement(inner, depth + 1)
        self._emit(depth, "}")

    def _branch(self, stmt: Optional[Stmt], depth: int) -> None:
        """Render an if/loop body; non-blocks get one extra indent level."""
        if stmt is None:
            self._emit(depth + 1, ";")
        elif isinstance(stmt, Block):
            self.statement(stmt, depth)
        else:
            self.statement(stmt, depth + 1)

    @staticmethod
    def _headerless(stmt: Optional[Stmt]) -> str:
        """Render a for-header clause without the trailing semicolon."""
        if stmt is None:
            return ""
        if isinstance(stmt, Assign):
            return f"{stmt.target} = {pretty_expr(stmt.value)}"
        if isinstance(stmt, Read):
            return f"read({stmt.target})"
        raise TypeError(f"for-header clause must be assign/read: {stmt!r}")


def pretty(node) -> str:
    """Render a :class:`Program`, :class:`Stmt`, or :class:`Expr`.

    Programs print in canonical unit order: the main body first, then
    each ``proc`` declaration (parsing accepts either order, so the
    round-trip property still holds for mixed sources).
    """
    if isinstance(node, Program):
        printer = _Printer()
        for stmt in node.body:
            printer.statement(stmt, 0)
        for index, proc in enumerate(node.procs):
            if node.body or index:
                printer._lines.append("")
            printer.proc(proc)
        return printer.render()
    if isinstance(node, ProcDecl):
        printer = _Printer()
        printer.proc(node)
        return printer.render()
    if isinstance(node, Stmt):
        printer = _Printer()
        printer.statement(node, 0)
        return printer.render()
    if isinstance(node, Expr):
        return pretty_expr(node)
    raise TypeError(f"cannot pretty-print {node!r}")
