"""Abstract syntax trees for SL.

Statements carry their 1-based source ``line`` and an optional statement
``label`` (the ``L3:`` prefix used by goto targets).  The paper's
algorithms are formulated over *statements*, so every statement node has
an identity; expression nodes are plain values.

The module also provides :func:`walk_statements`, a pre-order lexical walk
used by the lexical-successor-tree construction, the validator, and the
pretty-printer tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple, Union


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------


class Expr:
    """Base class of SL expressions."""

    def variables(self) -> Set[str]:
        """The set of variable names read by this expression."""
        raise NotImplementedError

    def calls(self) -> Set[str]:
        """The set of intrinsic function names invoked by this expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    """An integer literal."""

    value: int

    def variables(self) -> Set[str]:
        return set()

    def calls(self) -> Set[str]:
        return set()


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference."""

    name: str

    def variables(self) -> Set[str]:
        return {self.name}

    def calls(self) -> Set[str]:
        return set()


@dataclass(frozen=True)
class Call(Expr):
    """A call to a pure intrinsic function, for example ``f1(x)``.

    SL has no user-defined functions (the paper is intraprocedural); calls
    name *intrinsics* — pure functions supplied by the runtime, such as
    the ``f1``/``f2``/``f3`` of the paper's running example and ``eof()``.
    """

    name: str
    args: Tuple[Expr, ...]

    def variables(self) -> Set[str]:
        out: Set[str] = set()
        for arg in self.args:
            out |= arg.variables()
        return out

    def calls(self) -> Set[str]:
        out = {self.name}
        for arg in self.args:
            out |= arg.calls()
        return out


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operation: ``!e`` or ``-e``."""

    op: str
    operand: Expr

    def variables(self) -> Set[str]:
        return self.operand.variables()

    def calls(self) -> Set[str]:
        return self.operand.calls()


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operation with a C-like operator."""

    op: str
    left: Expr
    right: Expr

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def calls(self) -> Set[str]:
        return self.left.calls() | self.right.calls()


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of SL statements.

    Attributes
    ----------
    line:
        1-based source line of the statement's first token.
    label:
        Optional goto label (``L3:``) attached to the statement.
    """

    line: int = field(default=0, compare=False)
    label: Optional[str] = field(default=None, compare=False)


@dataclass
class Skip(Stmt):
    """The empty statement ``;`` — occasionally a label carrier."""


@dataclass
class Assign(Stmt):
    """``target = value;``"""

    target: str = ""
    value: Expr = Num(0)


@dataclass
class Read(Stmt):
    """``read(target);`` — consume one value from the input stream."""

    target: str = ""


@dataclass
class Write(Stmt):
    """``write(value);`` — append a value to the output stream."""

    value: Expr = Num(0)


@dataclass
class If(Stmt):
    """``if (cond) then_branch [else else_branch]``"""

    cond: Expr = Num(0)
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    """``while (cond) body``"""

    cond: Expr = Num(0)
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);``"""

    body: Optional[Stmt] = None
    cond: Expr = Num(0)


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``.

    ``init`` and ``step`` are optional simple statements (assignment or
    read); ``cond`` is optional (absent means "always true", which the
    validator rejects unless the body can still reach EXIT via a jump).
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional[Stmt] = None


@dataclass
class SwitchCase:
    """One arm of a switch: its match values and its statements.

    ``matches`` lists the integer ``case`` values attached to the arm's
    first statement position; ``None`` in the list denotes ``default``.
    Control *falls through* from the end of one arm into the next, exactly
    as in C, unless a ``break`` intervenes.
    """

    matches: List[Optional[int]] = field(default_factory=list)
    stmts: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    """``switch (subject) { case ...: ... }`` with C fall-through."""

    subject: Expr = Num(0)
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Break(Stmt):
    """``break;`` — jump past the innermost enclosing loop or switch."""


@dataclass
class Continue(Stmt):
    """``continue;`` — jump to the innermost enclosing loop's next test."""


@dataclass
class Return(Stmt):
    """``return [value];`` — jump to program EXIT."""

    value: Optional[Expr] = None


@dataclass
class Goto(Stmt):
    """``goto target;``"""

    target: str = ""


@dataclass
class CallStmt(Stmt):
    """``call name(arg, ...);`` — invoke a declared procedure.

    SL procedures communicate exclusively through their parameters,
    which are passed by *value-result* (copy-in / copy-out): on entry
    each formal receives the value of its actual argument; on return
    each actual that is a plain variable receives the final value of
    its formal.  Arguments that are not plain variables are copy-in
    only.  This is the classic parameter model of the
    Horwitz–Reps–Binkley system-dependence-graph construction, where it
    yields one actual-in vertex per argument and one actual-out vertex
    per variable argument.
    """

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Block(Stmt):
    """``{ stmts }``"""

    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class ProcDecl:
    """``proc name(p1, ..., pk) { body }`` — a procedure declaration.

    Procedures appear only at the top level of a program; their bodies
    are ordinary statement sequences.  ``line`` is the declaration
    line.  A ``return`` inside a procedure jumps to the procedure's
    exit (through its formal-out prelude), not to the program's.
    """

    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


#: The synthetic unit name for a program's top-level statement sequence.
MAIN_UNIT = "main"


@dataclass
class Program:
    """A whole SL program: a top-level statement sequence (the *main*
    unit) plus any ``proc`` declarations."""

    body: List[Stmt] = field(default_factory=list)
    source: Optional[str] = None
    procs: List[ProcDecl] = field(default_factory=list)

    def statements(self) -> Iterator[Stmt]:
        """Pre-order lexical walk over the main unit's statements.

        Procedure bodies are *not* included — label scoping, criterion
        lines, and the single-procedure pipeline all operate on one
        unit at a time.  Use :meth:`all_statements` to span every unit.
        """
        for stmt in self.body:
            yield from walk_statements(stmt)

    def all_statements(self) -> Iterator[Stmt]:
        """Pre-order lexical walk over every unit (main, then procs)."""
        yield from self.statements()
        for proc in self.procs:
            for stmt in proc.body:
                yield from walk_statements(stmt)

    def units(self) -> Iterator[Tuple[str, List[Stmt]]]:
        """Yield ``(unit name, statement list)`` for main and each proc."""
        yield (MAIN_UNIT, self.body)
        for proc in self.procs:
            yield (proc.name, proc.body)

    def proc_named(self, name: str) -> Optional[ProcDecl]:
        for proc in self.procs:
            if proc.name == name:
                return proc
        return None


def walk_statements(stmt: Stmt) -> Iterator[Stmt]:
    """Yield *stmt* and every statement nested inside it, in lexical
    (pre-order, source) order.

    ``Block`` nodes are yielded too: they are real AST nodes, though they
    never become CFG nodes.
    """
    yield stmt
    if isinstance(stmt, If):
        if stmt.then_branch is not None:
            yield from walk_statements(stmt.then_branch)
        if stmt.else_branch is not None:
            yield from walk_statements(stmt.else_branch)
    elif isinstance(stmt, While):
        if stmt.body is not None:
            yield from walk_statements(stmt.body)
    elif isinstance(stmt, DoWhile):
        if stmt.body is not None:
            yield from walk_statements(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_statements(stmt.init)
        if stmt.step is not None:
            yield from walk_statements(stmt.step)
        if stmt.body is not None:
            yield from walk_statements(stmt.body)
    elif isinstance(stmt, Switch):
        for case in stmt.cases:
            for inner in case.stmts:
                yield from walk_statements(inner)
    elif isinstance(stmt, Block):
        for inner in stmt.stmts:
            yield from walk_statements(inner)


#: Statements that transfer control unconditionally when executed.
JumpStmt = Union[Break, Continue, Return, Goto]


def is_jump(stmt: Stmt) -> bool:
    """True for the four unconditional jump statement kinds.

    The paper uses "jump statement" for ``goto`` and its structured
    derivatives ``break``, ``continue``, and ``return`` (footnote 1).
    """
    return isinstance(stmt, (Break, Continue, Return, Goto))
