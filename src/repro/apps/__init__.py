"""Application layer: analyses built on the slicing substrate.

* :mod:`repro.apps.deadcode` — dead-code elimination via liveness and
  reachability (the "optimization" application of the paper's §1 list).
"""

from repro.apps.deadcode import DeadCodeReport, eliminate_dead_code

__all__ = ["DeadCodeReport", "eliminate_dead_code"]
