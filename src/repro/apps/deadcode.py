"""Dead-code elimination over SL programs.

One of the paper's §1 motivating applications ("optimization") built on
the same substrate as the slicers:

* **dead assignments** — an ``x = e`` whose target is not live-out at
  its node can go (the expression is pure in SL; ``read`` is *never*
  removed this way since it also defines the ``$in`` cursor, which stays
  live as long as any later read/eof depends on the stream position);
* **unreachable statements** — anything ENTRY cannot reach.

Removal is iterated to a fixed point (removing one dead assignment can
kill the liveness of another) and materialised through the slice
extractor, so labels are re-associated exactly as for slices.  The
transformation preserves the program's *observable* behaviour — output
stream and return value — which the test suite checks with the
interpreter on random programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.analysis.liveness import compute_liveness
from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.slicing.extract import extract_nodes

#: Safety bound; each iteration removes at least one node.
MAX_ITERATIONS = 1000


@dataclass
class DeadCodeReport:
    """The result of dead-code elimination."""

    program: Program
    #: (line, text) of removed dead assignments, in removal order.
    removed_assignments: List[Tuple[int, str]] = field(default_factory=list)
    #: (line, text) of removed unreachable statements.
    removed_unreachable: List[Tuple[int, str]] = field(default_factory=list)
    iterations: int = 0

    @property
    def removed_count(self) -> int:
        return len(self.removed_assignments) + len(self.removed_unreachable)


def _dead_nodes(cfg, remove_unreachable: bool):
    """Node ids to drop in one pass (dead assigns + unreachable)."""
    liveness = compute_liveness(cfg)
    live_from_entry = cfg.reachable_from(cfg.entry_id)
    dead_assigns = []
    unreachable = []
    for node in cfg.statement_nodes():
        if remove_unreachable and node.id not in live_from_entry:
            unreachable.append(node)
            continue
        if node.kind is not NodeKind.ASSIGN:
            continue
        if not (node.defs & liveness.out[node.id]):
            dead_assigns.append(node)
    return dead_assigns, unreachable


def eliminate_dead_code(
    program_or_source: Union[str, Program],
    remove_unreachable: bool = True,
) -> DeadCodeReport:
    """Iteratively remove dead assignments (and unreachable code) from a
    program; returns the cleaned program plus a removal report."""
    if isinstance(program_or_source, str):
        program = parse_program(program_or_source)
    else:
        program = program_or_source

    report = DeadCodeReport(program=program)
    for _ in range(MAX_ITERATIONS):
        cfg = build_cfg(program)
        dead_assigns, unreachable = _dead_nodes(cfg, remove_unreachable)
        if not dead_assigns and not unreachable:
            break
        report.iterations += 1
        report.removed_assignments.extend(
            (node.line, node.text) for node in dead_assigns
        )
        report.removed_unreachable.extend(
            (node.line, node.text) for node in unreachable
        )
        drop = {node.id for node in dead_assigns} | {
            node.id for node in unreachable
        }
        keep = {node.id for node in cfg.sorted_nodes()} - drop

        # Extraction needs the analysis bundle for label re-association.
        from repro.pdg.builder import analyze_program

        analysis = analyze_program(program)
        program = extract_nodes(analysis, keep).program
    report.program = program
    return report
