"""Slice-based cohesion metrics (the paper's §1 "software metrics"
application; its references [21] Longworth–Ott–Smith and [23] Ott–Thuss).

Ott & Thuss measure module cohesion from the slices of a module's
outputs: if the slices for each output share most of their statements,
the module does one thing; if they barely overlap, it is a grab-bag.
The classic measures, over the slice family S₁..Sₖ of a program with
statement set P:

* **tightness**   |⋂ Sᵢ| / |P| — fraction of the program in *every*
  slice;
* **coverage**    (1/k) Σ |Sᵢ| / |P| — average slice size;
* **min/max coverage** — the extremes of |Sᵢ| / |P|;
* **overlap**     (1/k) Σ |⋂ Sⱼ| / |Sᵢ| — how much of each slice is
  common to all.

Because these are computed from slices, they inherit the paper's point:
on programs with jumps they are only meaningful if the slicer treats the
jumps correctly (the default here is the Fig. 7 algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.lang.ast_nodes import Var, Write
from repro.lang.errors import SliceError
from repro.pdg.builder import ProgramAnalysis
from repro.slicing.criterion import SlicingCriterion
from repro.slicing.registry import get_algorithm


@dataclass(frozen=True)
class SliceMetrics:
    """The Ott–Thuss cohesion numbers for one program."""

    criteria: Tuple[SlicingCriterion, ...]
    slice_sizes: Tuple[int, ...]
    program_size: int
    tightness: float
    coverage: float
    min_coverage: float
    max_coverage: float
    overlap: float

    def describe(self) -> str:
        lines = [
            f"program size: {self.program_size} statements; "
            f"{len(self.criteria)} output slices"
        ]
        for criterion, size in zip(self.criteria, self.slice_sizes):
            lines.append(f"  {criterion}: {size} statements")
        lines.append(
            f"tightness={self.tightness:.3f} coverage={self.coverage:.3f} "
            f"(min {self.min_coverage:.3f}, max {self.max_coverage:.3f}) "
            f"overlap={self.overlap:.3f}"
        )
        return "\n".join(lines)


def output_criteria(analysis: ProgramAnalysis) -> List[SlicingCriterion]:
    """The default criterion family: one per *reachable*
    ``write(<var>)`` statement (the program's observable outputs).

    Unreachable writes are skipped: they observe nothing, and
    :func:`~repro.slicing.criterion.resolve_criterion` rejects them
    with :class:`~repro.lang.errors.UnreachableCriterionError`.
    """
    cfg = analysis.cfg
    reachable = cfg.reachable_from(cfg.entry_id)
    criteria = []
    for node in cfg.statement_nodes():
        if node.id not in reachable:
            continue
        stmt = node.stmt
        if isinstance(stmt, Write) and isinstance(stmt.value, Var):
            criteria.append(SlicingCriterion(line=node.line, var=stmt.value.name))
    return criteria


def slice_based_metrics(
    analysis: ProgramAnalysis,
    criteria: Optional[Sequence[SlicingCriterion]] = None,
    algorithm: str = "agrawal",
    engine=None,
) -> SliceMetrics:
    """Compute the Ott–Thuss metrics for *analysis*'s program.

    Pass a :class:`repro.service.engine.SlicingEngine` as *engine* to
    fan the criterion family out over its worker pool — the slices are
    independent queries against one shared (criterion-independent)
    analysis, so this is the service subsystem's canonical bulk job.
    Do not pass an engine from inside one of its own pool tasks.

    Raises :class:`SliceError` when no criteria are available (a program
    with no ``write(<var>)`` outputs and none supplied).
    """
    if criteria is None:
        criteria = output_criteria(analysis)
    if not criteria:
        raise SliceError(
            "no slicing criteria: the program has no write(<var>) "
            "statements and none were supplied"
        )
    if engine is not None:
        slices = [
            frozenset(nodes)
            for nodes in engine.slice_node_sets(analysis, criteria, algorithm)
        ]
    else:
        slicer = get_algorithm(algorithm)
        slices = [
            frozenset(slicer(analysis, criterion).statement_nodes())
            for criterion in criteria
        ]
    program_size = len(analysis.cfg.statement_nodes())
    intersection = frozenset.intersection(*slices)
    sizes = [len(s) for s in slices]
    coverages = [size / program_size for size in sizes]
    overlaps = [
        len(intersection) / len(s) if s else 0.0 for s in slices
    ]
    return SliceMetrics(
        criteria=tuple(criteria),
        slice_sizes=tuple(sizes),
        program_size=program_size,
        tightness=len(intersection) / program_size,
        coverage=sum(coverages) / len(coverages),
        min_coverage=min(coverages),
        max_coverage=max(coverages),
        overlap=sum(overlaps) / len(overlaps),
    )
