"""repro — a reproduction of Hiralal Agrawal, *On Slicing Programs with
Jump Statements*, PLDI 1994.

The package implements the paper's three slicing algorithms (general,
structured, conservative), every baseline it compares against, and the
full substrate they need: a small C-like language (SL), control-flow
graphs, dominance and control-dependence analyses, program dependence
graphs, a lexical-successor-tree construction, slice extraction back to
runnable programs, an interpreter serving as the semantic correctness
oracle, and a Python front end.

Quickstart::

    from repro import slice_program, extract_source

    result = slice_program(source_text, line=15, var="positives",
                           algorithm="agrawal")
    print(result.statement_nodes())     # the slice as CFG node ids
    print(extract_source(result))       # the slice as a runnable program

See ``DESIGN.md`` for the subsystem map and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every figure.
"""

from repro.corpus import PAPER_PROGRAMS, get_program
from repro.gen import (
    GeneratorConfig,
    generate_interprocedural,
    generate_structured,
    generate_unstructured,
    random_criterion,
    realize,
)
from repro.interp import (
    check_slice_correctness,
    criterion_trajectory,
    run_program,
    run_source,
)
from repro.lang import parse_program, pretty, validate_program
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    SliceChecker,
    run_lint,
    verify_interprocedural,
    verify_result,
    verify_slice,
)
from repro.pdg import ProgramAnalysis, analyze_program, build_pdg
from repro.dynamic import dynamic_slice
from repro.metrics import SliceMetrics, slice_based_metrics
from repro.service import AnalysisCache, SlicingEngine
from repro.slicing import (
    ALGORITHMS,
    SliceResult,
    SlicingCriterion,
    agrawal_slice,
    ball_horwitz_slice,
    chop,
    conservative_slice,
    conventional_slice,
    extract_interprocedural,
    extract_interprocedural_source,
    extract_slice,
    extract_source,
    forward_slice,
    gallagher_slice,
    get_algorithm,
    jiang_slice,
    lyle_slice,
    slice_program,
    structured_slice,
    weiser_slice,
)
from repro.sdg.slicer import interprocedural_slice

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AnalysisCache",
    "Diagnostic",
    "GeneratorConfig",
    "LintReport",
    "SlicingEngine",
    "PAPER_PROGRAMS",
    "ProgramAnalysis",
    "Severity",
    "SliceChecker",
    "SliceResult",
    "SlicingCriterion",
    "__version__",
    "agrawal_slice",
    "analyze_program",
    "ball_horwitz_slice",
    "build_pdg",
    "check_slice_correctness",
    "chop",
    "conservative_slice",
    "conventional_slice",
    "criterion_trajectory",
    "dynamic_slice",
    "extract_interprocedural",
    "extract_interprocedural_source",
    "extract_slice",
    "extract_source",
    "forward_slice",
    "gallagher_slice",
    "generate_interprocedural",
    "generate_structured",
    "generate_unstructured",
    "get_algorithm",
    "get_program",
    "interprocedural_slice",
    "jiang_slice",
    "lyle_slice",
    "parse_program",
    "pretty",
    "random_criterion",
    "realize",
    "run_lint",
    "run_program",
    "run_source",
    "SliceMetrics",
    "slice_based_metrics",
    "slice_program",
    "structured_slice",
    "validate_program",
    "verify_interprocedural",
    "verify_result",
    "verify_slice",
    "weiser_slice",
]
