"""Content-addressed, LRU-bounded cache of :class:`ProgramAnalysis`.

Every slicing request needs the same criterion-independent artefacts —
CFG, postdominator tree, lexical successor tree, control and data
dependence, PDG — and building them dwarfs the cost of one slice query.
The cache keys a program by the SHA-256 of its source text (plus the
analysis options, which change the CFG shape), so identical programs
submitted by different clients share one :class:`ProgramAnalysis`.

Thread safety: all bookkeeping happens under one lock; the analysis
build itself runs *outside* the lock so a slow build never blocks cache
hits for other programs.  Two threads racing to build the same program
may both build it — the first to finish wins, the loser's artefact is
dropped — which keeps the fast path lock-light without double-counting
evictions.  The cached artefacts themselves are safe to share because
``ProgramAnalysis`` is immutable after construction (see DESIGN.md §7);
``get_or_build`` pre-warms the lazy fields when ``prewarm=True`` so
even the Ball–Horwitz augmented graphs are frozen before sharing.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.obs.tracer import trace_event, trace_span
from repro.pdg.builder import ProgramAnalysis, analyze_program
from repro.service.incremental import (
    UnitCache,
    incremental_analyze,
    incremental_enabled,
)


def analysis_key(
    source: str,
    fuse_cond_goto: bool = True,
    chain_io: bool = True,
    dominator_algorithm: str = "iterative",
) -> str:
    """The content address of one analysis: source hash + options."""
    digest = hashlib.sha256()
    digest.update(
        f"v1|{int(fuse_cond_goto)}|{int(chain_io)}|"
        f"{dominator_algorithm}|".encode("utf-8")
    )
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class AnalysisCache:
    """An LRU map ``content address -> ProgramAnalysis``.

    Parameters
    ----------
    capacity:
        Maximum number of cached analyses; the least recently used entry
        is evicted when a new program would exceed it.  ``capacity <= 0``
        disables caching (every request rebuilds).
    prewarm:
        When true, force the lazy :class:`ProgramAnalysis` fields (the
        augmented CFG/PDG and reaching definitions) at build time, so
        the shared object is never mutated after it enters the cache.
    unit_cache:
        The per-procedure :class:`~repro.service.incremental.UnitCache`
        behind the whole-program entries; a default-sized one is
        created when omitted.  On a whole-program miss (the source hash
        changed), the build path salvages every unit whose content
        fingerprint still matches — so an edit to one procedure reuses
        the other units' CFG/PDT/LST/PDG/closure-index wholesale.
        Consulted only while :func:`incremental_enabled` is true.
    """

    def __init__(
        self,
        capacity: int = 128,
        prewarm: bool = False,
        unit_cache: Optional[UnitCache] = None,
    ) -> None:
        self.capacity = capacity
        self.prewarm = prewarm
        self.unit_cache = unit_cache if unit_cache is not None else UnitCache()
        self._entries: "OrderedDict[str, ProgramAnalysis]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[ProgramAnalysis]:
        """Look up a content address, updating recency and counters."""
        with self._lock:
            analysis = self._entries.get(key)
            if analysis is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return analysis

    def peek(self, key: str) -> Optional[ProgramAnalysis]:
        """Like :meth:`get` but silent: no recency bump, no counters.

        The engine's two-tier read path uses this to decide whether the
        memory tier *would* hit before paying for a disk probe, without
        double-counting the lookup that follows.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, analysis: ProgramAnalysis) -> ProgramAnalysis:
        """Insert (or adopt the existing winner of a build race)."""
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            if self.capacity <= 0:
                return analysis
            self._entries[key] = analysis
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return analysis

    def get_or_build(
        self,
        source: str,
        fuse_cond_goto: bool = True,
        chain_io: bool = True,
        dominator_algorithm: str = "iterative",
        max_nodes: Optional[int] = None,
    ) -> ProgramAnalysis:
        """The main entry point: return the cached analysis of *source*,
        building (and caching) it on a miss.

        ``max_nodes`` enforces a per-request CFG-node cap: an analysis
        over the cap raises
        :class:`~repro.service.resilience.BudgetExceededError` *after*
        being cached (the artefact is valid — a later request with a
        looser budget may use it; only this request refuses to slice
        it).  Cache hits are re-checked too: caps are per request, not
        per program.
        """
        key = analysis_key(
            source, fuse_cond_goto, chain_io, dominator_algorithm
        )
        with trace_span("cache-lookup") as span:
            analysis = self.get(key)
            span.set(hit=analysis is not None)
        if analysis is None:
            if incremental_enabled():
                analysis = incremental_analyze(
                    source,
                    fuse_cond_goto=fuse_cond_goto,
                    chain_io=chain_io,
                    dominator_algorithm=dominator_algorithm,
                    cache=self.unit_cache,
                )
            else:
                analysis = analyze_program(
                    source,
                    fuse_cond_goto=fuse_cond_goto,
                    chain_io=chain_io,
                    dominator_algorithm=dominator_algorithm,
                )
            if self.prewarm:
                # Force the lazy fields so the shared object is frozen.
                analysis.augmented_cfg  # noqa: B018
                analysis.augmented_pdg  # noqa: B018
                analysis.pdg.ensure_closure_index()
            analysis._content_key = key
            analysis = self.put(key, analysis)
        if max_nodes is not None and len(analysis.cfg.nodes) > max_nodes:
            from repro.service.resilience import BudgetExceededError

            trace_event(
                "budget-exceeded",
                reason="nodes",
                phase="analysis-cache",
                nodes=len(analysis.cfg.nodes),
            )
            raise BudgetExceededError(
                f"program has {len(analysis.cfg.nodes)} CFG nodes, over "
                f"the {max_nodes}-node cap",
                reason="nodes",
                phase="analysis-cache",
            )
        return analysis

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """Counters snapshot for ``/stats`` and ``slang batch --stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }


class SliceCacheStats:
    """Engine-wide counters aggregated over every per-analysis
    :class:`SliceMemo` (one engine, many programs, one hit rate)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
            }


class SliceMemo:
    """A bounded LRU of slice results for **one** ``ProgramAnalysis``.

    Keyed by ``(algorithm, line, var)``: the analysis itself pins the
    program source and every analysis option (it is content-addressed by
    :func:`analysis_key`), and criterion resolution is deterministic, so
    those three values determine the slice completely.  Soundness rests
    on ``ProgramAnalysis`` being immutable after construction (DESIGN.md
    §7) — a memoized :class:`~repro.slicing.common.SliceResult` is the
    byte-identical answer a recomputation would produce.

    Stored values are the ``SliceResult`` objects, not encoded payloads:
    results are never mutated by callers, while payload dicts could be.
    Degraded (budget-downgraded) results must never be stored — the
    engine only calls :meth:`put` on the successful exact path.

    Lifetime: the memo hangs off ``ProgramAnalysis._slice_memo``, so
    evicting the analysis from the :class:`AnalysisCache` drops its memo
    with it and an ``id()`` recycle can never alias another program's
    slices.  Counters live in a shared :class:`SliceCacheStats`.
    """

    def __init__(
        self, capacity: int, stats: Optional[SliceCacheStats] = None
    ) -> None:
        self.capacity = capacity
        self._stats = stats
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int, str], Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple[str, int, str]) -> Optional[Any]:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
        if self._stats is not None:
            self._stats.record(hit=result is not None)
        return result

    def put(self, key: Tuple[str, int, str], result: Any) -> None:
        if self.capacity <= 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if self._stats is not None:
            for _ in range(evicted):
                self._stats.record_eviction()
